//! Property-based tests over the CDPC algorithm and the VM substrate:
//! randomized program shapes and machine geometries must always satisfy
//! the paper's structural invariants.
//!
//! Summaries and machine geometries are drawn from a seeded
//! [`SplitMix64`], one seed per case, so failures reproduce exactly by
//! seed number.

use cdpc::core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern,
    CommunicationSummary, GroupAccess, PartitionDirection, PartitionPolicy,
};
use cdpc::core::{generate_hints, MachineParams};
use cdpc::obs::SplitMix64;
use cdpc::vm::addr::{ColorSpace, PageGeometry, Vpn};
use cdpc::vm::policy::{BinHopping, MappingPolicy, PageColoring};
use cdpc::vm::touch::realizable;
use cdpc::vm::AddressSpace;

const PAGE: u64 = 4096;

/// A random but well-formed access summary: 1–6 arrays of 1–32 pages,
/// block/even × forward/reverse partitionings, optional stencil
/// communication, and random groupings.
fn random_summary(rng: &mut SplitMix64) -> AccessSummary {
    let num_arrays = rng.range(1, 6) as usize;
    let sizes: Vec<u64> = (0..num_arrays).map(|_| rng.range(1, 32)).collect();
    let seed = rng.next_u64();
    let mut arrays = Vec::new();
    let mut partitionings = Vec::new();
    let mut communications = Vec::new();
    let mut cursor = 0x10000u64;
    for (i, pages) in sizes.iter().enumerate() {
        let id = ArrayId(i);
        let bytes = pages * PAGE;
        arrays.push(ArrayInfo::new(
            id,
            format!("a{i}"),
            cdpc::vm::addr::VirtAddr(cursor),
            bytes,
        ));
        cursor += bytes;
        let h = seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32);
        let policy = if h & 1 == 0 {
            PartitionPolicy::Blocked
        } else {
            PartitionPolicy::Even
        };
        let direction = if h & 2 == 0 {
            PartitionDirection::Forward
        } else {
            PartitionDirection::Reverse
        };
        // Unit: one quarter page, so units divide the array exactly.
        let unit = PAGE / 4;
        partitionings.push(ArrayPartitioning::new(
            id,
            unit,
            pages * 4,
            policy,
            direction,
        ));
        if h & 4 == 0 {
            communications.push(CommunicationSummary {
                array: id,
                pattern: if h & 8 == 0 {
                    CommunicationPattern::Shift
                } else {
                    CommunicationPattern::Rotate
                },
                width_units: 1 + (h >> 4) % 3,
            });
        }
    }
    let groups = if arrays.len() >= 2 {
        vec![GroupAccess::new(vec![ArrayId(0), ArrayId(1)])]
    } else {
        vec![]
    };
    AccessSummary {
        arrays,
        partitionings,
        communications,
        groups,
        shared_arrays: vec![],
    }
}

/// Every page of every analyzable array is hinted exactly once, and
/// colors follow the round-robin law.
#[test]
fn hints_cover_each_page_once() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let summary = random_summary(&mut rng);
        let cpus = rng.range(1, 16) as usize;
        let colors_pow = rng.range(2, 6) as u32;
        let cache = (1u64 << colors_pow) * PAGE;
        let machine = MachineParams::new(cpus, PAGE as usize, cache as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("random summaries are valid");

        // Uniqueness.
        let mut seen = std::collections::HashSet::new();
        for &v in hints.order() {
            assert!(seen.insert(v), "seed {seed}: page {v} hinted twice");
        }
        // Coverage: count pages of analyzable arrays (deduplicated across
        // straddling boundaries).
        let mut pages = std::collections::HashSet::new();
        for a in summary.analyzable_arrays() {
            let first = a.start.0 / PAGE;
            let last = (a.start.0 + a.size_bytes - 1) / PAGE;
            for p in first..=last {
                pages.insert(p);
            }
        }
        assert_eq!(
            hints.len(),
            pages.len(),
            "seed {seed}: every page hinted exactly once"
        );
        // Round-robin colors.
        for (i, (_, c)) in hints.assignments().iter().enumerate() {
            assert_eq!(c.0, i as u32 % hints.colors().num_colors(), "seed {seed}");
        }
    }
}

/// CDPC orders are always realizable by page touching on a bin-hopping
/// kernel — the property the paper's Digital UNIX implementation
/// depends on.
#[test]
fn hints_always_realizable_under_bin_hopping() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let summary = random_summary(&mut rng);
        let cpus = rng.range(1, 8) as usize;
        let machine = MachineParams::new(cpus, PAGE as usize, (8 * PAGE) as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("valid");
        assert!(
            realizable(&hints.assignments(), hints.colors()).is_ok(),
            "seed {seed}"
        );
    }
}

/// Every color's global load differs by at most one: round-robin hint
/// assignment balances colors regardless of summary shape.
#[test]
fn global_color_load_is_balanced() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let summary = random_summary(&mut rng);
        let colors_pow = rng.range(2, 6) as u32;
        let machine =
            MachineParams::new(4, PAGE as usize, ((1u64 << colors_pow) * PAGE) as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("valid");
        let n = hints.colors().num_colors() as usize;
        let mut load = vec![0u64; n];
        for (_, c) in hints.assignments() {
            load[c.0 as usize] += 1;
        }
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(
            hi - lo <= 1,
            "seed {seed}: round-robin must balance colors: {load:?}"
        );
    }
}

/// The address space honors every hint when memory is ample, for any
/// fault order.
#[test]
fn faults_honor_hints_with_ample_memory() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let pages = rng.range(1, 64) as usize;
        let colors = ColorSpace::with_colors(8);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), pages * 8, colors);
        let mut policy = PageColoring::new(colors);
        // Shuffle fault order deterministically.
        let mut order: Vec<u64> = (0..pages as u64).collect();
        rng.shuffle(&mut order);
        for vpn in order {
            vm.fault(Vpn(vpn), &mut policy).unwrap();
        }
        assert_eq!(vm.stats().fallback, 0, "seed {seed}");
        assert_eq!(vm.stats().honor_rate(), 1.0, "seed {seed}");
        // And the colors actually match the policy's intent.
        for vpn in 0..pages as u64 {
            assert_eq!(
                vm.color_of(Vpn(vpn)).unwrap(),
                colors.color_of_vpn(Vpn(vpn)),
                "seed {seed}"
            );
        }
    }
}

/// Bin hopping distributes any N faults over colors with imbalance at
/// most one (without race perturbation).
#[test]
fn bin_hopping_balances_any_fault_count() {
    let mut rng = SplitMix64::new(0xB1D);
    for _ in 0..64 {
        let faults = rng.range(1, 512);
        let colors = ColorSpace::with_colors(16);
        let mut policy = BinHopping::new(colors);
        let mut load = [0u64; 16];
        for i in 0..faults {
            let c = policy.preferred_color(Vpn(i * 7919)).unwrap();
            load[c.0 as usize] += 1;
        }
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(hi - lo <= 1, "faults {faults}");
    }
}
