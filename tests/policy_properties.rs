//! Property-based tests over the CDPC algorithm and the VM substrate:
//! randomized program shapes and machine geometries must always satisfy
//! the paper's structural invariants.

use proptest::prelude::*;

use cdpc::core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern,
    CommunicationSummary, GroupAccess, PartitionDirection, PartitionPolicy,
};
use cdpc::core::{generate_hints, MachineParams};
use cdpc::vm::addr::{ColorSpace, PageGeometry, Vpn};
use cdpc::vm::policy::{BinHopping, MappingPolicy, PageColoring};
use cdpc::vm::touch::realizable;
use cdpc::vm::AddressSpace;

const PAGE: u64 = 4096;

/// A random but well-formed access summary: 1–6 arrays of 1–32 pages,
/// block/even × forward/reverse partitionings, optional stencil
/// communication, and random groupings.
fn arb_summary() -> impl Strategy<Value = AccessSummary> {
    let arrays = prop::collection::vec(1u64..=32, 1..=6);
    (arrays, any::<u64>()).prop_map(|(sizes, seed)| {
        let mut arrays = Vec::new();
        let mut partitionings = Vec::new();
        let mut communications = Vec::new();
        let mut cursor = 0x10000u64;
        for (i, pages) in sizes.iter().enumerate() {
            let id = ArrayId(i);
            let bytes = pages * PAGE;
            arrays.push(ArrayInfo::new(id, format!("a{i}"), cdpc::vm::addr::VirtAddr(cursor), bytes));
            cursor += bytes;
            let h = seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32);
            let policy = if h & 1 == 0 {
                PartitionPolicy::Blocked
            } else {
                PartitionPolicy::Even
            };
            let direction = if h & 2 == 0 {
                PartitionDirection::Forward
            } else {
                PartitionDirection::Reverse
            };
            // Unit: one quarter page, so units divide the array exactly.
            let unit = PAGE / 4;
            partitionings.push(ArrayPartitioning::new(id, unit, pages * 4, policy, direction));
            if h & 4 == 0 {
                communications.push(CommunicationSummary {
                    array: id,
                    pattern: if h & 8 == 0 {
                        CommunicationPattern::Shift
                    } else {
                        CommunicationPattern::Rotate
                    },
                    width_units: 1 + (h >> 4) % 3,
                });
            }
        }
        let groups = if arrays.len() >= 2 {
            vec![GroupAccess::new(vec![ArrayId(0), ArrayId(1)])]
        } else {
            vec![]
        };
        AccessSummary {
            arrays,
            partitionings,
            communications,
            groups,
            shared_arrays: vec![],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every page of every analyzable array is hinted exactly once, and
    /// colors follow the round-robin law.
    #[test]
    fn hints_cover_each_page_once(summary in arb_summary(), cpus in 1usize..=16, colors_pow in 2u32..=6) {
        let cache = (1u64 << colors_pow) * PAGE;
        let machine = MachineParams::new(cpus, PAGE as usize, cache as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("arb summaries are valid");

        // Uniqueness.
        let mut seen = std::collections::HashSet::new();
        for &v in hints.order() {
            prop_assert!(seen.insert(v), "page {v} hinted twice");
        }
        // Coverage: count pages of analyzable arrays (deduplicated across
        // straddling boundaries).
        let mut pages = std::collections::HashSet::new();
        for a in summary.analyzable_arrays() {
            let first = a.start.0 / PAGE;
            let last = (a.start.0 + a.size_bytes - 1) / PAGE;
            for p in first..=last {
                pages.insert(p);
            }
        }
        prop_assert_eq!(hints.len(), pages.len(), "every page hinted exactly once");
        // Round-robin colors.
        for (i, (_, c)) in hints.assignments().iter().enumerate() {
            prop_assert_eq!(c.0, i as u32 % hints.colors().num_colors());
        }
    }

    /// CDPC orders are always realizable by page touching on a bin-hopping
    /// kernel — the property the paper's Digital UNIX implementation
    /// depends on.
    #[test]
    fn hints_always_realizable_under_bin_hopping(summary in arb_summary(), cpus in 1usize..=8) {
        let machine = MachineParams::new(cpus, PAGE as usize, (8 * PAGE) as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("valid");
        prop_assert!(realizable(&hints.assignments(), hints.colors()).is_ok());
    }

    /// Each processor's hinted pages are spread over colors as evenly as
    /// possible: max load − min load ≤ ... bounded by the contiguity of
    /// its runs (we assert the weak bound: no color holds more than
    /// ⌈pages/colors⌉ + 1 of one CPU's pages... exercised via the global
    /// assignment: every color's global load differs by at most one).
    #[test]
    fn global_color_load_is_balanced(summary in arb_summary(), colors_pow in 2u32..=6) {
        let machine = MachineParams::new(4, PAGE as usize, ((1u64 << colors_pow) * PAGE) as usize, 1);
        let hints = generate_hints(&summary, &machine).expect("valid");
        let n = hints.colors().num_colors() as usize;
        let mut load = vec![0u64; n];
        for (_, c) in hints.assignments() {
            load[c.0 as usize] += 1;
        }
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "round-robin must balance colors: {load:?}");
    }

    /// The address space honors every hint when memory is ample, for any
    /// fault order.
    #[test]
    fn faults_honor_hints_with_ample_memory(pages in 1usize..=64, seed in any::<u64>()) {
        let colors = ColorSpace::with_colors(8);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), pages * 8, colors);
        let mut policy = PageColoring::new(colors);
        // Shuffle fault order deterministically.
        let mut order: Vec<u64> = (0..pages as u64).collect();
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for vpn in order {
            vm.fault(Vpn(vpn), &mut policy).unwrap();
        }
        prop_assert_eq!(vm.stats().fallback, 0);
        prop_assert_eq!(vm.stats().honor_rate(), 1.0);
        // And the colors actually match the policy's intent.
        for vpn in 0..pages as u64 {
            prop_assert_eq!(vm.color_of(Vpn(vpn)).unwrap(), colors.color_of_vpn(Vpn(vpn)));
        }
    }

    /// Bin hopping distributes any N faults over colors with imbalance at
    /// most one (without race perturbation).
    #[test]
    fn bin_hopping_balances_any_fault_count(faults in 1u64..=512) {
        let colors = ColorSpace::with_colors(16);
        let mut policy = BinHopping::new(colors);
        let mut load = [0u64; 16];
        for i in 0..faults {
            let c = policy.preferred_color(Vpn(i * 7919)).unwrap();
            load[c.0 as usize] += 1;
        }
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }
}
