//! End-to-end integration: compiler → summaries → CDPC hints → OS policy →
//! machine simulation, across crate boundaries.

use cdpc::compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc::compiler::{compile, CompileOptions};
use cdpc::core::{generate_hints, MachineParams};
use cdpc::machine::{run, PolicyKind, RunConfig, RunReport};
use cdpc::memsim::{CacheConfig, MemConfig, MissClass};
use cdpc::vm::touch::realizable;

fn stencil_program(array_kb: u64, arrays: usize, units: u64) -> Program {
    let mut p = Program::new("itest");
    let refs: Vec<_> = (0..arrays)
        .map(|i| p.array(format!("a{i}"), array_kb << 10))
        .collect();
    let unit = (array_kb << 10) / units;
    let mut nest = LoopNest::new("sweep", units, 400);
    for (i, &r) in refs.iter().enumerate() {
        if i % 2 == 0 {
            nest = nest.with_access(Access::read(
                r,
                AccessPattern::Stencil {
                    unit_bytes: unit,
                    halo_units: 1,
                    wraparound: false,
                },
            ));
        } else {
            nest = nest.with_access(Access::write(
                r,
                AccessPattern::Partitioned { unit_bytes: unit },
            ));
        }
    }
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 3,
    });
    p
}

fn small_machine(cpus: usize, l2_kb: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(2 << 10, 32, 2);
    m.l1i = CacheConfig::new(2 << 10, 32, 2);
    m.l2 = CacheConfig::new(l2_kb << 10, 128, 1);
    m.tlb_entries = 16;
    m
}

fn run_policy(p: &Program, cpus: usize, l2_kb: usize, policy: PolicyKind) -> RunReport {
    let opts = CompileOptions::new(cpus).with_l2_cache((l2_kb as u64) << 10);
    let compiled = compile(p, &opts).expect("test programs are valid");
    run(
        &compiled,
        &RunConfig::new(small_machine(cpus, l2_kb), policy),
    )
}

#[test]
fn full_pipeline_summary_feeds_hint_generation() {
    let p = stencil_program(32, 4, 32);
    let compiled = compile(&p, &CompileOptions::new(4)).unwrap();
    let machine = MachineParams::new(4, 4096, 64 << 10, 1);
    let hints = generate_hints(&compiled.summary, &machine).unwrap();
    // Every data page of every analyzable array is hinted.
    let total_pages: u64 = compiled
        .summary
        .analyzable_arrays()
        .map(|a| {
            let first = a.start.0 / 4096;
            let last = (a.start.0 + a.size_bytes - 1) / 4096;
            last - first + 1
        })
        .sum();
    assert!(
        hints.len() as u64 >= total_pages - 4,
        "straddled pages may merge"
    );
    // The coloring is realizable on a bin-hopping kernel (Digital UNIX path).
    realizable(&hints.assignments(), hints.colors()).unwrap();
}

#[test]
fn cdpc_eliminates_conflicts_in_the_fitting_regime() {
    // 2 arrays x 16 KB on 4 CPUs: 8 data pages + 1 code page against a
    // 64 KB L2 (16 colors) — everything gets a private color.
    let p = stencil_program(16, 2, 16);
    let r = run_policy(&p, 4, 64, PolicyKind::Cdpc);
    assert_eq!(
        r.mem_stats.aggregate().misses.get(MissClass::Conflict),
        0,
        "the whole working set fits: CDPC must eliminate all conflict misses"
    );
}

#[test]
fn cdpc_reduces_conflicts_in_the_overcommitted_regime() {
    // 4 arrays x 32 KB on 4 CPUs against a 64 KB L2: twice as many hot
    // pages as colors. Zero conflicts is impossible for any coloring, but
    // CDPC must still beat page coloring decisively (the paper's "nearly
    // all" regime).
    let p = stencil_program(32, 4, 32);
    let pc = run_policy(&p, 4, 64, PolicyKind::PageColoring);
    let cdpc = run_policy(&p, 4, 64, PolicyKind::Cdpc);
    let conflicts = |r: &RunReport| r.mem_stats.aggregate().misses.get(MissClass::Conflict);
    assert!(
        conflicts(&cdpc) * 4 <= conflicts(&pc),
        "CDPC should remove at least 3/4 of page coloring's conflicts: {} vs {}",
        conflicts(&cdpc),
        conflicts(&pc)
    );
}

#[test]
fn policies_only_change_memory_behavior_not_work() {
    let p = stencil_program(32, 4, 32);
    let a = run_policy(&p, 4, 64, PolicyKind::PageColoring);
    let b = run_policy(&p, 4, 64, PolicyKind::BinHopping);
    let c = run_policy(&p, 4, 64, PolicyKind::Cdpc);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(b.instructions, c.instructions);
    assert_eq!(a.exec_cycles, c.exec_cycles);
}

#[test]
fn touch_and_kernel_cdpc_agree() {
    let p = stencil_program(32, 4, 32);
    let kernel = run_policy(&p, 4, 64, PolicyKind::Cdpc);
    let touch = run_policy(&p, 4, 64, PolicyKind::CdpcTouch);
    assert_eq!(
        kernel.mem_stats.aggregate().misses,
        touch.mem_stats.aggregate().misses,
        "both CDPC realizations must produce the same steady-state coloring"
    );
}

#[test]
fn warmup_leaves_no_cold_misses() {
    let p = stencil_program(32, 4, 32);
    for policy in [
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
    ] {
        let r = run_policy(&p, 2, 64, policy);
        assert_eq!(
            r.mem_stats.aggregate().misses.get(MissClass::Cold),
            0,
            "{policy:?} left cold misses in the measured pass"
        );
    }
}

#[test]
fn aggregate_cache_growth_reduces_replacement_misses_under_cdpc() {
    // Same program, same total data: growing the machine from 1 to 8 CPUs
    // multiplies the aggregate cache by 8 — with CDPC, replacement misses
    // must fall (the effect the paper says standard policies squander).
    let p = stencil_program(64, 4, 64);
    let small = run_policy(&p, 1, 64, PolicyKind::Cdpc);
    let large = run_policy(&p, 8, 64, PolicyKind::Cdpc);
    let repl = |r: &RunReport| {
        let m = r.mem_stats.aggregate().misses;
        m.get(MissClass::Conflict) + m.get(MissClass::Capacity)
    };
    assert!(
        repl(&large) < repl(&small) / 2,
        "8x aggregate cache should cut replacement misses: {} -> {}",
        repl(&small),
        repl(&large)
    );
}

#[test]
fn unaligned_layout_causes_false_sharing() {
    // With unaligned packing, array boundaries share cache lines; adjacent
    // CPUs writing their own arrays' edges false-share. The compiler's
    // alignment pass (paper §5.4) eliminates it.
    let mut p = Program::new("fs");
    // Arrays NOT multiple of the 128 B line: consecutive arrays share lines
    // when packed unaligned.
    let a = p.array("a", 4096 + 64);
    let b = p.array("b", 4096 + 64);
    p.phase(Phase {
        name: "w".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest: LoopNest::new("w", 8, 2000)
                .with_access(Access::write(
                    a,
                    AccessPattern::Partitioned { unit_bytes: 512 },
                ))
                .with_access(Access::write(
                    b,
                    AccessPattern::Partitioned { unit_bytes: 512 },
                )),
        }],
        count: 6,
    });
    let run_with = |aligned: bool| {
        let mut opts = CompileOptions::new(2).with_l2_cache(64 << 10);
        opts.aligned = aligned;
        let compiled = compile(&p, &opts).unwrap();
        let r = run(
            &compiled,
            &RunConfig::new(small_machine(2, 64), PolicyKind::BinHopping),
        );
        r.mem_stats.aggregate().misses.get(MissClass::FalseSharing)
            + r.mem_stats.aggregate().misses.get(MissClass::TrueSharing)
    };
    let unaligned = run_with(false);
    let aligned = run_with(true);
    assert!(
        aligned <= unaligned,
        "alignment must not increase sharing misses: {aligned} vs {unaligned}"
    );
}

#[test]
fn prefetching_and_cdpc_compose() {
    // Streaming regime: per-CPU stream exceeds the cache.
    let p = stencil_program(128, 3, 128);
    let l2 = 64;
    let run_cfg = |policy: PolicyKind, prefetch: bool| {
        let mut opts = CompileOptions::new(2).with_l2_cache((l2 as u64) << 10);
        opts.prefetch = prefetch;
        let compiled = compile(&p, &opts).unwrap();
        run(&compiled, &RunConfig::new(small_machine(2, l2), policy))
    };
    let base = run_cfg(PolicyKind::PageColoring, false);
    let pf = run_cfg(PolicyKind::PageColoring, true);
    let cdpc = run_cfg(PolicyKind::Cdpc, false);
    let both = run_cfg(PolicyKind::Cdpc, true);
    // The paper's complementarity claim, from the CDPC side: prefetching
    // on top of CDPC hides the misses CDPC cannot remove...
    assert!(
        both.elapsed_cycles < cdpc.elapsed_cycles,
        "prefetching must help once conflicts are gone: {} vs {}",
        both.elapsed_cycles,
        cdpc.elapsed_cycles
    );
    // ...and the combination beats the plain baseline.
    assert!(
        both.elapsed_cycles < base.elapsed_cycles,
        "CDPC+PF must beat plain page coloring: {} vs {}",
        both.elapsed_cycles,
        base.elapsed_cycles
    );
    // CDPC also makes prefetching *more effective* (fewer prefetched lines
    // displaced before use) — the paper's second interaction.
    let hits = |r: &RunReport| r.mem_stats.aggregate().prefetch_hits;
    assert!(
        hits(&both) >= hits(&pf),
        "CDPC must not reduce prefetch usefulness: {} vs {}",
        hits(&both),
        hits(&pf)
    );
    assert!(pf.mem_stats.aggregate().prefetches_issued > 0);
}
