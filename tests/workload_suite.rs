//! Whole-suite smoke and consistency tests: every benchmark × policy ×
//! machine runs, produces internally consistent reports, and is
//! bit-for-bit deterministic.

use cdpc::machine::{run, PolicyKind, RunConfig, RunReport};
use cdpc::memsim::{CacheConfig, MemConfig};
use cdpc::workloads::{all, spec::Scale};
use cdpc_compiler::{compile, CompileOptions};

const SCALE: u64 = 64;

fn mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = CacheConfig::new((1 << 20) / SCALE as usize, 128, 1);
    m.l1d = CacheConfig::new(512, 32, 2);
    m.l1i = CacheConfig::new(512, 32, 2);
    m.tlb_entries = 8;
    m
}

fn run_one(name: &str, cpus: usize, policy: PolicyKind) -> RunReport {
    let bench = cdpc::workloads::by_name(name).expect("exists");
    let program = (bench.build)(Scale::new(SCALE));
    let opts = CompileOptions::new(cpus).with_l2_cache(mem(cpus).l2.size_bytes() as u64);
    let compiled = compile(&program, &opts).expect("models compile");
    run(&compiled, &RunConfig::new(mem(cpus), policy))
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    for bench in all() {
        for policy in [
            PolicyKind::PageColoring,
            PolicyKind::BinHopping,
            PolicyKind::Cdpc,
            PolicyKind::CdpcTouch,
            PolicyKind::DynamicRecolor,
        ] {
            let r = run_one(bench.name, 4, policy);
            assert!(r.instructions > 0, "{} under {:?}", bench.name, policy);
            assert!(r.elapsed_cycles > 0);
            assert!(
                r.combined_cycles >= r.elapsed_cycles,
                "combined time is a sum over processors"
            );
        }
    }
}

#[test]
fn reports_are_internally_consistent() {
    for bench in all() {
        let r = run_one(bench.name, 4, PolicyKind::PageColoring);
        // Stall cycles are bounded by combined busy time.
        assert!(
            r.stalls.total() <= r.combined_cycles,
            "{}: stalls {} exceed combined {}",
            bench.name,
            r.stalls.total(),
            r.combined_cycles
        );
        // MCPI is non-negative and finite.
        assert!(r.mcpi().is_finite() && r.mcpi() >= 0.0);
        // Bus utilization is a fraction.
        assert!((0.0..=1.0).contains(&r.bus.utilization));
        // Miss *counts* are consistent with per-class stall cycles: a class
        // with stall cycles must have misses and vice versa.
        let agg = r.mem_stats.aggregate();
        for class in cdpc::memsim::MissClass::ALL {
            let misses = agg.misses.get(class);
            let stall = agg.miss_stall_cycles.get(class);
            assert_eq!(
                misses == 0,
                stall == 0,
                "{}: class {class} misses={misses} stall={stall}",
                bench.name
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for policy in [
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
        PolicyKind::DynamicRecolor,
    ] {
        let a = run_one("hydro2d", 4, policy);
        let b = run_one("hydro2d", 4, policy);
        assert_eq!(a, b, "two identical runs must agree exactly ({policy:?})");
    }
}

#[test]
fn work_scales_down_with_processors() {
    // Parallel benchmarks: per-CPU instruction share shrinks as CPUs grow.
    let one = run_one("tomcatv", 1, PolicyKind::Cdpc);
    let eight = run_one("tomcatv", 8, PolicyKind::Cdpc);
    // Same total work modulo prefetch/fault bookkeeping.
    let ratio = eight.instructions as f64 / one.instructions as f64;
    assert!(
        (0.9..1.2).contains(&ratio),
        "total instructions should be roughly CPU-count invariant, got {ratio:.2}"
    );
}

#[test]
fn sequential_benchmarks_have_zero_imbalance() {
    let r = run_one("fpppp", 8, PolicyKind::PageColoring);
    assert_eq!(r.overheads.load_imbalance, 0);
    assert_eq!(r.overheads.synchronization, 0);
    assert!(
        r.overheads.sequential > 0,
        "slaves idle while the master runs"
    );
}
