//! Reproduction checks for the paper's headline claims, at reduced scale.
//!
//! These assert the *shape* of the results — who wins, and roughly where —
//! not absolute numbers (DESIGN.md §1 documents the substitutions). All
//! runs use scale 32 (data sets and caches divided by 32) so the whole
//! file stays fast enough for CI.

use cdpc::machine::{geometric_mean, run, PolicyKind, RunConfig, RunReport};
use cdpc::memsim::{CacheConfig, MemConfig};
use cdpc::workloads::{by_name, spec::Scale};
use cdpc_compiler::{compile, CompileOptions};

const SCALE: u64 = 32;

fn scaled_mem(cpus: usize, l2_full_mb: usize, assoc: usize, mhz: u64) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.cpu_mhz = mhz;
    m.l2 = CacheConfig::new((l2_full_mb << 20) / SCALE as usize, 128, assoc);
    m.l1d = CacheConfig::new((32 << 10) / SCALE as usize, 32, 2);
    m.l1i = CacheConfig::new((32 << 10) / SCALE as usize, 32, 2);
    m.tlb_entries = 8;
    m
}

fn run_bench(name: &str, cpus: usize, l2_mb: usize, assoc: usize, policy: PolicyKind) -> RunReport {
    let bench = by_name(name).expect("benchmark exists");
    let program = (bench.build)(Scale::new(SCALE));
    let mem = scaled_mem(cpus, l2_mb, assoc, 400);
    let opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
    let compiled = compile(&program, &opts).expect("models compile");
    run(&compiled, &RunConfig::new(mem, policy))
}

/// §6.1: "For tomcatv, swim, and hydro2d, CDPC shows large performance
/// improvements" on the 1 MB direct-mapped machine.
#[test]
fn cdpc_wins_big_on_the_mapping_sensitive_benchmarks() {
    for name in ["tomcatv", "swim", "hydro2d"] {
        let pc = run_bench(name, 8, 1, 1, PolicyKind::PageColoring);
        let cdpc = run_bench(name, 8, 1, 1, PolicyKind::Cdpc);
        let speedup = cdpc.speedup_over(&pc);
        assert!(
            speedup > 1.25,
            "{name}: CDPC should win big at 8 CPUs, got {speedup:.2}x"
        );
    }
}

/// §6.1: "The performance of su2cor actually degrades slightly with CDPC"
/// — irregular arrays are unhinted and the hinted mapping collides with
/// them. We accept anything from slight degradation to parity.
#[test]
fn su2cor_shows_no_cdpc_benefit() {
    let pc = run_bench("su2cor", 4, 1, 1, PolicyKind::PageColoring);
    let cdpc = run_bench("su2cor", 4, 1, 1, PolicyKind::Cdpc);
    let speedup = cdpc.speedup_over(&pc);
    assert!(
        speedup < 1.10,
        "su2cor must not benefit materially from CDPC, got {speedup:.2}x"
    );
}

/// §6.1: "CDPC does not improve the performance of applu, which suffers
/// from capacity misses due to its large (31MB) data set" — at the 1 MB
/// cache. At the 4 MB configuration applu *does* benefit (Figure 7).
#[test]
fn applu_gains_only_with_the_larger_cache() {
    let small_pc = run_bench("applu", 8, 1, 1, PolicyKind::PageColoring);
    let small_cdpc = run_bench("applu", 8, 1, 1, PolicyKind::Cdpc);
    let big_pc = run_bench("applu", 8, 4, 1, PolicyKind::PageColoring);
    let big_cdpc = run_bench("applu", 8, 4, 1, PolicyKind::Cdpc);
    let small_gain = small_cdpc.speedup_over(&small_pc);
    let big_gain = big_cdpc.speedup_over(&big_pc);
    assert!(
        big_gain > small_gain,
        "the 4MB cache must unlock applu's CDPC benefit: {small_gain:.2}x -> {big_gain:.2}x"
    );
    assert!(
        small_gain < 1.30,
        "applu at 1MB is capacity-bound; CDPC gain should be modest, got {small_gain:.2}x"
    );
}

/// §6.1 / Figure 7: two-way set associativity reduces conflict hot spots
/// but "does not address the issue of under-utilized caches": CDPC keeps
/// improving tomcatv even on the 2-way cache.
#[test]
fn cdpc_still_helps_two_way_caches() {
    let pc = run_bench("tomcatv", 8, 1, 2, PolicyKind::PageColoring);
    let cdpc = run_bench("tomcatv", 8, 1, 2, PolicyKind::Cdpc);
    let speedup = cdpc.speedup_over(&pc);
    assert!(
        speedup > 1.15,
        "CDPC must still help on a 2-way cache, got {speedup:.2}x"
    );
}

/// §4.1: apsi (suppressed fine-grain parallelism) and fpppp (no loop
/// parallelism, icache-bound) are insensitive to the page-mapping policy.
#[test]
fn apsi_and_fpppp_are_policy_insensitive() {
    // CDPC must exactly degenerate to the fallback policy for programs
    // with no distributed loops. (Bin hopping is excluded for fpppp: with
    // only 8 colors at this scale its nondeterministic fault order can
    // land collisions that the paper's 256-color machine never sees.)
    for name in ["apsi", "fpppp"] {
        let pc = run_bench(name, 8, 1, 1, PolicyKind::PageColoring);
        let cdpc = run_bench(name, 8, 1, 1, PolicyKind::Cdpc);
        let spread = [pc.elapsed_cycles, cdpc.elapsed_cycles];
        let (lo, hi) = (
            *spread.iter().min().expect("non-empty") as f64,
            *spread.iter().max().expect("non-empty") as f64,
        );
        assert!(
            hi / lo < 1.05,
            "{name} must be insensitive to CDPC: spread {spread:?}"
        );
    }
    // apsi's data pages are few relative to colors: even bin hopping's
    // perturbed order stays close.
    let pc = run_bench("apsi", 8, 1, 1, PolicyKind::PageColoring);
    let bh = run_bench("apsi", 8, 1, 1, PolicyKind::BinHopping);
    let ratio = bh.elapsed_cycles as f64 / pc.elapsed_cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "apsi should be roughly policy-neutral, bh/pc = {ratio:.2}"
    );
}

/// §4.1: apsi and wave5 see little or no speedup from parallelization
/// (suppressed / sequential work dominates); tomcatv scales.
#[test]
fn speedup_structure_matches_section_4() {
    let speedup_8p = |name: &str| {
        let one = run_bench(name, 1, 1, 1, PolicyKind::PageColoring);
        let eight = run_bench(name, 8, 1, 1, PolicyKind::PageColoring);
        eight.speedup_over(&one)
    };
    assert!(speedup_8p("apsi") < 2.0, "apsi must not scale");
    assert!(speedup_8p("fpppp") < 1.2, "fpppp must not scale at all");
    assert!(speedup_8p("tomcatv") > 3.0, "tomcatv must scale well");
}

/// §4.1: fpppp is limited by instruction-cache misses serviced by the
/// external cache and "puts no load on the shared bus".
#[test]
fn fpppp_is_icache_bound_with_idle_bus() {
    let r = run_bench("fpppp", 4, 1, 1, PolicyKind::PageColoring);
    let agg = r.mem_stats.aggregate();
    assert!(
        agg.ifetch_refs > 0 && agg.l2_hits > 0,
        "fpppp must exercise instruction fetches through the L2"
    );
    assert!(
        r.bus.utilization < 0.10,
        "fpppp must put almost no load on the bus, got {:.1}%",
        r.bus.utilization * 100.0
    );
}

/// §4.1: applu's 33-iteration loops leave 16 processors no better off
/// than 11 — load imbalance appears at high processor counts.
#[test]
fn applu_load_imbalance_at_sixteen_processors() {
    let r = run_bench("applu", 16, 1, 1, PolicyKind::PageColoring);
    assert!(
        r.overheads.load_imbalance > 0,
        "applu at 16 CPUs must show load imbalance"
    );
    // 33 iterations over 16 CPUs: ceil = 3 → 11 CPUs busy, 5 idle; the
    // imbalance share must be substantial.
    let total = r.exec_cycles + r.stalls.total() + r.overheads.total();
    assert!(
        r.overheads.load_imbalance as f64 / total as f64 > 0.05,
        "imbalance should be a visible fraction of combined time"
    );
}

/// §7 / Table 2: neither static policy dominates the other across the
/// suite, and CDPC's geometric mean beats both.
#[test]
fn cdpc_geomean_beats_both_static_policies() {
    let apps = [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
    ];
    let mut wins_pc = 0;
    let mut wins_bh = 0;
    let mut r_bh = Vec::new();
    let mut r_pc = Vec::new();
    let mut r_cdpc = Vec::new();
    for name in apps {
        let reference = run_bench(name, 1, 4, 1, PolicyKind::PageColoring).elapsed_cycles;
        let bh = run_bench(name, 8, 4, 1, PolicyKind::BinHopping);
        let pc = run_bench(name, 8, 4, 1, PolicyKind::PageColoring);
        let cdpc = run_bench(name, 8, 4, 1, PolicyKind::CdpcTouch);
        if bh.elapsed_cycles < pc.elapsed_cycles {
            wins_bh += 1;
        } else {
            wins_pc += 1;
        }
        r_bh.push(bh.ratio(reference));
        r_pc.push(pc.ratio(reference));
        r_cdpc.push(cdpc.ratio(reference));
    }
    let (gb, gp, gc) = (
        geometric_mean(&r_bh),
        geometric_mean(&r_pc),
        geometric_mean(&r_cdpc),
    );
    assert!(
        gc >= gb,
        "CDPC geomean must be at least bin hopping's: {gc:.2} vs {gb:.2}"
    );
    assert!(
        gc >= gp,
        "CDPC geomean must be at least page coloring's: {gc:.2} vs {gp:.2}"
    );
    // "Neither existing page mapping policy dominates the other."
    assert!(
        wins_pc > 0 && wins_bh > 0,
        "each static policy should win somewhere: pc={wins_pc} bh={wins_bh}"
    );
}
