//! Static coloring analysis: predict a mapping's cache behavior without
//! simulating a single reference.
//!
//! Uses `cdpc_core::analysis` to compare page coloring against CDPC on the
//! tomcatv model — the numeric counterpart of the paper's Figures 3 and 5
//! (per-CPU cache utilization and color hot spots).
//!
//! ```text
//! cargo run --release --example coloring_analysis
//! ```

use cdpc::core::analysis::profile_coloring;
use cdpc::core::{generate_hints, MachineParams};
use cdpc::workloads::{by_name, spec::Scale};
use cdpc_compiler::{compile, CompileOptions};

fn main() {
    let cpus = 16;
    let bench = by_name("tomcatv").expect("tomcatv exists");
    let program = (bench.build)(Scale::new(8));
    let compiled = compile(&program, &CompileOptions::new(cpus)).expect("model compiles");
    // The scaled base machine: 128 KB direct-mapped external cache.
    let machine = MachineParams::new(cpus, 4096, (1 << 20) / 8, 1);
    let colors = machine.colors();

    let pc = profile_coloring(&compiled.summary, &machine, |vpn| {
        Some(colors.color_of_vpn(vpn))
    })
    .expect("summary is valid");

    let hints = generate_hints(&compiled.summary, &machine).expect("summary is valid");
    let cdpc = profile_coloring(&compiled.summary, &machine, |vpn| hints.color_of(vpn))
        .expect("summary is valid");

    println!(
        "tomcatv on {cpus} CPUs, {} colors — static coloring profiles\n",
        colors.num_colors()
    );
    println!(
        "{:<16} {:>14} {:>13} {:>10}",
        "mapping", "total overload", "utilization", "peak load"
    );
    for (label, profile) in [("page coloring", &pc), ("cdpc", &cdpc)] {
        let peak = profile.cpus.iter().map(|c| c.peak()).max().unwrap_or(0);
        println!(
            "{:<16} {:>14} {:>12.1}% {:>10}",
            label,
            profile.total_overload(),
            profile.mean_utilization() * 100.0,
            peak
        );
    }
    println!("\nper-CPU detail (cpu: overload / utilization):");
    for (a, b) in pc.cpus.iter().zip(&cdpc.cpus) {
        println!(
            "  cpu{:<2}  page-coloring {:>3} / {:>5.1}%    cdpc {:>3} / {:>5.1}%",
            a.cpu,
            a.overload(),
            a.utilization() * 100.0,
            b.overload(),
            b.utilization() * 100.0
        );
    }
    println!("\n`overload` counts pages beyond one-per-color per CPU — a static");
    println!("proxy for direct-mapped conflicts. CDPC should drive it toward zero");
    println!("while lifting utilization toward 100% (the Figure 3 → 5 transform).");
}
