//! Quickstart: compile a parallel program, generate CDPC hints, and watch
//! conflict misses disappear.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdpc::compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc::compiler::{compile, CompileOptions};
use cdpc::machine::{run, PolicyKind, RunConfig};
use cdpc::memsim::{CacheConfig, MemConfig};

fn main() {
    // A small parallel program: two 12 KB arrays swept by a stencil on two
    // CPUs. (Sizes are chosen so each CPU's working set fits a 32 KB
    // external cache — the regime where CDPC eliminates *all* conflicts.)
    let mut prog = Program::new("quickstart");
    let a = prog.array("A", 12 << 10);
    let b = prog.array("B", 12 << 10);
    prog.phase(Phase {
        name: "sweep".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest: LoopNest::new("stencil", 12, 500)
                .with_access(Access::read(
                    a,
                    AccessPattern::Stencil {
                        unit_bytes: 1024,
                        halo_units: 1,
                        wraparound: false,
                    },
                ))
                .with_access(Access::write(
                    b,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                )),
        }],
        count: 4,
    });

    // Compile for 2 CPUs: parallelization, layout, access summaries.
    let compiled = compile(&prog, &CompileOptions::new(2)).expect("program is valid");
    println!(
        "compiled `{}` for {} CPUs",
        compiled.name, compiled.num_cpus
    );
    println!(
        "  summary: {} arrays, {} partitionings, {} communication patterns, {} groups",
        compiled.summary.arrays.len(),
        compiled.summary.partitionings.len(),
        compiled.summary.communications.len(),
        compiled.summary.groups.len()
    );

    // A scaled-down machine: 32 KB direct-mapped external cache (8 colors).
    let mut mem = MemConfig::paper_base(2);
    mem.l1d = CacheConfig::new(1 << 10, 32, 2);
    mem.l1i = CacheConfig::new(1 << 10, 32, 2);
    mem.l2 = CacheConfig::new(32 << 10, 128, 1);

    println!("\npolicy comparison (same program, same machine):");
    println!(
        "{:<16} {:>12} {:>10} {:>10}",
        "policy", "time (cyc)", "conflicts", "MCPI"
    );
    for policy in [
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
    ] {
        let report = run(&compiled, &RunConfig::new(mem.clone(), policy));
        println!(
            "{:<16} {:>12} {:>10} {:>10.3}",
            report.policy,
            report.elapsed_cycles,
            report
                .mem_stats
                .aggregate()
                .misses
                .get(cdpc::memsim::MissClass::Conflict),
            report.mcpi()
        );
    }
    println!("\nCDPC is conflict-free *by construction*: the compiler told the OS");
    println!("exactly which page colors keep each CPU's working set disjoint.");
    println!("(Page coloring happens to be conflict-free on this tiny layout too;");
    println!("bin hopping's nondeterministic fault race is not. Run the fig6/fig9");
    println!("experiments in cdpc-bench for the full-suite comparison.)");
}
