//! Runs the whole SPEC95fp-like workload suite at a small scale and
//! prints a one-line verdict per benchmark: which page-mapping policy
//! wins, and by how much.
//!
//! ```text
//! cargo run --release --example spec_suite
//! ```

use cdpc::machine::{run, PolicyKind, RunConfig};
use cdpc::memsim::CacheConfig;
use cdpc::workloads::{all, spec::Scale};
use cdpc_compiler::{compile, CompileOptions};

fn main() {
    let cpus = 8;
    let scale = Scale::new(16);
    println!(
        "SPEC95fp-like suite at 1/{} scale, {} CPUs, scaled 64 KB DM external caches\n",
        scale.divisor(),
        cpus
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "benchmark", "pagecol", "binhop", "cdpc", "winner"
    );
    for bench in all() {
        let program = (bench.build)(scale);
        let mut mem = cdpc::memsim::MemConfig::paper_base(cpus);
        mem.l2 = CacheConfig::new((1 << 20) / 16, 128, 1);
        mem.l1d = CacheConfig::new(2 << 10, 32, 2);
        mem.l1i = CacheConfig::new(2 << 10, 32, 2);
        mem.tlb_entries = 8;
        let opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
        let compiled = compile(&program, &opts).expect("models compile");

        let mut rows = Vec::new();
        for policy in [
            PolicyKind::PageColoring,
            PolicyKind::BinHopping,
            PolicyKind::Cdpc,
        ] {
            let r = run(&compiled, &RunConfig::new(mem.clone(), policy));
            rows.push((policy.label(), r.elapsed_cycles));
        }
        let best = rows.iter().min_by_key(|(_, t)| *t).expect("non-empty");
        let worst = rows.iter().max_by_key(|(_, t)| *t).expect("non-empty");
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8} ({:.2}x vs worst)",
            bench.name,
            rows[0].1,
            rows[1].1,
            rows[2].1,
            best.0,
            worst.1 as f64 / best.1 as f64,
        );
    }
    println!("\nExpected: cdpc wins or ties everywhere; apsi/fpppp/wave5 are");
    println!("insensitive (their bottleneck is not the page mapping).");
}
