//! CDPC × compiler-inserted prefetching on a streaming workload (paper
//! §6.2): the two techniques are complementary — prefetching hides the
//! latency CDPC cannot remove, and CDPC keeps prefetched lines resident
//! and the bus free.
//!
//! ```text
//! cargo run --release --example prefetch_interaction
//! ```

use cdpc::compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc::compiler::{compile, CompileOptions};
use cdpc::machine::{run, PolicyKind, RunConfig, RunReport};
use cdpc::memsim::{CacheConfig, MemConfig};

fn streaming() -> Program {
    // Three 256 KB arrays streamed by 4 CPUs through a 64 KB cache: the
    // per-CPU stream (192 KB) exceeds the cache, so capacity misses remain
    // after CDPC and prefetching has real work to do.
    let mut prog = Program::new("daxpy-like");
    let x = prog.array("x", 256 << 10);
    let y = prog.array("y", 256 << 10);
    let z = prog.array("z", 256 << 10);
    prog.phase(Phase {
        name: "stream".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest: LoopNest::new("axpy", 256, 200)
                .with_access(Access::read(
                    x,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                ))
                .with_access(Access::read(
                    y,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                ))
                .with_access(Access::write(
                    z,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                )),
        }],
        count: 4,
    });
    prog
}

fn main() {
    let cpus = 4;
    let mem = {
        let mut m = MemConfig::paper_base(cpus);
        m.l1d = CacheConfig::new(2 << 10, 32, 2);
        m.l1i = CacheConfig::new(2 << 10, 32, 2);
        m.l2 = CacheConfig::new(64 << 10, 128, 1);
        m
    };
    let prog = streaming();

    let mut results: Vec<(&str, RunReport)> = Vec::new();
    for (label, policy, prefetch) in [
        ("page coloring", PolicyKind::PageColoring, false),
        ("page coloring + PF", PolicyKind::PageColoring, true),
        ("CDPC", PolicyKind::Cdpc, false),
        ("CDPC + PF", PolicyKind::Cdpc, true),
    ] {
        let mut opts = CompileOptions::new(cpus).with_l2_cache(64 << 10);
        opts.prefetch = prefetch;
        let compiled = compile(&prog, &opts).expect("valid program");
        let report = run(&compiled, &RunConfig::new(mem.clone(), policy));
        results.push((label, report));
    }

    let base = results[0].1.elapsed_cycles;
    println!("streaming axpy on {cpus} CPUs (64 KB external caches)\n");
    println!(
        "{:<20} {:>12} {:>9} {:>12} {:>12}",
        "configuration", "time (cyc)", "speedup", "pf issued", "pf hits"
    );
    for (label, r) in &results {
        let agg = r.mem_stats.aggregate();
        println!(
            "{:<20} {:>12} {:>8.2}x {:>12} {:>12}",
            label,
            r.elapsed_cycles,
            base as f64 / r.elapsed_cycles as f64,
            agg.prefetches_issued,
            agg.prefetch_hits,
        );
    }
    println!("\nExpect: prefetching *hurts* under page coloring (prefetched lines are");
    println!("displaced by conflicts before use, and the prefetches clog the bus) but");
    println!("*helps* under CDPC — the paper's two interactions: CDPC keeps prefetched");
    println!("data resident, and frees the bus bandwidth latency tolerance needs.");
}
