//! A 2-D heat-diffusion stencil across processor counts: the workload the
//! paper's introduction motivates. Compares the three page-mapping
//! policies and shows where each wins.
//!
//! ```text
//! cargo run --release --example stencil_coloring
//! ```

use cdpc::compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc::compiler::{compile, CompileOptions};
use cdpc::machine::{run, PolicyKind, RunConfig};
use cdpc::memsim::{CacheConfig, MemConfig};

/// Builds a heat-diffusion step: `new = stencil(old)`, then swap, over
/// `rows` rows of `row_bytes` each.
fn heat(rows: u64, row_bytes: u64) -> Program {
    let mut prog = Program::new("heat-2d");
    let old = prog.array("old", rows * row_bytes);
    let new = prog.array("new", rows * row_bytes);
    let step = LoopNest::new("diffuse", rows, row_bytes / 4)
        .with_access(Access::read(
            old,
            AccessPattern::Stencil {
                unit_bytes: row_bytes,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            new,
            AccessPattern::Partitioned {
                unit_bytes: row_bytes,
            },
        ));
    let swap = LoopNest::new("swap", rows, 8)
        .with_access(Access::read(
            new,
            AccessPattern::Partitioned {
                unit_bytes: row_bytes,
            },
        ))
        .with_access(Access::write(
            old,
            AccessPattern::Partitioned {
                unit_bytes: row_bytes,
            },
        ));
    prog.phase(Phase {
        name: "timestep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: step,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: swap,
            },
        ],
        count: 5,
    });
    prog
}

fn main() {
    // 256 rows x 2 KB = 512 KB per array; 128 KB direct-mapped L2.
    let prog = heat(256, 2048);
    let mem_for = |cpus: usize| {
        let mut m = MemConfig::paper_base(cpus);
        m.l1d = CacheConfig::new(4 << 10, 32, 2);
        m.l1i = CacheConfig::new(4 << 10, 32, 2);
        m.l2 = CacheConfig::new(128 << 10, 128, 1);
        m
    };

    println!("heat-2d (1 MB of grids, 128 KB external caches)\n");
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>10}",
        "cpus", "page-coloring", "bin-hopping", "cdpc", "best"
    );
    for cpus in [1usize, 2, 4, 8, 16] {
        let compiled = compile(&prog, &CompileOptions::new(cpus)).expect("valid program");
        let mut times = Vec::new();
        for policy in [
            PolicyKind::PageColoring,
            PolicyKind::BinHopping,
            PolicyKind::Cdpc,
        ] {
            let r = run(&compiled, &RunConfig::new(mem_for(cpus), policy));
            times.push((policy.label(), r.elapsed_cycles));
        }
        let best = times.iter().min_by_key(|(_, t)| *t).expect("non-empty");
        println!(
            "{:<6} {:>14} {:>14} {:>14} {:>10}",
            cpus, times[0].1, times[1].1, times[2].1, best.0
        );
    }
    println!("\nNeither static policy dominates the other (the paper's Figure 9");
    println!("observation); CDPC takes over as the processor count grows and the");
    println!("per-CPU working set approaches the cache size.");
}
