//! The loop-nest intermediate representation.
//!
//! The SUIF compiler of the paper parallelizes dense Fortran programs whose
//! computation is organized as sequences of loop nests over arrays with
//! affine accesses. This IR captures exactly that class, reduced to what
//! the memory system can observe: which byte ranges of which arrays each
//! loop iteration touches, how much computation accompanies them, and how
//! the program is divided into *phases* (the paper's representative
//! execution windows are sequences of phases — turb3d's steady state, for
//! example, is four phases occurring 11, 66, 100 and 120 times).

/// Index of an array within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayRef(pub usize);

/// One array declaration (addresses are assigned later by the layout pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Total size in bytes.
    pub bytes: u64,
}

impl ArrayDecl {
    /// Declares an array.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(name: impl Into<String>, bytes: u64) -> Self {
        assert!(bytes > 0, "arrays must be non-empty");
        Self {
            name: name.into(),
            bytes,
        }
    }
}

/// How one reference walks its array as the distributed loop iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Iteration `i` touches bytes `[i*unit, (i+1)*unit)` — the canonical
    /// distributed-dimension sweep (`unit` is the data partition unit, e.g.
    /// one column).
    Partitioned {
        /// Bytes touched per iteration.
        unit_bytes: u64,
    },
    /// Like [`AccessPattern::Partitioned`], but iteration `i` also reads
    /// `halo_units` neighboring units on each side — a stencil. With
    /// `wraparound`, the first and last iterations exchange (rotate
    /// communication).
    Stencil {
        /// Bytes per unit.
        unit_bytes: u64,
        /// Units of halo on each side.
        halo_units: u64,
        /// `true` for periodic boundaries (rotate), `false` for shift.
        wraparound: bool,
    },
    /// Every processor streams the entire array each iteration block
    /// (read-shared tables; unpartitionable but analyzable).
    WholeArray,
    /// Gather/scatter with no compile-time structure: iteration `i`
    /// touches `touches_per_iter` pseudo-random locations. CDPC cannot
    /// analyze these arrays (su2cor's irregular structures).
    Irregular {
        /// Random touches per iteration.
        touches_per_iter: u64,
    },
}

/// One array reference within a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The referenced array.
    pub array: ArrayRef,
    /// Traversal shape.
    pub pattern: AccessPattern,
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
}

impl Access {
    /// A read with the given pattern.
    pub fn read(array: ArrayRef, pattern: AccessPattern) -> Self {
        Self {
            array,
            pattern,
            is_write: false,
        }
    }

    /// A write with the given pattern.
    pub fn write(array: ArrayRef, pattern: AccessPattern) -> Self {
        Self {
            array,
            pattern,
            is_write: true,
        }
    }
}

/// One loop nest, flattened to its distributed dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Name for reports (e.g. the source loop label).
    pub name: String,
    /// Iterations of the distributed dimension.
    pub iterations: u64,
    /// Instructions of computation per iteration (drives execution time and
    /// the compute/memory ratio).
    pub work_per_iter: u64,
    /// Code footprint of the loop body in bytes (drives instruction-cache
    /// behavior; fpppp's huge basic blocks overflow the 32 KB L1I).
    pub code_bytes: u64,
    /// Array references in the body.
    pub accesses: Vec<Access>,
    /// `true` when the parallelizer tiled this loop to reduce
    /// synchronization; tiling inhibits software pipelining of prefetches
    /// (the paper's applu).
    pub tiled: bool,
}

impl LoopNest {
    /// Creates a loop nest with defaults (small code footprint, untiled).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn new(name: impl Into<String>, iterations: u64, work_per_iter: u64) -> Self {
        assert!(iterations > 0, "loops must iterate");
        Self {
            name: name.into(),
            iterations,
            work_per_iter,
            code_bytes: 512,
            accesses: Vec::new(),
            tiled: false,
        }
    }

    /// Adds an access (builder-style).
    #[must_use]
    pub fn with_access(mut self, access: Access) -> Self {
        self.accesses.push(access);
        self
    }

    /// Sets the code footprint (builder-style).
    #[must_use]
    pub fn with_code_bytes(mut self, bytes: u64) -> Self {
        self.code_bytes = bytes;
        self
    }

    /// Marks the loop as tiled (builder-style).
    #[must_use]
    pub fn tiled(mut self) -> Self {
        self.tiled = true;
        self
    }

    /// Arrays referenced by this nest (deduplicated, in first-use order).
    pub fn referenced_arrays(&self) -> Vec<ArrayRef> {
        let mut seen = Vec::new();
        for a in &self.accesses {
            if !seen.contains(&a.array) {
                seen.push(a.array);
            }
        }
        seen
    }
}

/// How a statement may be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// A loop the compiler can distribute across processors.
    Parallel,
    /// Inherently sequential code (runs on the master while slaves spin).
    Sequential,
    /// Parallelizable but fine-grained: the compiler *suppresses* its
    /// parallel execution because synchronization costs would dominate
    /// (the paper's apsi and wave5).
    FineGrain,
}

/// One statement of a phase: a loop nest plus how it may run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Parallel / sequential / fine-grain.
    pub kind: StmtKind,
    /// The loop nest.
    pub nest: LoopNest,
}

/// A phase of the steady state: a straight-line sequence of statements
/// occurring `count` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name for reports.
    pub name: String,
    /// Statements executed in order.
    pub stmts: Vec<Stmt>,
    /// Occurrences during the steady state (used to weight statistics).
    pub count: u64,
}

/// A whole program in steady state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (e.g. "101.tomcatv").
    pub name: String,
    /// All arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Steady-state phases.
    pub phases: Vec<Phase>,
    /// Lint rule ids (`cdpc-analyze` vocabulary, e.g. `"race/irregular-write"`)
    /// that this program deliberately triggers; the analyzer downgrades
    /// matching Error diagnostics to allowed findings.
    pub lint_allows: Vec<String>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arrays: Vec::new(),
            phases: Vec::new(),
            lint_allows: Vec::new(),
        }
    }

    /// Annotates the program as deliberately triggering lint `rule`
    /// (the analyzer reports but does not fail on allowed rules).
    pub fn allow_lint(&mut self, rule: impl Into<String>) -> &mut Self {
        self.lint_allows.push(rule.into());
        self
    }

    /// Declares an array, returning its handle.
    pub fn array(&mut self, name: impl Into<String>, bytes: u64) -> ArrayRef {
        self.arrays.push(ArrayDecl::new(name, bytes));
        ArrayRef(self.arrays.len() - 1)
    }

    /// Appends a phase.
    pub fn phase(&mut self, phase: Phase) -> &mut Self {
        self.phases.push(phase);
        self
    }

    /// Total bytes across all arrays (the paper's Table 1 "data set size").
    pub fn data_set_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.bytes).sum()
    }

    /// Looks up an array declaration.
    pub fn decl(&self, r: ArrayRef) -> &ArrayDecl {
        &self.arrays[r.0]
    }

    /// Validates internal consistency: every access references a declared
    /// array and pattern units fit their arrays.
    pub fn validate(&self) -> Result<(), crate::CompileError> {
        for phase in &self.phases {
            for stmt in &phase.stmts {
                for acc in &stmt.nest.accesses {
                    if acc.array.0 >= self.arrays.len() {
                        return Err(crate::CompileError::UnknownArray {
                            loop_name: stmt.nest.name.clone(),
                            index: acc.array.0,
                        });
                    }
                    let decl = self.decl(acc.array);
                    let unit = match acc.pattern {
                        AccessPattern::Partitioned { unit_bytes } => Some(unit_bytes),
                        AccessPattern::Stencil { unit_bytes, .. } => Some(unit_bytes),
                        _ => None,
                    };
                    if let Some(unit) = unit {
                        if unit == 0 || unit * stmt.nest.iterations > decl.bytes {
                            return Err(crate::CompileError::AccessExceedsArray {
                                loop_name: stmt.nest.name.clone(),
                                array: decl.name.clone(),
                                need: unit * stmt.nest.iterations,
                                have: decl.bytes,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new("test");
        let a = p.array("A", 64 * 1024);
        let nest = LoopNest::new("l1", 64, 100).with_access(Access::read(
            a,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 10,
        });
        p
    }

    #[test]
    fn construction_and_validation() {
        let p = sample();
        assert_eq!(p.data_set_bytes(), 64 * 1024);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_unknown_array() {
        let mut p = sample();
        p.phases[0].stmts[0]
            .nest
            .accesses
            .push(Access::read(ArrayRef(9), AccessPattern::WholeArray));
        assert!(matches!(
            p.validate(),
            Err(crate::CompileError::UnknownArray { .. })
        ));
    }

    #[test]
    fn validation_catches_oversized_access() {
        let mut p = sample();
        // 64 iterations * 2048 B > 64 KB array.
        p.phases[0].stmts[0].nest.accesses[0].pattern =
            AccessPattern::Partitioned { unit_bytes: 2048 };
        assert!(matches!(
            p.validate(),
            Err(crate::CompileError::AccessExceedsArray { .. })
        ));
    }

    #[test]
    fn referenced_arrays_deduplicate() {
        let mut p = Program::new("t");
        let a = p.array("A", 4096);
        let b = p.array("B", 4096);
        let nest = LoopNest::new("l", 4, 1)
            .with_access(Access::read(a, AccessPattern::WholeArray))
            .with_access(Access::write(a, AccessPattern::WholeArray))
            .with_access(Access::read(b, AccessPattern::WholeArray));
        assert_eq!(nest.referenced_arrays(), vec![a, b]);
    }

    #[test]
    fn builders_set_flags() {
        let nest = LoopNest::new("l", 4, 1).with_code_bytes(8192).tiled();
        assert_eq!(nest.code_bytes, 8192);
        assert!(nest.tiled);
    }
}
