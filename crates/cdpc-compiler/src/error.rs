use std::error::Error;
use std::fmt;

/// Errors raised while validating or compiling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// An access references an array index that was never declared.
    UnknownArray {
        /// The loop containing the access.
        loop_name: String,
        /// The out-of-range array index.
        index: usize,
    },
    /// A loop sweeps more bytes than its array holds.
    AccessExceedsArray {
        /// The loop containing the access.
        loop_name: String,
        /// The array's name.
        array: String,
        /// Bytes the access would touch.
        need: u64,
        /// Bytes the array holds.
        have: u64,
    },
    /// The CDPC summary derived from the program failed validation.
    Summary(cdpc_core::CdpcError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownArray { loop_name, index } => {
                write!(f, "loop `{loop_name}` references undeclared array #{index}")
            }
            CompileError::AccessExceedsArray {
                loop_name,
                array,
                need,
                have,
            } => write!(
                f,
                "loop `{loop_name}` sweeps {need} bytes of `{array}` which holds only {have}"
            ),
            CompileError::Summary(e) => write!(f, "summary generation failed: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Summary(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdpc_core::CdpcError> for CompileError {
    fn from(e: cdpc_core::CdpcError) -> Self {
        CompileError::Summary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_loop() {
        let e = CompileError::AccessExceedsArray {
            loop_name: "l1".into(),
            array: "A".into(),
            need: 100,
            have: 50,
        };
        let s = e.to_string();
        assert!(s.contains("l1") && s.contains("A") && s.contains("100"));
    }

    #[test]
    fn wraps_core_errors_with_source() {
        let e: CompileError =
            cdpc_core::CdpcError::UnknownArray(cdpc_core::summary::ArrayId(1)).into();
        assert!(e.source().is_some());
    }
}
