//! The parallelization pass: deciding how each loop runs.
//!
//! The real SUIF pipeline performs dependence analysis to find parallel
//! loops; our IR already carries that verdict ([`StmtKind`]). What remains
//! — and what this pass reproduces — is the *scheduling* decision the
//! paper describes: statically distribute coarse-grain parallel loops
//! across the processors, and **suppress** the parallel execution of loops
//! whose granularity is too fine for today's synchronization costs (the
//! paper's apsi and wave5 lose their parallelism here, which is why they
//! see no speedup).

use cdpc_core::summary::{PartitionDirection, PartitionPolicy};

use crate::ir::{Program, StmtKind};

/// Scheduling options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelizeOptions {
    /// Processors available.
    pub num_cpus: usize,
    /// Minimum `iterations * work_per_iter` for a parallel loop to be worth
    /// distributing; below this it is suppressed.
    pub suppress_threshold: u64,
    /// Iteration distribution policy.
    pub policy: PartitionPolicy,
    /// Iteration distribution direction.
    pub direction: PartitionDirection,
}

impl Default for ParallelizeOptions {
    fn default() -> Self {
        Self {
            num_cpus: 1,
            suppress_threshold: 2_000,
            policy: PartitionPolicy::Blocked,
            direction: PartitionDirection::Forward,
        }
    }
}

/// How one statement will execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtSchedule {
    /// Iterations distributed across all processors.
    Distributed {
        /// Distribution policy.
        policy: PartitionPolicy,
        /// Distribution direction.
        direction: PartitionDirection,
    },
    /// Inherently sequential: master runs, slaves spin (sequential time).
    Master,
    /// Parallelizable but suppressed: master runs alone (suppressed time).
    Suppressed,
}

impl StmtSchedule {
    /// `true` when all processors take part.
    pub fn is_distributed(self) -> bool {
        matches!(self, StmtSchedule::Distributed { .. })
    }
}

/// The schedule for every statement, indexed `[phase][stmt]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelPlan {
    schedules: Vec<Vec<StmtSchedule>>,
    num_cpus: usize,
}

impl ParallelPlan {
    /// The schedule of one statement.
    pub fn schedule(&self, phase: usize, stmt: usize) -> StmtSchedule {
        self.schedules[phase][stmt]
    }

    /// Processors the plan was built for.
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// Iterates `(phase, stmt, schedule)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, StmtSchedule)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .flat_map(|(p, v)| v.iter().enumerate().map(move |(s, &sch)| (p, s, sch)))
    }
}

/// Runs the scheduling pass.
pub fn parallelize(program: &Program, opts: &ParallelizeOptions) -> ParallelPlan {
    let schedules = program
        .phases
        .iter()
        .map(|phase| {
            phase
                .stmts
                .iter()
                .map(|stmt| match stmt.kind {
                    StmtKind::Sequential => StmtSchedule::Master,
                    StmtKind::FineGrain => StmtSchedule::Suppressed,
                    StmtKind::Parallel => {
                        let work = stmt.nest.iterations * stmt.nest.work_per_iter.max(1);
                        if opts.num_cpus == 1 {
                            // Uniprocessor: run everything on the master with
                            // no suppression bookkeeping.
                            StmtSchedule::Master
                        } else if work < opts.suppress_threshold {
                            StmtSchedule::Suppressed
                        } else {
                            StmtSchedule::Distributed {
                                policy: opts.policy,
                                direction: opts.direction,
                            }
                        }
                    }
                })
                .collect()
        })
        .collect();
    ParallelPlan {
        schedules,
        num_cpus: opts.num_cpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopNest, Phase, Stmt};

    fn program(kind: StmtKind, iterations: u64, work: u64) -> Program {
        let mut p = Program::new("t");
        p.phase(Phase {
            name: "ph".into(),
            stmts: vec![Stmt {
                kind,
                nest: LoopNest::new("l", iterations, work),
            }],
            count: 1,
        });
        p
    }

    fn opts(cpus: usize) -> ParallelizeOptions {
        ParallelizeOptions {
            num_cpus: cpus,
            ..Default::default()
        }
    }

    #[test]
    fn coarse_parallel_loops_distribute() {
        let plan = parallelize(&program(StmtKind::Parallel, 1000, 100), &opts(4));
        assert!(plan.schedule(0, 0).is_distributed());
        assert_eq!(plan.num_cpus(), 4);
    }

    #[test]
    fn fine_grain_loops_are_suppressed() {
        let plan = parallelize(&program(StmtKind::FineGrain, 1000, 100), &opts(4));
        assert_eq!(plan.schedule(0, 0), StmtSchedule::Suppressed);
    }

    #[test]
    fn small_parallel_loops_are_suppressed_by_threshold() {
        let plan = parallelize(&program(StmtKind::Parallel, 10, 10), &opts(4));
        assert_eq!(plan.schedule(0, 0), StmtSchedule::Suppressed);
    }

    #[test]
    fn sequential_loops_run_on_master() {
        let plan = parallelize(&program(StmtKind::Sequential, 1000, 100), &opts(4));
        assert_eq!(plan.schedule(0, 0), StmtSchedule::Master);
    }

    #[test]
    fn uniprocessor_runs_everything_on_master() {
        let plan = parallelize(&program(StmtKind::Parallel, 1000, 100), &opts(1));
        assert_eq!(plan.schedule(0, 0), StmtSchedule::Master);
    }

    #[test]
    fn iter_walks_all_statements() {
        let mut p = program(StmtKind::Parallel, 1000, 100);
        p.phases[0].stmts.push(Stmt {
            kind: StmtKind::Sequential,
            nest: LoopNest::new("l2", 10, 1),
        });
        let plan = parallelize(&p, &opts(2));
        assert_eq!(plan.iter().count(), 2);
    }
}
