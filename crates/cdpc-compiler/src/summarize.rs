//! Summary generation: from scheduled IR to the CDPC access summaries.
//!
//! This is stage 1 of the paper's three-stage pipeline (§5): the compiler
//! walks its parallelization results and records, for every array, how the
//! distributed loops partition it, what boundary communication occurs, and
//! which arrays appear in the same loops. The output is exactly the
//! [`cdpc_core::summary::AccessSummary`] the run-time hint generator
//! consumes.

use cdpc_core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern,
    CommunicationSummary, GroupAccess,
};

use crate::ir::{AccessPattern, Program};
use crate::layout::DataLayout;
use crate::parallelize::{ParallelPlan, StmtSchedule};

/// Derives the access summary for a scheduled, laid-out program.
///
/// Rules (paper §5.1):
///
/// * A [`AccessPattern::Partitioned`] or [`AccessPattern::Stencil`] access
///   in a distributed loop yields an [`ArrayPartitioning`] whose data
///   partition unit is the bytes one iteration touches.
/// * A stencil's halo yields a [`CommunicationSummary`] (shift, or rotate
///   for periodic boundaries).
/// * A [`AccessPattern::WholeArray`] access marks the array read-shared.
/// * [`AccessPattern::Irregular`] arrays stay **unanalyzable**: they appear
///   in `arrays` but get no partitioning, so CDPC leaves them unhinted
///   (su2cor's situation).
/// * Every distributed loop referencing two or more analyzable arrays
///   contributes a [`GroupAccess`].
pub fn summarize(program: &Program, plan: &ParallelPlan, layout: &DataLayout) -> AccessSummary {
    let arrays: Vec<ArrayInfo> = program
        .arrays
        .iter()
        .enumerate()
        .map(|(i, d)| ArrayInfo::new(ArrayId(i), d.name.clone(), layout.bases[i], d.bytes))
        .collect();

    let mut partitionings: Vec<ArrayPartitioning> = Vec::new();
    let mut communications: Vec<CommunicationSummary> = Vec::new();
    let mut shared: Vec<ArrayId> = Vec::new();
    let mut groups: Vec<GroupAccess> = Vec::new();

    for (pi, phase) in program.phases.iter().enumerate() {
        for (si, stmt) in phase.stmts.iter().enumerate() {
            let schedule = plan.schedule(pi, si);
            let StmtSchedule::Distributed { policy, direction } = schedule else {
                continue;
            };
            let mut loop_arrays: Vec<ArrayId> = Vec::new();
            for acc in &stmt.nest.accesses {
                let id = ArrayId(acc.array.0);
                match acc.pattern {
                    AccessPattern::Partitioned { unit_bytes }
                    | AccessPattern::Stencil { unit_bytes, .. } => {
                        let part = ArrayPartitioning::new(
                            id,
                            unit_bytes,
                            stmt.nest.iterations,
                            policy,
                            direction,
                        );
                        if !partitionings.contains(&part) {
                            partitionings.push(part);
                        }
                        if let AccessPattern::Stencil {
                            halo_units,
                            wraparound,
                            ..
                        } = acc.pattern
                        {
                            if halo_units > 0 {
                                let comm = CommunicationSummary {
                                    array: id,
                                    pattern: if wraparound {
                                        CommunicationPattern::Rotate
                                    } else {
                                        CommunicationPattern::Shift
                                    },
                                    width_units: halo_units,
                                };
                                if !communications.contains(&comm) {
                                    communications.push(comm);
                                }
                            }
                        }
                        if !loop_arrays.contains(&id) {
                            loop_arrays.push(id);
                        }
                    }
                    AccessPattern::WholeArray => {
                        if !shared.contains(&id) {
                            shared.push(id);
                        }
                        if !loop_arrays.contains(&id) {
                            loop_arrays.push(id);
                        }
                    }
                    AccessPattern::Irregular { .. } => {
                        // Unanalyzable: no partitioning, no grouping.
                    }
                }
            }
            if loop_arrays.len() >= 2 {
                let exists = groups.iter().any(|g| g.arrays() == loop_arrays.as_slice());
                if !exists {
                    groups.push(GroupAccess::new(loop_arrays));
                }
            }
        }
    }

    AccessSummary {
        arrays,
        partitionings,
        communications,
        groups,
        shared_arrays: shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Access, LoopNest, Phase, Stmt, StmtKind};
    use crate::layout::{layout, LayoutOptions};
    use crate::parallelize::{parallelize, ParallelizeOptions};

    fn compile_pieces(p: &Program, cpus: usize) -> (ParallelPlan, DataLayout) {
        let plan = parallelize(
            p,
            &ParallelizeOptions {
                num_cpus: cpus,
                ..Default::default()
            },
        );
        let l = layout(p, &LayoutOptions::default());
        (plan, l)
    }

    fn stencil_program() -> Program {
        let mut p = Program::new("t");
        let a = p.array("A", 64 << 10);
        let b = p.array("B", 64 << 10);
        let c = p.array("irr", 16 << 10);
        let nest = LoopNest::new("sweep", 64, 500)
            .with_access(Access::read(
                a,
                AccessPattern::Stencil {
                    unit_bytes: 1024,
                    halo_units: 1,
                    wraparound: false,
                },
            ))
            .with_access(Access::write(
                b,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ))
            .with_access(Access::read(
                c,
                AccessPattern::Irregular {
                    touches_per_iter: 4,
                },
            ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 1,
        });
        p
    }

    #[test]
    fn distributed_accesses_produce_partitionings() {
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        assert_eq!(s.partitionings.len(), 2);
        assert_eq!(s.partitionings[0].unit_bytes, 1024);
        assert_eq!(s.partitionings[0].num_units, 64);
    }

    #[test]
    fn stencil_yields_shift_communication() {
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        assert_eq!(s.communications.len(), 1);
        assert_eq!(s.communications[0].pattern, CommunicationPattern::Shift);
        assert_eq!(s.communications[0].width_units, 1);
    }

    #[test]
    fn irregular_arrays_stay_unanalyzable() {
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        let analyzable: Vec<_> = s.analyzable_arrays().map(|a| a.name.clone()).collect();
        assert_eq!(analyzable, vec!["A", "B"]);
    }

    #[test]
    fn co_referenced_arrays_form_groups() {
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        assert_eq!(s.groups.len(), 1);
        // The irregular array is excluded from the group.
        assert_eq!(s.groups[0].arrays(), &[ArrayId(0), ArrayId(1)]);
    }

    #[test]
    fn suppressed_loops_contribute_nothing() {
        let mut p = stencil_program();
        p.phases[0].stmts[0].kind = StmtKind::FineGrain;
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        assert!(s.partitionings.is_empty());
        assert!(s.groups.is_empty());
    }

    #[test]
    fn summary_addresses_come_from_layout() {
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        for (i, info) in s.arrays.iter().enumerate() {
            assert_eq!(info.start, l.bases[i]);
        }
    }

    #[test]
    fn generated_summary_feeds_cdpc() {
        // End-to-end: the summary must validate and generate hints.
        let p = stencil_program();
        let (plan, l) = compile_pieces(&p, 4);
        let s = summarize(&p, &plan, &l);
        let m = cdpc_core::MachineParams::new(4, 4096, 16 * 4096, 1);
        let hints = cdpc_core::generate_hints(&s, &m).unwrap();
        // A and B are 16 pages each; the irregular array is unhinted.
        assert_eq!(
            hints.len(),
            32 + 1,
            "A+B pages plus one straddled boundary page"
        );
    }
}
