//! Locality analysis and prefetch planning.
//!
//! The paper's prefetching pass (after Mowry et al.) uses locality analysis
//! to insert prefetches *only for references likely to suffer misses*, and
//! software-pipelines them so data arrives before use. We reproduce the
//! decision structure:
//!
//! * A reference streams data (its per-processor volume in the loop is
//!   large relative to the external cache) → prefetch it.
//! * A reference re-touches a small resident footprint → no prefetch.
//! * Loops that were **tiled** during parallelization cannot be software
//!   pipelined (the paper's applu): their prefetches are issued with zero
//!   lookahead and arrive too late to help.

use crate::ir::{AccessPattern, Program};
use crate::parallelize::{ParallelPlan, StmtSchedule};

/// Prefetch-planning options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOptions {
    /// Master switch (the compiler flag).
    pub enabled: bool,
    /// External-cache capacity used by the locality test.
    pub cache_bytes: u64,
    /// Iterations of lookahead for software-pipelined prefetches.
    pub pipeline_depth: u64,
}

impl Default for PrefetchOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            cache_bytes: 1 << 20,
            pipeline_depth: 2,
        }
    }
}

/// The prefetch decision for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPrefetch {
    /// Insert prefetches for this reference.
    pub enabled: bool,
    /// Iterations ahead to prefetch (0 = same iteration: too late to hide
    /// latency, the tiled-loop case).
    pub lookahead: u64,
}

impl AccessPrefetch {
    /// No prefetching.
    pub const OFF: AccessPrefetch = AccessPrefetch {
        enabled: false,
        lookahead: 0,
    };
}

/// Prefetch decisions indexed `[phase][stmt][access]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchPlan {
    decisions: Vec<Vec<Vec<AccessPrefetch>>>,
}

impl PrefetchPlan {
    /// The decision for one access.
    pub fn decision(&self, phase: usize, stmt: usize, access: usize) -> AccessPrefetch {
        self.decisions[phase][stmt][access]
    }

    /// `true` if any access anywhere prefetches.
    pub fn any_enabled(&self) -> bool {
        self.decisions.iter().flatten().flatten().any(|d| d.enabled)
    }
}

/// Runs locality analysis and produces the prefetch plan.
pub fn plan_prefetches(
    program: &Program,
    plan: &ParallelPlan,
    opts: &PrefetchOptions,
) -> PrefetchPlan {
    let p = plan.num_cpus().max(1) as u64;
    let decisions = program
        .phases
        .iter()
        .enumerate()
        .map(|(pi, phase)| {
            phase
                .stmts
                .iter()
                .enumerate()
                .map(|(si, stmt)| {
                    let schedule = plan.schedule(pi, si);
                    // Reuse across iterations survives only if the *loop's*
                    // per-processor working set stays resident, so the
                    // locality test uses the sum over all references of the
                    // nest, not each reference alone.
                    let per_access_volume = |acc: &crate::ir::Access| match acc.pattern {
                        AccessPattern::Partitioned { unit_bytes }
                        | AccessPattern::Stencil { unit_bytes, .. } => {
                            let iters = match schedule {
                                StmtSchedule::Distributed { .. } => {
                                    stmt.nest.iterations.div_ceil(p)
                                }
                                _ => stmt.nest.iterations,
                            };
                            unit_bytes * iters
                        }
                        AccessPattern::WholeArray => program.decl(acc.array).bytes,
                        // Irregular references have no analyzable address
                        // stream to pipeline.
                        AccessPattern::Irregular { .. } => 0,
                    };
                    let loop_volume: u64 = stmt.nest.accesses.iter().map(per_access_volume).sum();
                    stmt.nest
                        .accesses
                        .iter()
                        .map(|acc| {
                            if !opts.enabled {
                                return AccessPrefetch::OFF;
                            }
                            // A reference misses when its own stream is not
                            // trivially resident AND the loop working set
                            // exceeds the cache.
                            let streams = per_access_volume(acc) > 0;
                            if streams && loop_volume > opts.cache_bytes / 2 {
                                AccessPrefetch {
                                    enabled: true,
                                    lookahead: if stmt.nest.tiled {
                                        0
                                    } else {
                                        opts.pipeline_depth
                                    },
                                }
                            } else {
                                AccessPrefetch::OFF
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    PrefetchPlan { decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Access, LoopNest, Phase, Stmt, StmtKind};
    use crate::parallelize::{parallelize, ParallelizeOptions};

    fn program(array_bytes: u64, unit: u64, iters: u64, tiled: bool) -> Program {
        let mut p = Program::new("t");
        let a = p.array("A", array_bytes);
        let mut nest = LoopNest::new("l", iters, 1000).with_access(Access::read(
            a,
            AccessPattern::Partitioned { unit_bytes: unit },
        ));
        if tiled {
            nest = nest.tiled();
        }
        p.phase(Phase {
            name: "ph".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 1,
        });
        p
    }

    fn opts(enabled: bool, cache: u64) -> PrefetchOptions {
        PrefetchOptions {
            enabled,
            cache_bytes: cache,
            pipeline_depth: 2,
        }
    }

    #[test]
    fn streaming_references_get_prefetched() {
        let p = program(1 << 20, 1 << 14, 64, false); // 1 MB swept, 4 CPUs → 256 KB each
        let plan = parallelize(
            &p,
            &ParallelizeOptions {
                num_cpus: 4,
                ..Default::default()
            },
        );
        let pf = plan_prefetches(&p, &plan, &opts(true, 256 << 10));
        let d = pf.decision(0, 0, 0);
        assert!(d.enabled);
        assert_eq!(d.lookahead, 2);
    }

    #[test]
    fn small_footprints_are_not_prefetched() {
        let p = program(64 << 10, 1 << 10, 64, false); // 16 KB per CPU
        let plan = parallelize(
            &p,
            &ParallelizeOptions {
                num_cpus: 4,
                ..Default::default()
            },
        );
        let pf = plan_prefetches(&p, &plan, &opts(true, 1 << 20));
        assert!(!pf.decision(0, 0, 0).enabled);
        assert!(!pf.any_enabled());
    }

    #[test]
    fn tiled_loops_lose_their_lookahead() {
        let p = program(1 << 20, 1 << 14, 64, true);
        let plan = parallelize(
            &p,
            &ParallelizeOptions {
                num_cpus: 2,
                ..Default::default()
            },
        );
        let pf = plan_prefetches(&p, &plan, &opts(true, 256 << 10));
        let d = pf.decision(0, 0, 0);
        assert!(d.enabled);
        assert_eq!(d.lookahead, 0, "tiling inhibits software pipelining");
    }

    #[test]
    fn disabled_flag_turns_everything_off() {
        let p = program(1 << 20, 1 << 14, 64, false);
        let plan = parallelize(
            &p,
            &ParallelizeOptions {
                num_cpus: 4,
                ..Default::default()
            },
        );
        let pf = plan_prefetches(&p, &plan, &opts(false, 1));
        assert!(!pf.any_enabled());
    }

    #[test]
    fn more_processors_reduce_prefetch_need() {
        // With enough CPUs, the per-processor stream fits the cache and the
        // compiler stops prefetching — matching the paper's observation
        // that prefetching matters most at low processor counts.
        let p = program(1 << 20, 1 << 14, 64, false);
        let mk = |cpus| {
            let plan = parallelize(
                &p,
                &ParallelizeOptions {
                    num_cpus: cpus,
                    ..Default::default()
                },
            );
            plan_prefetches(&p, &plan, &opts(true, 1 << 20))
                .decision(0, 0, 0)
                .enabled
        };
        assert!(mk(1), "uniprocessor stream of 1 MB > 512 KB threshold");
        assert!(!mk(16), "per-CPU stream of 64 KB stays resident");
    }
}
