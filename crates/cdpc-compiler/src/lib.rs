//! The parallelizing-compiler substrate for compiler-directed page
//! coloring.
//!
//! This crate stands in for the SUIF compiler of the ASPLOS '96 paper. It
//! accepts programs in a dense loop-nest IR ([`ir`]), schedules them across
//! processors ([`parallelize`]), lays out their data ([`layout`]), derives
//! the access-pattern summaries CDPC consumes ([`summarize`]), plans
//! compiler-inserted prefetching ([`locality`]), and lowers everything to
//! per-processor reference streams for the machine simulator ([`trace`]).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
//! use cdpc_compiler::{compile, CompileOptions};
//!
//! let mut prog = Program::new("example");
//! let a = prog.array("A", 64 << 10);
//! prog.phase(Phase {
//!     name: "sweep".into(),
//!     stmts: vec![Stmt {
//!         kind: StmtKind::Parallel,
//!         nest: LoopNest::new("l1", 64, 200)
//!             .with_access(Access::write(a, AccessPattern::Partitioned { unit_bytes: 1024 })),
//!     }],
//!     count: 10,
//! });
//! let compiled = compile(&prog, &CompileOptions::new(4))?;
//! assert_eq!(compiled.num_cpus, 4);
//! assert_eq!(compiled.summary.partitionings.len(), 1);
//! # Ok::<(), cdpc_compiler::CompileError>(())
//! ```

pub mod ir;
pub mod layout;
pub mod locality;
pub mod parallelize;
pub mod summarize;
pub mod trace;

mod error;

pub use error::CompileError;

use cdpc_core::summary::{AccessSummary, ArrayPartitioning, PartitionDirection, PartitionPolicy};

use ir::Program;
use layout::{DataLayout, LayoutMode, LayoutOptions};
use locality::{PrefetchOptions, PrefetchPlan};
use parallelize::{ParallelPlan, ParallelizeOptions, StmtSchedule};
use trace::{OpSpec, ResolvedAccess};

/// Compiler flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Target processor count.
    pub num_cpus: usize,
    /// Align and pad data structures (paper §5.4). Off reproduces the
    /// "unaligned" baseline of Figure 9.
    pub aligned: bool,
    /// Insert software prefetches (paper §6.2).
    pub prefetch: bool,
    /// Minimum `iterations * work` for distribution (suppression
    /// threshold).
    pub suppress_threshold: u64,
    /// Iteration distribution policy.
    pub partition_policy: PartitionPolicy,
    /// Iteration distribution direction.
    pub partition_direction: PartitionDirection,
    /// Demand-reference granularity: the L1 line size.
    pub granularity: u64,
    /// External-cache line size (prefetch granularity, alignment quantum).
    pub l2_line_bytes: u64,
    /// On-chip cache size (padding target).
    pub l1_cache_bytes: u64,
    /// External-cache size (locality-analysis threshold).
    pub l2_cache_bytes: u64,
    /// Prefetch software-pipeline depth, iterations.
    pub pipeline_depth: u64,
    /// Explicit layout-mode override; when set it wins over `aligned`
    /// (used by the padding experiments to select
    /// [`LayoutMode::Padded`]).
    pub layout_override: Option<LayoutMode>,
}

impl CompileOptions {
    /// Defaults matching the paper's base machine, for `num_cpus`
    /// processors.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            aligned: true,
            prefetch: false,
            suppress_threshold: 2_000,
            partition_policy: PartitionPolicy::Blocked,
            partition_direction: PartitionDirection::Forward,
            granularity: 32,
            l2_line_bytes: 128,
            l1_cache_bytes: 32 << 10,
            l2_cache_bytes: 1 << 20,
            pipeline_depth: 2,
            layout_override: None,
        }
    }

    /// The parallelizer settings these flags imply. Exposed so analysis
    /// passes (`cdpc-analyze`) reproduce exactly the plan [`compile`]
    /// would build.
    pub fn parallelize_options(&self) -> ParallelizeOptions {
        ParallelizeOptions {
            num_cpus: self.num_cpus,
            suppress_threshold: self.suppress_threshold,
            policy: self.partition_policy,
            direction: self.partition_direction,
        }
    }

    /// The layout settings these flags imply (same contract as
    /// [`CompileOptions::parallelize_options`]).
    pub fn layout_options(&self) -> LayoutOptions {
        LayoutOptions {
            mode: self.layout_override.unwrap_or(if self.aligned {
                LayoutMode::Aligned
            } else {
                LayoutMode::Unaligned
            }),
            line_bytes: self.l2_line_bytes,
            l1_cache_bytes: self.l1_cache_bytes,
            ..Default::default()
        }
    }

    /// Builder-style: disable alignment and padding.
    #[must_use]
    pub fn unaligned(mut self) -> Self {
        self.aligned = false;
        self
    }

    /// Builder-style: enable prefetch insertion.
    #[must_use]
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Builder-style: set the external cache assumed by locality analysis.
    #[must_use]
    pub fn with_l2_cache(mut self, bytes: u64) -> Self {
        self.l2_cache_bytes = bytes;
        self
    }
}

/// One statement, lowered: who executes what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledStmt {
    /// All processors run their slice, then meet at a barrier.
    Parallel {
        /// One reference stream per processor.
        specs: Vec<OpSpec>,
    },
    /// Only the master runs; slaves idle.
    Master {
        /// The master's stream.
        spec: OpSpec,
        /// `true` when the loop was parallelizable but suppressed (the
        /// paper charges this to *suppressed* rather than *sequential*
        /// overhead).
        suppressed: bool,
    },
}

/// One phase, lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPhase {
    /// Phase name.
    pub name: String,
    /// Steady-state occurrence count (statistics weight).
    pub count: u64,
    /// Statements in program order.
    pub stmts: Vec<CompiledStmt>,
}

/// Identity of one laid-out array: the source-level name together with
/// the virtual range the layout pass assigned it. This is what miss
/// attribution threads down the stack — the memory system tags every
/// classified miss with the index of the array whose range the faulting
/// address falls in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source-level array name.
    pub name: String,
    /// First byte of the array's virtual range.
    pub base: cdpc_vm::addr::VirtAddr,
    /// Size in bytes.
    pub bytes: u64,
}

/// The compiler's full output for one (program, machine) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Program name.
    pub name: String,
    /// Processors compiled for.
    pub num_cpus: usize,
    /// Data layout (array base addresses, code segment).
    pub layout: DataLayout,
    /// Array identities in declaration order (index = region tag).
    pub arrays: Vec<ArrayInfo>,
    /// CDPC access summary (stage 1 of the paper's pipeline).
    pub summary: AccessSummary,
    /// Lowered phases.
    pub phases: Vec<CompiledPhase>,
    /// Total data-set size in bytes.
    pub data_bytes: u64,
}

impl CompiledProgram {
    /// Instructions one full pass over all phases executes on `cpu`
    /// (the master also executes sequential and suppressed work).
    pub fn instr_count(&self, cpu: usize) -> u64 {
        let mut total = 0;
        for phase in &self.phases {
            for stmt in &phase.stmts {
                total += phase.count
                    * match stmt {
                        CompiledStmt::Parallel { specs } => specs[cpu].instr_count(),
                        CompiledStmt::Master { spec, .. } => {
                            if cpu == 0 {
                                spec.instr_count()
                            } else {
                                0
                            }
                        }
                    };
            }
        }
        total
    }

    /// The virtual-range → array-index map the memory system uses to
    /// attribute misses (region `id` = position in [`Self::arrays`]).
    pub fn region_map(&self) -> cdpc_vm::RegionMap {
        cdpc_vm::RegionMap::new(
            self.arrays
                .iter()
                .enumerate()
                .map(|(i, a)| cdpc_vm::Region {
                    start: a.base.0,
                    end: a.base.0 + a.bytes,
                    id: i as u32,
                })
                .collect(),
        )
    }

    /// The array names, in region-id order (report labels).
    pub fn array_names(&self) -> Vec<String> {
        self.arrays.iter().map(|a| a.name.clone()).collect()
    }

    /// The array (index into [`Self::arrays`]) whose laid-out range contains
    /// `va`, if any. Code and guard pages belong to no array.
    pub fn array_of_addr(&self, va: u64) -> Option<usize> {
        self.arrays
            .iter()
            .position(|a| (a.base.0..a.base.0 + a.bytes).contains(&va))
    }
}

/// Runs the whole pipeline: validate → parallelize → layout → summarize →
/// prefetch-plan → lower.
///
/// # Errors
///
/// Returns a [`CompileError`] when the program is internally inconsistent.
pub fn compile(program: &Program, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    program.validate()?;

    let plan = parallelize::parallelize(program, &opts.parallelize_options());
    let data_layout = layout::layout(program, &opts.layout_options());
    let summary = summarize::summarize(program, &plan, &data_layout);
    let prefetch = locality::plan_prefetches(
        program,
        &plan,
        &PrefetchOptions {
            enabled: opts.prefetch,
            cache_bytes: opts.l2_cache_bytes,
            pipeline_depth: opts.pipeline_depth,
        },
    );

    let phases = lower(program, &plan, &data_layout, &prefetch, opts);

    let arrays = program
        .arrays
        .iter()
        .zip(&data_layout.bases)
        .map(|(decl, &base)| ArrayInfo {
            name: decl.name.clone(),
            base,
            bytes: decl.bytes,
        })
        .collect();

    Ok(CompiledProgram {
        name: program.name.clone(),
        num_cpus: opts.num_cpus,
        layout: data_layout,
        arrays,
        summary,
        phases,
        data_bytes: program.data_set_bytes(),
    })
}

fn lower(
    program: &Program,
    plan: &ParallelPlan,
    data_layout: &DataLayout,
    prefetch: &PrefetchPlan,
    opts: &CompileOptions,
) -> Vec<CompiledPhase> {
    let p = opts.num_cpus;
    program
        .phases
        .iter()
        .enumerate()
        .map(|(pi, phase)| CompiledPhase {
            name: phase.name.clone(),
            count: phase.count,
            stmts: phase
                .stmts
                .iter()
                .enumerate()
                .map(|(si, stmt)| {
                    let accesses: Vec<ResolvedAccess> = stmt
                        .nest
                        .accesses
                        .iter()
                        .enumerate()
                        .map(|(ai, acc)| ResolvedAccess {
                            base: data_layout.bases[acc.array.0].0,
                            bytes: program.arrays[acc.array.0].bytes,
                            pattern: acc.pattern,
                            is_write: acc.is_write,
                            prefetch: prefetch.decision(pi, si, ai),
                        })
                        .collect();
                    let spec_for = |lo: u64, hi: u64, cpu_salt: u64| OpSpec {
                        lo,
                        hi,
                        total_iters: stmt.nest.iterations,
                        accesses: accesses.clone(),
                        work_per_iter: stmt.nest.work_per_iter,
                        code_base: data_layout.code_base.0,
                        code_bytes: stmt.nest.code_bytes,
                        granularity: opts.granularity,
                        l2_line: opts.l2_line_bytes,
                        seed: ((pi as u64) << 32) | ((si as u64) << 16) | cpu_salt,
                    };
                    match plan.schedule(pi, si) {
                        StmtSchedule::Distributed { policy, direction } => {
                            // Reuse the cdpc-core partition arithmetic so the
                            // summary and the generated code agree exactly.
                            let part = ArrayPartitioning::new(
                                cdpc_core::summary::ArrayId(0),
                                1,
                                stmt.nest.iterations,
                                policy,
                                direction,
                            );
                            let specs = (0..p)
                                .map(|cpu| {
                                    let (lo, hi) = part.unit_range(cpu, p);
                                    spec_for(lo, hi, cpu as u64)
                                })
                                .collect();
                            CompiledStmt::Parallel { specs }
                        }
                        StmtSchedule::Master => CompiledStmt::Master {
                            spec: spec_for(0, stmt.nest.iterations, 0),
                            suppressed: false,
                        },
                        StmtSchedule::Suppressed => CompiledStmt::Master {
                            spec: spec_for(0, stmt.nest.iterations, 0),
                            suppressed: true,
                        },
                    }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Access, AccessPattern, LoopNest, Phase, Stmt, StmtKind};

    fn stencil_program() -> Program {
        let mut p = Program::new("stencil");
        let a = p.array("A", 256 << 10);
        let b = p.array("B", 256 << 10);
        let nest = LoopNest::new("sweep", 256, 400)
            .with_access(Access::read(
                a,
                AccessPattern::Stencil {
                    unit_bytes: 1024,
                    halo_units: 1,
                    wraparound: false,
                },
            ))
            .with_access(Access::write(
                b,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 5,
        });
        p
    }

    #[test]
    fn compile_produces_one_spec_per_cpu() {
        let c = compile(&stencil_program(), &CompileOptions::new(4)).unwrap();
        let CompiledStmt::Parallel { specs } = &c.phases[0].stmts[0] else {
            panic!("expected a distributed stmt");
        };
        assert_eq!(specs.len(), 4);
        // Iteration ranges tile 0..256 exactly.
        let mut cursor = 0;
        for s in specs {
            assert_eq!(s.lo, cursor);
            cursor = s.hi;
        }
        assert_eq!(cursor, 256);
    }

    #[test]
    fn compiled_ranges_match_summary_partitioning() {
        // The generated code and the summary must describe the same
        // partitioning, or CDPC would color for the wrong access pattern.
        let c = compile(&stencil_program(), &CompileOptions::new(4)).unwrap();
        let CompiledStmt::Parallel { specs } = &c.phases[0].stmts[0] else {
            panic!();
        };
        let part = &c.summary.partitionings[0];
        for (cpu, spec) in specs.iter().enumerate() {
            assert_eq!(part.unit_range(cpu, 4), (spec.lo, spec.hi));
        }
    }

    #[test]
    fn uniprocessor_compiles_to_master_stmts() {
        let c = compile(&stencil_program(), &CompileOptions::new(1)).unwrap();
        assert!(matches!(
            c.phases[0].stmts[0],
            CompiledStmt::Master {
                suppressed: false,
                ..
            }
        ));
        // On 1 CPU no loop is distributed, so the summary has no
        // partitionings and CDPC falls back to the OS policy everywhere.
        assert!(c.summary.partitionings.is_empty());
    }

    #[test]
    fn instr_count_weights_phase_occurrences() {
        let c = compile(&stencil_program(), &CompileOptions::new(2)).unwrap();
        // 256 iterations × 400 instr × 5 occurrences, split over 2 CPUs.
        assert_eq!(c.instr_count(0) + c.instr_count(1), 256 * 400 * 5);
    }

    #[test]
    fn prefetch_flag_annotates_streaming_accesses() {
        let opts = CompileOptions::new(2)
            .with_prefetch()
            .with_l2_cache(64 << 10);
        let c = compile(&stencil_program(), &opts).unwrap();
        let CompiledStmt::Parallel { specs } = &c.phases[0].stmts[0] else {
            panic!();
        };
        assert!(specs[0].accesses.iter().any(|a| a.prefetch.enabled));
        let has_pf = specs[0]
            .ops()
            .any(|o| matches!(o, trace::TraceOp::Prefetch { .. }));
        assert!(has_pf);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = stencil_program();
        p.phases[0].stmts[0].nest.iterations = 10_000; // exceeds arrays
        assert!(matches!(
            compile(&p, &CompileOptions::new(2)),
            Err(CompileError::AccessExceedsArray { .. })
        ));
    }

    #[test]
    fn alignment_flag_switches_layout_mode() {
        let aligned = compile(&stencil_program(), &CompileOptions::new(2)).unwrap();
        let unaligned = compile(&stencil_program(), &CompileOptions::new(2).unaligned()).unwrap();
        assert_eq!(aligned.layout.bases[0].0 % 128, 0);
        // Same arrays, different packing.
        assert!(unaligned.layout.total_data_bytes <= aligned.layout.total_data_bytes);
    }

    #[test]
    fn suppressed_stmt_lowered_to_master_with_flag() {
        let mut p = stencil_program();
        p.phases[0].stmts[0].kind = StmtKind::FineGrain;
        let c = compile(&p, &CompileOptions::new(4)).unwrap();
        assert!(matches!(
            c.phases[0].stmts[0],
            CompiledStmt::Master {
                suppressed: true,
                ..
            }
        ));
    }
}
