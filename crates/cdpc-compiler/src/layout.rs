//! The data-layout pass: assigning virtual addresses to arrays.
//!
//! The paper's SUIF runtime dynamically allocates all data structures and
//! (a) aligns each to a cache-line boundary — eliminating false sharing
//! between structures and within them when processors work on multiples of
//! a line — and (b) inserts small pads so the starting addresses of
//! structures *used together* never map to the same location in the
//! on-chip cache (§5.4).
//!
//! The unaligned mode packs arrays back-to-back at element granularity,
//! reproducing the "no alignment, no padding" baseline of Figure 9.

use cdpc_vm::addr::VirtAddr;

use crate::ir::Program;

/// Layout strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutMode {
    /// Pack arrays back-to-back at element (8-byte) granularity: starting
    /// addresses may share cache lines and collide in the on-chip cache.
    Unaligned,
    /// Cache-line align every array and pad between grouped arrays so
    /// their starts differ in the on-chip cache (the paper's default).
    Aligned,
    /// The classic *padding* technique (paper §2.2): cache-line align and
    /// insert a fixed pad of `pad_bytes` between consecutive arrays,
    /// offsetting their relative cache positions. Works only through the
    /// virtual address space — "pads that are larger than a page size are
    /// ineffective if the operating system has a bin hopping policy" —
    /// which the `padding` experiment demonstrates.
    Padded {
        /// Bytes inserted between consecutive arrays.
        pad_bytes: u64,
    },
}

/// Layout options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Strategy.
    pub mode: LayoutMode,
    /// External-cache line size (alignment quantum), bytes.
    pub line_bytes: u64,
    /// On-chip cache size, bytes (pad target for start-address spreading).
    pub l1_cache_bytes: u64,
    /// First byte of the data segment.
    pub data_base: u64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        Self {
            mode: LayoutMode::Aligned,
            line_bytes: 128,
            l1_cache_bytes: 32 << 10,
            data_base: 0x1_0000,
        }
    }
}

/// Where everything ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// Base address of each array, indexed by [`crate::ir::ArrayRef`].
    pub bases: Vec<VirtAddr>,
    /// Base of the synthetic code segment (instruction fetches).
    pub code_base: VirtAddr,
    /// Bytes from `data_base` to the end of the last array (pads included).
    pub total_data_bytes: u64,
}

impl DataLayout {
    /// The base address of one array.
    pub fn base(&self, array: crate::ir::ArrayRef) -> VirtAddr {
        self.bases[array.0]
    }
}

/// Runs the layout pass.
pub fn layout(program: &Program, opts: &LayoutOptions) -> DataLayout {
    // Group relation: arrays co-referenced by any loop.
    let mut grouped: Vec<Vec<usize>> = Vec::new();
    for phase in &program.phases {
        for stmt in &phase.stmts {
            let refs: Vec<usize> = stmt.nest.referenced_arrays().iter().map(|r| r.0).collect();
            if refs.len() >= 2 {
                grouped.push(refs);
            }
        }
    }
    let used_together =
        |a: usize, b: usize| grouped.iter().any(|g| g.contains(&a) && g.contains(&b));

    let mut bases = Vec::with_capacity(program.arrays.len());
    let mut cursor = opts.data_base;
    for (i, decl) in program.arrays.iter().enumerate() {
        match opts.mode {
            LayoutMode::Unaligned => {
                cursor = align_up(cursor, 8);
            }
            LayoutMode::Padded { pad_bytes } => {
                if i > 0 {
                    cursor += pad_bytes;
                }
                cursor = align_up(cursor, opts.line_bytes);
            }
            LayoutMode::Aligned => {
                cursor = align_up(cursor, opts.line_bytes);
                // Pad until this array's start does not collide, in the
                // on-chip cache, with the start of any earlier array it is
                // used together with. When more arrays are grouped than the
                // on-chip cache has line slots, a collision is unavoidable:
                // give up after one full lap of the slot space.
                let slot = |addr: u64| (addr % opts.l1_cache_bytes) / opts.line_bytes;
                let max_tries = opts.l1_cache_bytes / opts.line_bytes;
                for _ in 0..max_tries {
                    let collision = bases.iter().enumerate().any(|(j, b): (usize, &VirtAddr)| {
                        used_together(i, j) && slot(b.0) == slot(cursor)
                    });
                    if !collision {
                        break;
                    }
                    cursor += opts.line_bytes;
                }
            }
        }
        bases.push(VirtAddr(cursor));
        cursor += decl.bytes;
    }
    let total_data_bytes = cursor - opts.data_base;
    // Code segment on the next page boundary, with a guard page.
    let code_base = VirtAddr(align_up(cursor, 4096) + 4096);
    DataLayout {
        bases,
        code_base,
        total_data_bytes,
    }
}

fn align_up(x: u64, quantum: u64) -> u64 {
    x.div_ceil(quantum) * quantum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Access, AccessPattern, LoopNest, Phase, Stmt, StmtKind};

    fn program_with_sizes(sizes: &[u64], group_all: bool) -> Program {
        let mut p = Program::new("t");
        let refs: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| p.array(format!("a{i}"), s))
            .collect();
        if group_all {
            let mut nest = LoopNest::new("l", 4, 1);
            for &r in &refs {
                nest = nest.with_access(Access::read(r, AccessPattern::WholeArray));
            }
            p.phase(Phase {
                name: "ph".into(),
                stmts: vec![Stmt {
                    kind: StmtKind::Parallel,
                    nest,
                }],
                count: 1,
            });
        }
        p
    }

    #[test]
    fn unaligned_packs_tightly() {
        let p = program_with_sizes(&[100, 100], false);
        let l = layout(
            &p,
            &LayoutOptions {
                mode: LayoutMode::Unaligned,
                ..Default::default()
            },
        );
        // Second array starts at the first 8-byte boundary after byte 100.
        assert_eq!(l.bases[1].0 - l.bases[0].0, 104);
    }

    #[test]
    fn aligned_starts_on_line_boundaries() {
        let p = program_with_sizes(&[100, 100], false);
        let l = layout(&p, &LayoutOptions::default());
        for b in &l.bases {
            assert_eq!(b.0 % 128, 0, "array must start on a cache line");
        }
    }

    #[test]
    fn grouped_arrays_avoid_on_chip_collisions() {
        // Two 32 KB arrays used together: without padding their starts are
        // exactly one L1-cache apart → same on-chip slot. The pass must
        // separate them.
        let l1 = 32 << 10;
        let p = program_with_sizes(&[l1, l1, l1], true);
        let l = layout(&p, &LayoutOptions::default());
        let slot = |a: u64| (a % l1) / 128;
        assert_ne!(slot(l.bases[0].0), slot(l.bases[1].0));
        assert_ne!(slot(l.bases[0].0), slot(l.bases[2].0));
        assert_ne!(slot(l.bases[1].0), slot(l.bases[2].0));
    }

    #[test]
    fn ungrouped_arrays_need_no_padding() {
        let l1 = 32 << 10;
        let p = program_with_sizes(&[l1, l1], false);
        let l = layout(&p, &LayoutOptions::default());
        // Starts exactly one array apart: no pad inserted.
        assert_eq!(l.bases[1].0 - l.bases[0].0, l1);
    }

    #[test]
    fn code_segment_is_page_aligned_beyond_data() {
        let p = program_with_sizes(&[5000], false);
        let l = layout(&p, &LayoutOptions::default());
        assert_eq!(l.code_base.0 % 4096, 0);
        assert!(l.code_base.0 >= l.bases[0].0 + 5000);
    }

    #[test]
    fn arrays_never_overlap() {
        let p = program_with_sizes(&[100, 4096, 32 << 10, 77], true);
        let l = layout(&p, &LayoutOptions::default());
        for i in 1..l.bases.len() {
            assert!(
                l.bases[i].0 >= l.bases[i - 1].0 + p.arrays[i - 1].bytes,
                "array {i} overlaps its predecessor"
            );
        }
    }
}
