//! Lowering: from scheduled loops to per-processor reference streams.
//!
//! The machine simulator is trace-driven; this module is the "code
//! generator" that turns one scheduled loop nest into the stream of memory
//! references one processor issues. References are emitted at L1-line
//! granularity (one op per distinct on-chip line touched), with an
//! [`TraceOp::Instr`] op carrying the computation between them — the same
//! fidelity/speed trade the paper makes by simulating only the memory
//! hierarchy in detail.

use cdpc_vm::addr::VirtAddr;

use crate::ir::AccessPattern;
use crate::locality::AccessPrefetch;

/// One event of a processor's reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Execute `n` instructions (one cycle each on the paper's single-issue
    /// 400 MHz CPUs).
    Instr(u64),
    /// Demand load.
    Load(VirtAddr),
    /// Demand store.
    Store(VirtAddr),
    /// Instruction fetch.
    IFetch(VirtAddr),
    /// Software prefetch (R10000 semantics; `exclusive` requests
    /// ownership).
    Prefetch {
        /// Target address.
        addr: VirtAddr,
        /// Prefetch-for-write.
        exclusive: bool,
    },
}

/// One access of the loop body, resolved against the data layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAccess {
    /// Base address of the array.
    pub base: u64,
    /// Array size in bytes.
    pub bytes: u64,
    /// Traversal shape.
    pub pattern: AccessPattern,
    /// Store vs. load.
    pub is_write: bool,
    /// Prefetch decision from locality analysis.
    pub prefetch: AccessPrefetch,
}

/// The byte footprint of one access over one processor's iteration range,
/// summarized as absolute-VA intervals instead of a reference stream.
///
/// For the affine patterns the intervals are *exact*: they cover precisely
/// the addresses [`OpSpec::ops`] emits for the access (start rounded down
/// to the demand granularity, the way `emit_range` aligns its first line).
/// Irregular streams have no static footprint; they are bounded by the
/// whole array and flagged `exact = false` — a sound over-approximation
/// for set-interference analysis, never silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessFootprint {
    /// Base address of the accessed array.
    pub base: u64,
    /// Array size in bytes.
    pub bytes: u64,
    /// Store vs. load.
    pub is_write: bool,
    /// `false` when the intervals over-approximate (irregular access).
    pub exact: bool,
    /// Absolute `[start, end)` VA intervals, sorted and disjoint.
    pub intervals: Vec<(u64, u64)>,
}

/// The reference stream of one processor over one loop nest.
///
/// Cheap to clone; materialize the stream with [`OpSpec::ops`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// First iteration this processor executes.
    pub lo: u64,
    /// One past the last iteration.
    pub hi: u64,
    /// Total iterations of the loop across all processors (for wraparound
    /// stencils).
    pub total_iters: u64,
    /// Body accesses.
    pub accesses: Vec<ResolvedAccess>,
    /// Instructions per iteration.
    pub work_per_iter: u64,
    /// Code segment base for instruction fetches.
    pub code_base: u64,
    /// Code footprint of the body.
    pub code_bytes: u64,
    /// Demand-reference emission granularity (the L1 line size).
    pub granularity: u64,
    /// Prefetch emission granularity (the L2 line size).
    pub l2_line: u64,
    /// Seed for irregular access streams.
    pub seed: u64,
}

impl OpSpec {
    /// Number of iterations this processor executes.
    pub fn local_iters(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// Materializes the reference stream lazily as a streaming
    /// [`OpCursor`]: one scratch buffer is refilled per iteration, so after
    /// the first few iterations establish its capacity the whole stream is
    /// produced without heap allocation.
    pub fn ops(&self) -> OpCursor<'_> {
        OpCursor::new(self)
    }

    /// Total instruction count of the stream (for MCPI denominators).
    pub fn instr_count(&self) -> u64 {
        self.local_iters() * self.work_per_iter
    }

    /// The byte footprints of every body access over this processor's
    /// iteration range `[lo, hi)` — the set-granular summaries the static
    /// conflict prover consumes. See [`AccessFootprint`] for the exactness
    /// contract; a property test pins the intervals to the demand stream.
    pub fn access_footprints(&self) -> Vec<AccessFootprint> {
        self.accesses
            .iter()
            .map(|acc| self.access_footprint(acc))
            .collect()
    }

    fn access_footprint(&self, acc: &ResolvedAccess) -> AccessFootprint {
        let (lo, hi, n) = (self.lo, self.hi, self.total_iters);
        let mut exact = true;
        // Array-relative byte pieces, each paired with the granularity its
        // start is rounded down to. Center sweeps round to the prefetch
        // granularity when software pipelining is on (prefetches align the
        // first line to `l2_line`, below the demand start); halo reads have
        // no prefetch and round only to the demand granularity.
        let center_gran = if acc.prefetch.enabled {
            self.l2_line.max(self.granularity)
        } else {
            self.granularity
        };
        let mut pieces: Vec<(u64, u64, u64)> = Vec::new();
        match acc.pattern {
            AccessPattern::Partitioned { unit_bytes } => {
                // `center_range` caps each unit's end at the array size.
                pieces.push((
                    lo.saturating_mul(unit_bytes),
                    hi.saturating_mul(unit_bytes).min(acc.bytes),
                    center_gran,
                ));
            }
            AccessPattern::Stencil {
                unit_bytes,
                halo_units,
                wraparound,
            } => {
                pieces.push((
                    lo.saturating_mul(unit_bytes),
                    hi.saturating_mul(unit_bytes).min(acc.bytes),
                    center_gran,
                ));
                if !acc.is_write && halo_units > 0 && lo < hi {
                    // Units touched as a *full* (uncapped) halo range by
                    // some iteration `i ∈ [lo, hi)`: `i − d` reaches
                    // `[lo − halo, hi − 1)` and `i + d` reaches
                    // `[lo + 1, min(hi + halo, n))`. Only a lone center
                    // unit (`hi − lo == 1`) is never its neighbours' halo.
                    let below = (lo.saturating_sub(halo_units), hi - 1);
                    let above = (lo + 1, (hi + halo_units).min(n));
                    for (a, b) in [below, above] {
                        pieces.push((
                            a.saturating_mul(unit_bytes),
                            b.saturating_mul(unit_bytes),
                            self.granularity,
                        ));
                    }
                    if wraparound {
                        // Periodic wrap pieces, mirroring `demand_ops`'
                        // `(i + n − d) % n` / `(i + d) % n` indices.
                        if lo < halo_units {
                            pieces.push((
                                n.saturating_sub(halo_units - lo).saturating_mul(unit_bytes),
                                n.saturating_mul(unit_bytes),
                                self.granularity,
                            ));
                        }
                        if hi + halo_units > n {
                            pieces.push((
                                0,
                                (hi + halo_units - n).min(n).saturating_mul(unit_bytes),
                                self.granularity,
                            ));
                        }
                    }
                }
            }
            AccessPattern::WholeArray => {
                // Each processor streams the whole array once over its
                // local iterations.
                if lo < hi {
                    pieces.push((0, acc.bytes, center_gran));
                }
            }
            AccessPattern::Irregular { .. } => {
                // No static footprint: bounded by the array's demand lines.
                exact = false;
                if lo < hi {
                    let lines = (acc.bytes / self.granularity).max(1);
                    pieces.push((0, lines * self.granularity, self.granularity));
                }
            }
        }
        let mut intervals: Vec<(u64, u64)> = pieces
            .into_iter()
            .filter(|&(start, end, _)| start < end && lo < hi)
            .map(|(start, end, gran)| {
                let start = start / gran.max(1) * gran.max(1);
                (acc.base + start, acc.base + end)
            })
            .collect();
        intervals.sort_unstable();
        // Merge touching/overlapping intervals.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
        for (a, b) in intervals {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        AccessFootprint {
            base: acc.base,
            bytes: acc.bytes,
            is_write: acc.is_write,
            exact,
            intervals: merged,
        }
    }

    /// Generates iteration `i`'s ops into `ops` (appending; callers clear).
    /// Adjacent [`TraceOp::Instr`] ops are fused at generation time.
    fn fill_iteration(&self, i: u64, ops: &mut Vec<TraceOp>) {
        // Instruction fetch: the body's code lines are touched cyclically;
        // bodies smaller than the L1I hit after warm-up, fpppp-sized
        // bodies keep missing.
        let code_lines = self.code_bytes.div_ceil(self.granularity).max(1);
        let local = i - self.lo;
        push_fused(
            ops,
            TraceOp::IFetch(VirtAddr(
                self.code_base + (local % code_lines) * self.granularity,
            )),
        );
        if self.work_per_iter > 0 {
            push_fused(ops, TraceOp::Instr(self.work_per_iter));
        }
        // Software-pipelined prefetches: prologue on the first iteration,
        // then one block of lookahead per iteration.
        for acc in &self.accesses {
            if !acc.prefetch.enabled {
                continue;
            }
            let emit_for = |ops: &mut Vec<TraceOp>, j: u64| {
                if j >= self.hi {
                    return;
                }
                if let Some((lo, hi)) = self.center_range(acc, j) {
                    let mut line = lo / self.l2_line * self.l2_line;
                    while line < hi {
                        ops.push(TraceOp::Prefetch {
                            addr: VirtAddr(acc.base + line),
                            exclusive: acc.is_write,
                        });
                        line += self.l2_line;
                    }
                }
            };
            if acc.prefetch.lookahead == 0 {
                // Tiled loop: prefetch arrives with the demand access.
                emit_for(ops, i);
            } else {
                if i == self.lo {
                    for j in self.lo..(self.lo + acc.prefetch.lookahead).min(self.hi) {
                        emit_for(ops, j);
                    }
                }
                emit_for(ops, i + acc.prefetch.lookahead);
            }
        }
        // Demand references.
        for acc in &self.accesses {
            self.demand_ops(ops, acc, i);
        }
    }

    /// The center (written or owned) byte range of `acc` at iteration `i`,
    /// relative to the array base.
    fn center_range(&self, acc: &ResolvedAccess, i: u64) -> Option<(u64, u64)> {
        match acc.pattern {
            AccessPattern::Partitioned { unit_bytes }
            | AccessPattern::Stencil { unit_bytes, .. } => {
                Some((i * unit_bytes, ((i + 1) * unit_bytes).min(acc.bytes)))
            }
            AccessPattern::WholeArray => {
                let local_iters = self.local_iters().max(1);
                let chunk = acc.bytes.div_ceil(local_iters);
                let local = i - self.lo;
                let lo = (local * chunk).min(acc.bytes);
                let hi = ((local + 1) * chunk).min(acc.bytes);
                if lo < hi {
                    Some((lo, hi))
                } else {
                    None
                }
            }
            AccessPattern::Irregular { .. } => None,
        }
    }

    fn demand_ops(&self, ops: &mut Vec<TraceOp>, acc: &ResolvedAccess, i: u64) {
        let emit_range = |ops: &mut Vec<TraceOp>, lo: u64, hi: u64, write: bool| {
            let mut line = lo / self.granularity * self.granularity;
            while line < hi {
                let addr = VirtAddr(acc.base + line);
                ops.push(if write {
                    TraceOp::Store(addr)
                } else {
                    TraceOp::Load(addr)
                });
                line += self.granularity;
            }
        };
        match acc.pattern {
            AccessPattern::Partitioned { .. } | AccessPattern::WholeArray => {
                if let Some((lo, hi)) = self.center_range(acc, i) {
                    emit_range(ops, lo, hi, acc.is_write);
                }
            }
            AccessPattern::Stencil {
                unit_bytes,
                halo_units,
                wraparound,
            } => {
                // Writes touch the center; reads also touch the halo.
                if let Some((lo, hi)) = self.center_range(acc, i) {
                    emit_range(ops, lo, hi, acc.is_write);
                }
                if !acc.is_write {
                    let n = self.total_iters;
                    for d in 1..=halo_units {
                        // Unit below.
                        if i >= d {
                            emit_range(ops, (i - d) * unit_bytes, (i - d + 1) * unit_bytes, false);
                        } else if wraparound {
                            let j = (i + n - d) % n;
                            emit_range(ops, j * unit_bytes, (j + 1) * unit_bytes, false);
                        }
                        // Unit above.
                        if i + d < n {
                            emit_range(ops, (i + d) * unit_bytes, (i + d + 1) * unit_bytes, false);
                        } else if wraparound {
                            let j = (i + d) % n;
                            emit_range(ops, j * unit_bytes, (j + 1) * unit_bytes, false);
                        }
                    }
                }
            }
            AccessPattern::Irregular { touches_per_iter } => {
                let lines = (acc.bytes / self.granularity).max(1);
                let mut state = self
                    .seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(i.wrapping_mul(0xD1B54A32D192ED03))
                    | 1;
                for _ in 0..touches_per_iter {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let line = state % lines;
                    let addr = VirtAddr(acc.base + line * self.granularity);
                    ops.push(if acc.is_write {
                        TraceOp::Store(addr)
                    } else {
                        TraceOp::Load(addr)
                    });
                }
            }
        }
    }
}

/// Appends `op`, fusing it into the previous op when both are
/// [`TraceOp::Instr`]. The machine charges `Instr(n)` as `n` one-cycle
/// instructions with no memory reference, so `Instr(a), Instr(b)` and
/// `Instr(a + b)` are indistinguishable to the simulation; fusing at
/// generation time removes the per-op scheduling overhead downstream.
#[inline]
fn push_fused(ops: &mut Vec<TraceOp>, op: TraceOp) {
    if let TraceOp::Instr(n) = op {
        if let Some(TraceOp::Instr(m)) = ops.last_mut() {
            *m += n;
            return;
        }
    }
    ops.push(op);
}

/// A streaming cursor over one processor's reference stream.
///
/// This is the zero-allocation replacement for materializing each
/// iteration into a fresh `Vec`: the cursor owns a single scratch buffer
/// that is cleared and refilled per iteration, so its capacity stabilizes
/// at the largest iteration seen and the steady state allocates nothing.
/// Created by [`OpSpec::ops`].
#[derive(Debug, Clone)]
pub struct OpCursor<'a> {
    spec: &'a OpSpec,
    /// Next iteration to generate into the scratch buffer.
    next_iter: u64,
    /// Ops of the current iteration.
    buf: Vec<TraceOp>,
    /// Read position within `buf`.
    pos: usize,
}

impl<'a> OpCursor<'a> {
    fn new(spec: &'a OpSpec) -> Self {
        Self {
            spec,
            next_iter: spec.lo,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Resets the cursor to the start of the stream. The scratch buffer's
    /// capacity is kept, so a rewound drain allocates nothing at all.
    pub fn rewind(&mut self) {
        self.next_iter = self.spec.lo;
        self.buf.clear();
        self.pos = 0;
    }

    /// Current scratch-buffer capacity (for allocation-freedom tests).
    pub fn scratch_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl Iterator for OpCursor<'_> {
    type Item = TraceOp;

    #[inline]
    fn next(&mut self) -> Option<TraceOp> {
        loop {
            if let Some(&op) = self.buf.get(self.pos) {
                self.pos += 1;
                return Some(op);
            }
            if self.next_iter >= self.spec.hi {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            self.spec.fill_iteration(self.next_iter, &mut self.buf);
            self.next_iter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(accesses: Vec<ResolvedAccess>, lo: u64, hi: u64, total: u64) -> OpSpec {
        OpSpec {
            lo,
            hi,
            total_iters: total,
            accesses,
            work_per_iter: 10,
            code_base: 0x100000,
            code_bytes: 64,
            granularity: 32,
            l2_line: 128,
            seed: 7,
        }
    }

    fn acc(pattern: AccessPattern, write: bool) -> ResolvedAccess {
        ResolvedAccess {
            base: 0x1000,
            bytes: 4096,
            pattern,
            is_write: write,
            prefetch: AccessPrefetch::OFF,
        }
    }

    /// Every address (demand + prefetch) the spec's sole access emits.
    fn touched(s: &OpSpec) -> std::collections::BTreeSet<u64> {
        s.ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) | TraceOp::Store(a) => Some(a.0),
                TraceOp::Prefetch { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect()
    }

    /// All `gran`-aligned addresses inside the footprint's intervals.
    fn aligned_in(fp: &AccessFootprint, gran: u64) -> std::collections::BTreeSet<u64> {
        let mut out = std::collections::BTreeSet::new();
        for &(lo, hi) in &fp.intervals {
            let mut a = lo.div_ceil(gran) * gran;
            while a < hi {
                out.insert(a);
                a += gran;
            }
        }
        out
    }

    /// The footprint exactness contract: emitted addresses are exactly the
    /// demand-granularity lines of the intervals (for prefetching accesses,
    /// exactly the coarser prefetch-granularity lines are all touched too,
    /// and nothing escapes the intervals).
    fn assert_footprint_exact(s: &OpSpec) {
        let fp = &s.access_footprints()[0];
        assert!(fp.exact);
        let got = touched(s);
        let acc = &s.accesses[0];
        if acc.prefetch.enabled {
            for a in &got {
                assert!(
                    fp.intervals.iter().any(|&(lo, hi)| (lo..hi).contains(a)),
                    "address {a:#x} escapes footprint {:?}",
                    fp.intervals
                );
            }
            let coarse = aligned_in(fp, s.l2_line.max(s.granularity));
            assert!(
                coarse.is_subset(&got),
                "footprint line not touched: {:?}",
                coarse.difference(&got).next()
            );
        } else {
            assert_eq!(got, aligned_in(fp, s.granularity), "footprint not exact");
        }
    }

    #[test]
    fn partitioned_footprint_matches_stream() {
        // Units that neither start at 0 nor align to the l2 line.
        let s = spec(
            vec![acc(AccessPattern::Partitioned { unit_bytes: 96 }, false)],
            3,
            9,
            16,
        );
        assert_footprint_exact(&s);
        let fp = &s.access_footprints()[0];
        // [3·96, 9·96) with the start rounded down to 32: 288 is aligned.
        assert_eq!(fp.intervals, vec![(0x1000 + 288, 0x1000 + 864)]);
    }

    #[test]
    fn partitioned_footprint_caps_at_array_size() {
        let mut a = acc(AccessPattern::Partitioned { unit_bytes: 96 }, true);
        a.bytes = 500; // units 0..16 would reach 1536; array ends at 500
        let s = spec(vec![a], 4, 8, 16);
        assert_footprint_exact(&s);
        let fp = &s.access_footprints()[0];
        assert_eq!(fp.intervals, vec![(0x1000 + 384, 0x1000 + 500)]);
    }

    #[test]
    fn stencil_footprint_covers_halo_and_wrap() {
        for (lo, hi) in [(0, 4), (2, 7), (13, 16), (0, 16)] {
            let s = spec(
                vec![acc(
                    AccessPattern::Stencil {
                        unit_bytes: 64,
                        halo_units: 2,
                        wraparound: true,
                    },
                    false,
                )],
                lo,
                hi,
                16,
            );
            assert_footprint_exact(&s);
        }
        // Writes touch the center only.
        let w = spec(
            vec![acc(
                AccessPattern::Stencil {
                    unit_bytes: 64,
                    halo_units: 2,
                    wraparound: true,
                },
                true,
            )],
            0,
            4,
            16,
        );
        assert_footprint_exact(&w);
        assert_eq!(
            w.access_footprints()[0].intervals,
            vec![(0x1000, 0x1000 + 256)]
        );
    }

    #[test]
    fn stencil_single_iteration_caps_center_only() {
        // One iteration owning the short last unit: the center is capped at
        // the array size, the (uncapped) halo below is not, so the footprint
        // has a hole between 500 and 512.
        let mut a = acc(
            AccessPattern::Stencil {
                unit_bytes: 64,
                halo_units: 1,
                wraparound: true,
            },
            false,
        );
        a.bytes = 500;
        let s = spec(vec![a], 7, 8, 8);
        assert_footprint_exact(&s);
        let fp = &s.access_footprints()[0];
        // Halo unit 6 [384, 448), center 7 [448, 500), wrap halo 0 [0, 64).
        assert_eq!(
            fp.intervals,
            vec![(0x1000, 0x1000 + 64), (0x1000 + 384, 0x1000 + 500)]
        );
    }

    #[test]
    fn whole_array_footprint_is_the_array() {
        let s = spec(vec![acc(AccessPattern::WholeArray, false)], 2, 6, 8);
        assert_footprint_exact(&s);
        assert_eq!(
            s.access_footprints()[0].intervals,
            vec![(0x1000, 0x1000 + 4096)]
        );
    }

    #[test]
    fn irregular_footprint_bounds_without_exactness() {
        let s = spec(
            vec![acc(
                AccessPattern::Irregular {
                    touches_per_iter: 8,
                },
                false,
            )],
            0,
            4,
            4,
        );
        let fp = &s.access_footprints()[0];
        assert!(!fp.exact, "irregular streams over-approximate");
        let inside = aligned_in(fp, s.granularity);
        for a in touched(&s) {
            assert!(inside.contains(&a), "irregular address {a:#x} escapes");
        }
    }

    #[test]
    fn prefetched_footprint_absorbs_line_rounding() {
        // 96 B units with prefetch on: the first prefetch line of unit 3
        // rounds 288 down to 256 (l2_line), below the demand start.
        let mut a = acc(AccessPattern::Partitioned { unit_bytes: 96 }, false);
        a.prefetch = AccessPrefetch {
            enabled: true,
            lookahead: 2,
        };
        let s = spec(vec![a], 3, 9, 16);
        assert_footprint_exact(&s);
        assert_eq!(
            s.access_footprints()[0].intervals,
            vec![(0x1000 + 256, 0x1000 + 864)]
        );
    }

    #[test]
    fn zero_trip_footprint_is_empty() {
        for pattern in [
            AccessPattern::Partitioned { unit_bytes: 64 },
            AccessPattern::Stencil {
                unit_bytes: 64,
                halo_units: 2,
                wraparound: true,
            },
            AccessPattern::WholeArray,
            AccessPattern::Irregular {
                touches_per_iter: 4,
            },
        ] {
            let s = spec(vec![acc(pattern, false)], 5, 5, 16);
            assert!(
                s.access_footprints()[0].intervals.is_empty(),
                "zero-trip loop has an empty footprint"
            );
        }
    }

    #[test]
    fn partitioned_access_sweeps_its_units() {
        let s = spec(
            vec![acc(AccessPattern::Partitioned { unit_bytes: 64 }, false)],
            0,
            2,
            2,
        );
        let loads: Vec<u64> = s
            .ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        // 2 iterations × 64 B units at 32 B granularity = 4 loads.
        assert_eq!(loads, vec![0x1000, 0x1020, 0x1040, 0x1060]);
    }

    #[test]
    fn writes_emit_stores() {
        let s = spec(
            vec![acc(AccessPattern::Partitioned { unit_bytes: 32 }, true)],
            0,
            1,
            1,
        );
        assert!(s
            .ops()
            .any(|o| matches!(o, TraceOp::Store(a) if a.0 == 0x1000)));
    }

    #[test]
    fn stencil_reads_touch_halo_but_writes_do_not() {
        let read = spec(
            vec![acc(
                AccessPattern::Stencil {
                    unit_bytes: 32,
                    halo_units: 1,
                    wraparound: false,
                },
                false,
            )],
            1,
            2,
            4,
        );
        let loads: Vec<u64> = read
            .ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) => Some(a.0 - 0x1000),
                _ => None,
            })
            .collect();
        // Center unit 1 plus halo units 0 and 2.
        assert_eq!(loads, vec![32, 0, 64]);

        let write = spec(
            vec![acc(
                AccessPattern::Stencil {
                    unit_bytes: 32,
                    halo_units: 1,
                    wraparound: false,
                },
                true,
            )],
            1,
            2,
            4,
        );
        let stores: Vec<u64> = write
            .ops()
            .filter_map(|o| match o {
                TraceOp::Store(a) => Some(a.0 - 0x1000),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![32], "write touches only its own unit");
    }

    #[test]
    fn wraparound_stencil_reads_across_the_end() {
        let s = spec(
            vec![acc(
                AccessPattern::Stencil {
                    unit_bytes: 32,
                    halo_units: 1,
                    wraparound: true,
                },
                false,
            )],
            0,
            1,
            4,
        );
        let loads: Vec<u64> = s
            .ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) => Some((a.0 - 0x1000) / 32),
                _ => None,
            })
            .collect();
        // Iteration 0 of 4: center 0, halo 3 (wrapped) and 1.
        assert_eq!(loads, vec![0, 3, 1]);
    }

    #[test]
    fn whole_array_is_streamed_once_over_local_iterations() {
        let s = spec(vec![acc(AccessPattern::WholeArray, false)], 0, 4, 4);
        let loads: Vec<u64> = s
            .ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) => Some(a.0),
                _ => None,
            })
            .collect();
        // 4096 B at 32 B = 128 loads, covering the array exactly once.
        assert_eq!(loads.len(), 128);
        assert_eq!(*loads.first().unwrap(), 0x1000);
        assert_eq!(*loads.last().unwrap(), 0x1000 + 4096 - 32);
    }

    #[test]
    fn irregular_access_is_deterministic_and_in_bounds() {
        let mk = || {
            spec(
                vec![acc(
                    AccessPattern::Irregular {
                        touches_per_iter: 8,
                    },
                    false,
                )],
                0,
                4,
                4,
            )
            .ops()
            .filter_map(|o| match o {
                TraceOp::Load(a) => Some(a.0),
                _ => None,
            })
            .collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 32);
        for addr in a {
            assert!((0x1000..0x2000).contains(&addr));
        }
    }

    #[test]
    fn prefetches_run_ahead_of_demand() {
        let mut a = acc(AccessPattern::Partitioned { unit_bytes: 128 }, false);
        a.prefetch = AccessPrefetch {
            enabled: true,
            lookahead: 2,
        };
        let s = spec(vec![a], 0, 8, 8);
        let ops: Vec<TraceOp> = s.ops().collect();
        // Find the first prefetch of unit 2's line and the first load of
        // unit 2: the prefetch must come first.
        let pf_pos = ops
            .iter()
            .position(|o| matches!(o, TraceOp::Prefetch { addr, .. } if addr.0 == 0x1000 + 256))
            .expect("prefetch for unit 2 exists");
        let ld_pos = ops
            .iter()
            .position(|o| matches!(o, TraceOp::Load(a) if a.0 == 0x1000 + 256))
            .expect("load of unit 2 exists");
        assert!(pf_pos < ld_pos);
    }

    #[test]
    fn zero_lookahead_prefetches_same_iteration() {
        let mut a = acc(AccessPattern::Partitioned { unit_bytes: 128 }, false);
        a.prefetch = AccessPrefetch {
            enabled: true,
            lookahead: 0,
        };
        let s = spec(vec![a], 0, 2, 2);
        let pf_count = s
            .ops()
            .filter(|o| matches!(o, TraceOp::Prefetch { .. }))
            .count();
        assert_eq!(pf_count, 2, "one late prefetch per iteration");
    }

    #[test]
    fn instruction_fetches_cycle_over_code_footprint() {
        let s = spec(vec![], 0, 4, 4);
        let fetches: Vec<u64> = s
            .ops()
            .filter_map(|o| match o {
                TraceOp::IFetch(a) => Some(a.0 - 0x100000),
                _ => None,
            })
            .collect();
        // 64 B of code at 32 B granularity = 2 lines, cycled.
        assert_eq!(fetches, vec![0, 32, 0, 32]);
    }

    #[test]
    fn adjacent_instr_ops_fuse_at_generation_time() {
        let mut ops = Vec::new();
        push_fused(&mut ops, TraceOp::Instr(3));
        push_fused(&mut ops, TraceOp::Instr(4));
        push_fused(&mut ops, TraceOp::IFetch(VirtAddr(0)));
        push_fused(&mut ops, TraceOp::Instr(5));
        assert_eq!(
            ops,
            vec![
                TraceOp::Instr(7),
                TraceOp::IFetch(VirtAddr(0)),
                TraceOp::Instr(5),
            ]
        );
    }

    #[test]
    fn cursor_matches_per_iteration_generation() {
        let mut a = acc(
            AccessPattern::Stencil {
                unit_bytes: 64,
                halo_units: 1,
                wraparound: true,
            },
            false,
        );
        a.prefetch = AccessPrefetch {
            enabled: true,
            lookahead: 2,
        };
        let s = spec(vec![a], 0, 8, 8);
        let mut eager = Vec::new();
        for i in s.lo..s.hi {
            s.fill_iteration(i, &mut eager);
        }
        let streamed: Vec<TraceOp> = s.ops().collect();
        assert_eq!(streamed, eager);
        // Every iteration leads with its IFetch, so Instr ops are never
        // adjacent across iterations and fusion cannot change the stream.
        assert!(!streamed
            .windows(2)
            .any(|w| matches!(w, [TraceOp::Instr(_), TraceOp::Instr(_)])));
    }

    #[test]
    fn rewound_cursor_replays_the_stream_without_growing_scratch() {
        let mut a = acc(AccessPattern::Partitioned { unit_bytes: 128 }, true);
        a.prefetch = AccessPrefetch {
            enabled: true,
            lookahead: 2,
        };
        let s = spec(vec![a], 0, 16, 16);
        let mut cur = s.ops();
        let first: Vec<TraceOp> = cur.by_ref().collect();
        cur.rewind();
        let cap = cur.scratch_capacity();
        assert!(cap > 0, "the drain established a scratch capacity");
        let second: Vec<TraceOp> = cur.by_ref().collect();
        assert_eq!(first, second, "rewind replays the identical stream");
        assert_eq!(
            cur.scratch_capacity(),
            cap,
            "steady-state drain must not grow the scratch buffer"
        );
    }

    #[test]
    fn instr_count_matches_stream() {
        let s = spec(vec![], 3, 7, 8);
        let total: u64 = s
            .ops()
            .filter_map(|o| match o {
                TraceOp::Instr(n) => Some(n),
                _ => None,
            })
            .sum();
        assert_eq!(total, s.instr_count());
        assert_eq!(total, 40);
    }
}
