//! Allocation-freedom proof for the streaming trace engine.
//!
//! The whole point of [`cdpc_compiler::trace::OpCursor`] is that the run
//! loop's hot path performs zero heap allocations after the scratch buffer
//! warms up. This test installs a counting global allocator, drains a
//! cursor once to establish the scratch capacity, rewinds, and asserts the
//! second full drain allocates nothing at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use cdpc_compiler::ir::AccessPattern;
use cdpc_compiler::locality::AccessPrefetch;
use cdpc_compiler::trace::{OpSpec, ResolvedAccess, TraceOp};

/// Counts every allocation and reallocation; frees are not interesting.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A spec exercising every generator: cyclic ifetch, instruction work,
/// software-pipelined prefetches, a wraparound stencil, a whole-array
/// stream, and an irregular (xorshift) stream.
fn busy_spec() -> OpSpec {
    let acc = |pattern, is_write, prefetch| ResolvedAccess {
        base: 0x10_000,
        bytes: 64 << 10,
        pattern,
        is_write,
        prefetch,
    };
    OpSpec {
        lo: 0,
        hi: 256,
        total_iters: 256,
        accesses: vec![
            acc(
                AccessPattern::Stencil {
                    unit_bytes: 256,
                    halo_units: 1,
                    wraparound: true,
                },
                false,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 2,
                },
            ),
            acc(
                AccessPattern::Partitioned { unit_bytes: 256 },
                true,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 0,
                },
            ),
            acc(AccessPattern::WholeArray, false, AccessPrefetch::OFF),
            acc(
                AccessPattern::Irregular {
                    touches_per_iter: 4,
                },
                true,
                AccessPrefetch::OFF,
            ),
        ],
        work_per_iter: 100,
        code_base: 0x100_000,
        code_bytes: 256,
        granularity: 32,
        l2_line: 128,
        seed: 42,
    }
}

/// Consumes the stream without allocating: folds every op into counters.
fn drain(cursor: &mut cdpc_compiler::trace::OpCursor<'_>) -> (u64, u64) {
    let mut ops = 0u64;
    let mut addr_sum = 0u64;
    for op in cursor {
        ops += 1;
        addr_sum = addr_sum.wrapping_add(match op {
            TraceOp::Instr(n) => n,
            TraceOp::Load(a) | TraceOp::Store(a) | TraceOp::IFetch(a) => a.0,
            TraceOp::Prefetch { addr, .. } => addr.0,
        });
    }
    (ops, addr_sum)
}

#[test]
fn steady_state_trace_generation_allocates_nothing() {
    let spec = busy_spec();
    let mut cursor = spec.ops();
    // Warm drain: the scratch buffer may grow here (and the spec itself
    // was just allocated), so allocations are allowed.
    let first = drain(&mut cursor);
    assert!(first.0 > 1_000, "the spec generates a substantial stream");
    cursor.rewind();
    let cap = cursor.scratch_capacity();

    let before = ALLOCS.load(Ordering::SeqCst);
    let second = drain(black_box(&mut cursor));
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(first, black_box(second), "rewind replays the same stream");
    assert_eq!(
        after - before,
        0,
        "steady-state trace generation must not touch the heap"
    );
    assert_eq!(cursor.scratch_capacity(), cap, "scratch capacity is stable");
}
