//! Property tests over the trace generator: whatever the program shape,
//! generated references stay inside their arrays, cover exactly the
//! assigned iterations, and partition cleanly across processors.

use proptest::prelude::*;

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::trace::TraceOp;
use cdpc_compiler::{compile, CompileOptions, CompiledStmt};

#[derive(Debug, Clone)]
struct Shape {
    units: u64,
    unit_bytes: u64,
    halo: u64,
    wraparound: bool,
    is_write: bool,
    cpus: usize,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        2u64..=64,
        prop::sample::select(vec![32u64, 64, 128, 512]),
        0u64..=2,
        any::<bool>(),
        any::<bool>(),
        1usize..=8,
    )
        .prop_map(|(units, unit_bytes, halo, wraparound, is_write, cpus)| Shape {
            units,
            unit_bytes,
            halo,
            wraparound,
            is_write,
            cpus,
        })
}

fn build(shape: &Shape) -> Program {
    let mut p = Program::new("prop");
    let a = p.array("A", shape.units * shape.unit_bytes);
    let access = if shape.is_write {
        Access::write(a, AccessPattern::Partitioned { unit_bytes: shape.unit_bytes })
    } else {
        Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: shape.unit_bytes,
                halo_units: shape.halo,
                wraparound: shape.wraparound,
            },
        )
    };
    p.phase(Phase {
        name: "ph".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            // Enough work to clear the suppression threshold.
            nest: LoopNest::new("l", shape.units, 10_000).with_access(access),
        }],
        count: 1,
    });
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated data reference lands inside the array it names.
    #[test]
    fn references_stay_in_bounds(shape in arb_shape()) {
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        let base = compiled.layout.bases[0].0;
        let end = base + shape.units * shape.unit_bytes;
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                let specs: Vec<_> = match stmt {
                    CompiledStmt::Parallel { specs } => specs.iter().collect(),
                    CompiledStmt::Master { spec, .. } => vec![spec],
                };
                for spec in specs {
                    for op in spec.ops() {
                        if let TraceOp::Load(va) | TraceOp::Store(va) = op {
                            prop_assert!(
                                va.0 >= base && va.0 < end,
                                "reference {:#x} outside [{:#x},{:#x})",
                                va.0, base, end
                            );
                        }
                    }
                }
            }
        }
    }

    /// The union of all processors' written bytes covers each partitioned
    /// array exactly once (no gaps, no double-writes) for plain sweeps.
    #[test]
    fn write_sweeps_partition_cleanly(shape in arb_shape()) {
        prop_assume!(shape.is_write);
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        let base = compiled.layout.bases[0].0;
        let mut touched: Vec<u32> = vec![0; (shape.units * shape.unit_bytes / 32) as usize];
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                let specs: Vec<_> = match stmt {
                    CompiledStmt::Parallel { specs } => specs.iter().collect(),
                    CompiledStmt::Master { spec, .. } => vec![spec],
                };
                for spec in specs {
                    for op in spec.ops() {
                        if let TraceOp::Store(va) = op {
                            touched[((va.0 - base) / 32) as usize] += 1;
                        }
                    }
                }
            }
        }
        for (i, &count) in touched.iter().enumerate() {
            prop_assert_eq!(count, 1, "line {} written {} times", i, count);
        }
    }

    /// Instruction counts of the streams agree with the static counter
    /// used for MCPI denominators.
    #[test]
    fn instr_counts_are_consistent(shape in arb_shape()) {
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                if let CompiledStmt::Parallel { specs } = stmt {
                    for spec in specs {
                        let streamed: u64 = spec
                            .ops()
                            .filter_map(|o| match o {
                                TraceOp::Instr(n) => Some(n),
                                _ => None,
                            })
                            .sum();
                        prop_assert_eq!(streamed, spec.instr_count());
                    }
                }
            }
        }
    }
}
