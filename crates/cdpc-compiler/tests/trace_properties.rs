//! Property tests over the trace generator: whatever the program shape,
//! generated references stay inside their arrays, cover exactly the
//! assigned iterations, and partition cleanly across processors.
//!
//! Shapes are drawn from a seeded [`SplitMix64`], one seed per case, so
//! failures reproduce exactly by seed number.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::trace::TraceOp;
use cdpc_compiler::{compile, CompileOptions, CompiledStmt};
use cdpc_obs::SplitMix64;

#[derive(Debug, Clone)]
struct Shape {
    units: u64,
    unit_bytes: u64,
    halo: u64,
    wraparound: bool,
    is_write: bool,
    cpus: usize,
}

fn random_shape(rng: &mut SplitMix64) -> Shape {
    const UNIT_BYTES: [u64; 4] = [32, 64, 128, 512];
    Shape {
        units: rng.range(2, 64),
        unit_bytes: UNIT_BYTES[rng.index(UNIT_BYTES.len())],
        halo: rng.range(0, 2),
        wraparound: rng.chance(1, 2),
        is_write: rng.chance(1, 2),
        cpus: rng.range(1, 8) as usize,
    }
}

fn build(shape: &Shape) -> Program {
    let mut p = Program::new("prop");
    let a = p.array("A", shape.units * shape.unit_bytes);
    let access = if shape.is_write {
        Access::write(
            a,
            AccessPattern::Partitioned {
                unit_bytes: shape.unit_bytes,
            },
        )
    } else {
        Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: shape.unit_bytes,
                halo_units: shape.halo,
                wraparound: shape.wraparound,
            },
        )
    };
    p.phase(Phase {
        name: "ph".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            // Enough work to clear the suppression threshold.
            nest: LoopNest::new("l", shape.units, 10_000).with_access(access),
        }],
        count: 1,
    });
    p
}

/// Every generated data reference lands inside the array it names.
#[test]
fn references_stay_in_bounds() {
    for seed in 0..96u64 {
        let shape = random_shape(&mut SplitMix64::new(seed));
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        let base = compiled.layout.bases[0].0;
        let end = base + shape.units * shape.unit_bytes;
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                let specs: Vec<_> = match stmt {
                    CompiledStmt::Parallel { specs } => specs.iter().collect(),
                    CompiledStmt::Master { spec, .. } => vec![spec],
                };
                for spec in specs {
                    for op in spec.ops() {
                        if let TraceOp::Load(va) | TraceOp::Store(va) = op {
                            assert!(
                                va.0 >= base && va.0 < end,
                                "seed {seed}: reference {:#x} outside [{base:#x},{end:#x})",
                                va.0
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The union of all processors' written bytes covers each partitioned
/// array exactly once (no gaps, no double-writes) for plain sweeps.
#[test]
fn write_sweeps_partition_cleanly() {
    for seed in 0..96u64 {
        let shape = random_shape(&mut SplitMix64::new(seed));
        if !shape.is_write {
            continue;
        }
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        let base = compiled.layout.bases[0].0;
        let mut touched: Vec<u32> = vec![0; (shape.units * shape.unit_bytes / 32) as usize];
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                let specs: Vec<_> = match stmt {
                    CompiledStmt::Parallel { specs } => specs.iter().collect(),
                    CompiledStmt::Master { spec, .. } => vec![spec],
                };
                for spec in specs {
                    for op in spec.ops() {
                        if let TraceOp::Store(va) = op {
                            touched[((va.0 - base) / 32) as usize] += 1;
                        }
                    }
                }
            }
        }
        for (i, &count) in touched.iter().enumerate() {
            assert_eq!(count, 1, "seed {seed}: line {i} written {count} times");
        }
    }
}

/// Instruction counts of the streams agree with the static counter
/// used for MCPI denominators.
#[test]
fn instr_counts_are_consistent() {
    for seed in 0..96u64 {
        let shape = random_shape(&mut SplitMix64::new(seed));
        let program = build(&shape);
        let compiled = compile(&program, &CompileOptions::new(shape.cpus)).unwrap();
        for phase in &compiled.phases {
            for stmt in &phase.stmts {
                if let CompiledStmt::Parallel { specs } = stmt {
                    for spec in specs {
                        let streamed: u64 = spec
                            .ops()
                            .filter_map(|o| match o {
                                TraceOp::Instr(n) => Some(n),
                                _ => None,
                            })
                            .sum();
                        assert_eq!(streamed, spec.instr_count(), "seed {seed}");
                    }
                }
            }
        }
    }
}
