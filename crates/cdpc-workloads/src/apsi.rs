//! 141.apsi — mesoscale pollutant distribution. 9 MB reference data set.
//!
//! The paper's example of *suppressed* parallelism: the loops are
//! parallelizable but so fine-grained that exploiting them would drown in
//! synchronization cost, so the compiler runs them on the master while the
//! slaves idle (§4.1, "suppressed time"). apsi therefore shows no speedup,
//! and page-mapping policy makes no difference (Figures 6 and 9 omit it /
//! show flat lines).

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, sweep_nest, Scale, KB};

/// Builds the apsi model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("141.apsi");
    let unit = scale.bytes(4 * KB);
    let units = 384u64; // 1.5 MB per array at full scale
    let names = ["t", "q", "u", "v", "w", "dc"];
    let a: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();

    // Fine-grain loops: parallelizable, suppressed by the compiler.
    let hydro = stencil_nest(
        "hydrostatic",
        &[a[0], a[1]],
        &[a[5]],
        units,
        unit,
        1,
        false,
        4,
    )
    .with_code_bytes(scale.bytes(8 * KB));
    let advec = stencil_nest(
        "advection",
        &[a[2], a[3], a[4]],
        &[a[0], a[1]],
        units,
        unit,
        1,
        false,
        4,
    )
    .with_code_bytes(scale.bytes(8 * KB));
    // A genuinely sequential setup step.
    let filter =
        sweep_nest("filter", &[a[5]], &[a[2]], units, unit, 3).with_code_bytes(scale.bytes(4 * KB));

    p.phase(Phase {
        name: "timestep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::FineGrain,
                nest: hydro,
            },
            Stmt {
                kind: StmtKind::FineGrain,
                nest: advec,
            },
            Stmt {
                kind: StmtKind::Sequential,
                nest: filter,
            },
        ],
        count: 6,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((8.0..10.0).contains(&mb), "apsi is 9 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn parallelism_is_suppressed() {
        use cdpc_compiler::{compile, CompileOptions};
        let c = compile(&build(Scale::new(16)), &CompileOptions::new(8)).unwrap();
        // No distributed statements anywhere.
        for phase in &c.phases {
            for stmt in &phase.stmts {
                assert!(matches!(stmt, cdpc_compiler::CompiledStmt::Master { .. }));
            }
        }
    }
}
