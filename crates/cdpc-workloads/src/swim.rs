//! 102.swim — shallow-water equations. 14 MB reference data set.
//!
//! Nine ~1.5 MB arrays updated by three stencil sweeps (the CALC1/2/3
//! structure of the original Fortran). Arrays span 1.5 color cycles, so
//! page coloring alternates their start colors (0, 128, 0, 128, …) —
//! conflicts are real but less brutal than tomcatv's, and CDPC's gains
//! begin at eight processors. Highly parallel; very sensitive to bus
//! contention (the paper's AlphaServer run of swim under page coloring is
//! limited by the bus).

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, Scale, KB};

/// Builds the swim model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("102.swim");
    let unit = scale.bytes(4 * KB);
    let units = 384u64; // 1.5 MB per array at full scale
    let names = ["u", "v", "pp", "cu", "cv", "z", "h", "unew", "vnew"];
    let a: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();

    let calc1 = stencil_nest(
        "calc1",
        &[a[0], a[1], a[2]],
        &[a[3], a[4], a[5], a[6]],
        units,
        unit,
        1,
        true,
        2,
    )
    .with_code_bytes(scale.bytes(6 * KB));
    let calc2 = stencil_nest(
        "calc2",
        &[a[3], a[4], a[5], a[6]],
        &[a[7], a[8], a[2]],
        units,
        unit,
        1,
        true,
        2,
    )
    .with_code_bytes(scale.bytes(6 * KB));
    let calc3 = stencil_nest(
        "calc3",
        &[a[7], a[8]],
        &[a[0], a[1]],
        units,
        unit,
        0,
        false,
        1,
    )
    .with_code_bytes(scale.bytes(2 * KB));

    p.phase(Phase {
        name: "timestep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: calc1,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: calc2,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: calc3,
            },
        ],
        count: 12,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((12.5..15.0).contains(&mb), "swim is 14 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn has_three_parallel_sweeps() {
        let p = build(Scale::FULL);
        assert_eq!(p.phases[0].stmts.len(), 3);
        assert!(p.phases[0]
            .stmts
            .iter()
            .all(|s| s.kind == StmtKind::Parallel));
    }
}
