//! 101.tomcatv — vectorized mesh generation. 14 MB reference data set.
//!
//! The paper's most page-mapping-sensitive benchmark: **seven large data
//! structures** accessed together in stencil sweeps ("only an eight-way
//! set-associative cache of size 1MB would eliminate all conflicts for 16
//! processors"). Each 2 MB array spans an exact multiple of the color
//! cycle, so IRIX-style page coloring maps the same-index regions of all
//! seven arrays to the same colors — a seven-way conflict in a
//! direct-mapped cache. Near-linear speedup; saturates the bus at 16
//! processors; CDPC gains start at two processors.

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, Scale, KB};

/// Builds the tomcatv model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("101.tomcatv");
    let unit = scale.bytes(4 * KB);
    let units = 512u64;
    let names = ["x", "y", "rx", "ry", "aa", "dd", "d"];
    let arrays: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();
    let (x, y, rx, ry, aa, dd, d) = (
        arrays[0], arrays[1], arrays[2], arrays[3], arrays[4], arrays[5], arrays[6],
    );

    // Residual computation: read the meshes, write the residuals.
    let residual = stencil_nest(
        "residual",
        &[x, y, aa, dd, d],
        &[rx, ry],
        units,
        unit,
        1,
        false,
        2,
    )
    .with_code_bytes(scale.bytes(4 * KB));
    // Mesh update: read residuals, write meshes.
    let update = stencil_nest("update", &[rx, ry, aa], &[x, y], units, unit, 1, false, 2)
        .with_code_bytes(scale.bytes(4 * KB));
    // Tridiagonal solve along the distributed dimension.
    let solve = stencil_nest("solve", &[d, dd], &[aa], units, unit, 1, false, 3)
        .with_code_bytes(scale.bytes(4 * KB));

    p.phase(Phase {
        name: "iteration".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: residual,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: solve,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: update,
            },
        ],
        count: 10,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((13.0..15.0).contains(&mb), "tomcatv is 14 MB, got {mb:.1}");
        assert_eq!(p.arrays.len(), 7, "the paper counts seven large arrays");
        p.validate().unwrap();
    }

    #[test]
    fn arrays_are_color_cycle_multiples() {
        // The pathology: 2 MB arrays = 512 pages = 2 × 256 colors.
        let p = build(Scale::FULL);
        for a in &p.arrays {
            assert_eq!(a.bytes % (256 * 4096), 0);
        }
    }

    #[test]
    fn scales_down_cleanly() {
        let p = build(Scale::new(8));
        assert!(p.data_set_bytes() < 2 * MB);
        p.validate().unwrap();
    }
}
