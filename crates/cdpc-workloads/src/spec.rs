//! Common workload-construction helpers: scaling, Table 1 sizes, and
//! loop-nest builders shared by the ten benchmark models.

use cdpc_compiler::ir::{Access, AccessPattern, ArrayRef, LoopNest};

/// One binary megabyte.
pub const MB: u64 = 1 << 20;
/// One binary kilobyte.
pub const KB: u64 = 1 << 10;

/// A power-of-two divisor applied to every array (and, by the experiment
/// harness, to the caches), preserving all data:cache ratios while
/// shrinking simulations.
///
/// The paper faces the same problem — full SPEC95fp runs would take a year
/// of simulation — and solves it with representative execution windows;
/// we window *and* scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale(u64);

impl Scale {
    /// Full paper-size data sets.
    pub const FULL: Scale = Scale(1);

    /// Creates a scale dividing sizes by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics unless `divisor` is a power of two.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor.is_power_of_two(), "scale must be a power of two");
        Scale(divisor)
    }

    /// The divisor.
    pub fn divisor(&self) -> u64 {
        self.0
    }

    /// Scales a byte count, never below 32 bytes (one reference line).
    pub fn bytes(&self, full: u64) -> u64 {
        (full / self.0).max(32)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

/// Builds a stencil sweep: every `read` array is referenced with a halo of
/// `halo` units, every `write` array with a plain partitioned sweep; all
/// arrays share `units` iterations of `unit_bytes` each.
///
/// `flops_per_ref` sets the compute density: instructions per 32-byte
/// reference line (drives the MCPI balance).
#[allow(clippy::too_many_arguments)]
pub fn stencil_nest(
    name: &str,
    reads: &[ArrayRef],
    writes: &[ArrayRef],
    units: u64,
    unit_bytes: u64,
    halo: u64,
    wraparound: bool,
    flops_per_ref: u64,
) -> LoopNest {
    let arrays = (reads.len() + writes.len()) as u64;
    let refs_per_iter = (arrays * unit_bytes).div_ceil(32).max(1);
    let mut nest = LoopNest::new(name, units, refs_per_iter * flops_per_ref);
    for &a in reads {
        nest = nest.with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes,
                halo_units: halo,
                wraparound,
            },
        ));
    }
    for &a in writes {
        nest = nest.with_access(Access::write(a, AccessPattern::Partitioned { unit_bytes }));
    }
    nest
}

/// Builds a plain partitioned sweep (no halo).
pub fn sweep_nest(
    name: &str,
    reads: &[ArrayRef],
    writes: &[ArrayRef],
    units: u64,
    unit_bytes: u64,
    flops_per_ref: u64,
) -> LoopNest {
    let arrays = (reads.len() + writes.len()) as u64;
    let refs_per_iter = (arrays * unit_bytes).div_ceil(32).max(1);
    let mut nest = LoopNest::new(name, units, refs_per_iter * flops_per_ref);
    for &a in reads {
        nest = nest.with_access(Access::read(a, AccessPattern::Partitioned { unit_bytes }));
    }
    for &a in writes {
        nest = nest.with_access(Access::write(a, AccessPattern::Partitioned { unit_bytes }));
    }
    nest
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::Program;

    #[test]
    fn scale_divides_and_clamps() {
        let s = Scale::new(8);
        assert_eq!(s.bytes(8 * MB), MB);
        assert_eq!(s.bytes(64), 32, "never below one line");
        assert_eq!(Scale::FULL.bytes(123456), 123456);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn scale_rejects_odd_divisors() {
        Scale::new(3);
    }

    #[test]
    fn stencil_nest_shapes_accesses() {
        let mut p = Program::new("t");
        let a = p.array("A", 64 * KB);
        let b = p.array("B", 64 * KB);
        let nest = stencil_nest("s", &[a], &[b], 64, KB, 1, false, 2);
        assert_eq!(nest.accesses.len(), 2);
        assert!(matches!(
            nest.accesses[0].pattern,
            AccessPattern::Stencil { halo_units: 1, .. }
        ));
        assert!(nest.accesses[1].is_write);
        // 2 arrays × 1 KB / 32 B = 64 refs × 2 flops = 128.
        assert_eq!(nest.work_per_iter, 128);
    }

    #[test]
    fn sweep_nest_mixes_reads_and_writes() {
        let mut p = Program::new("t");
        let a = p.array("A", 64 * KB);
        let b = p.array("B", 64 * KB);
        let nest = sweep_nest("s", &[a], &[b], 64, KB, 1);
        assert_eq!(nest.accesses.len(), 2);
        assert!(!nest.accesses[0].is_write, "reads come first");
        assert!(nest.accesses[1].is_write);
        // 2 arrays x 1 KB / 32 B = 64 refs x 1 flop.
        assert_eq!(nest.work_per_iter, 64);
    }
}
