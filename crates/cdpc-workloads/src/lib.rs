//! Synthetic SPEC95fp workload models for the CDPC reproduction.
//!
//! The paper evaluates compiler-directed page coloring on the ten programs
//! of the SPEC95fp benchmark suite. We cannot run the original Fortran
//! (no frontend, no licenses), so each benchmark is modeled in the
//! `cdpc-compiler` IR with:
//!
//! * the **reference data-set size** from the paper's Table 1,
//! * the **array structure** the paper describes (tomcatv's seven large
//!   arrays, applu's 33-iteration loops, turb3d's 11/66/100/120 phase
//!   counts, …),
//! * the **parallelism class** of its loops (coarse parallel, fine-grain
//!   suppressed, sequential), and
//! * the **access shape** (stencil + halo, plain sweep, gather/scatter).
//!
//! These are the properties the paper's analysis and CDPC's behavior
//! depend on; see `DESIGN.md` §3 for the full per-benchmark inventory and
//! justification.
//!
//! # Example
//!
//! ```
//! use cdpc_workloads::{by_name, spec::Scale};
//!
//! let bench = by_name("102.swim").expect("swim is in the suite");
//! let program = (bench.build)(Scale::new(16));
//! assert!(program.validate().is_ok());
//! ```

pub mod spec;

pub mod applu;
pub mod apsi;
pub mod fpppp;
pub mod hydro2d;
pub mod mgrid;
pub mod su2cor;
pub mod swim;
pub mod tomcatv;
pub mod turb3d;
pub mod wave5;

use cdpc_compiler::ir::Program;
use spec::Scale;

/// One benchmark of the suite: name, Table 1 size, and builder.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// SPEC-style name (e.g. `"101.tomcatv"`).
    pub name: &'static str,
    /// Reference data-set size in megabytes (paper Table 1).
    pub table1_mb: f64,
    /// Builds the program model at a given scale.
    pub build: fn(Scale) -> Program,
}

/// The full SPEC95fp suite in the paper's order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "101.tomcatv",
            table1_mb: 14.0,
            build: tomcatv::build,
        },
        Benchmark {
            name: "102.swim",
            table1_mb: 14.0,
            build: swim::build,
        },
        Benchmark {
            name: "103.su2cor",
            table1_mb: 23.0,
            build: su2cor::build,
        },
        Benchmark {
            name: "104.hydro2d",
            table1_mb: 8.0,
            build: hydro2d::build,
        },
        Benchmark {
            name: "107.mgrid",
            table1_mb: 7.0,
            build: mgrid::build,
        },
        Benchmark {
            name: "110.applu",
            table1_mb: 31.0,
            build: applu::build,
        },
        Benchmark {
            name: "125.turb3d",
            table1_mb: 24.0,
            build: turb3d::build,
        },
        Benchmark {
            name: "141.apsi",
            table1_mb: 9.0,
            build: apsi::build,
        },
        Benchmark {
            name: "145.fpppp",
            table1_mb: 1.0,
            build: fpppp::build,
        },
        Benchmark {
            name: "146.wave5",
            table1_mb: 40.0,
            build: wave5::build,
        },
    ]
}

/// Looks up a benchmark by its full name (`"101.tomcatv"`) or short name
/// (`"tomcatv"`).
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name == name || b.name.split('.').nth(1) == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_benchmarks() {
        assert_eq!(all().len(), 10);
    }

    #[test]
    fn every_model_validates_at_all_scales() {
        for b in all() {
            for s in [Scale::FULL, Scale::new(8), Scale::new(64)] {
                let p = (b.build)(s);
                p.validate()
                    .unwrap_or_else(|e| panic!("{} at {:?}: {e}", b.name, s));
            }
        }
    }

    #[test]
    fn full_scale_sizes_match_table_1() {
        use spec::MB;
        for b in all() {
            let p = (b.build)(Scale::FULL);
            let mb = p.data_set_bytes() as f64 / MB as f64;
            let tolerance = (b.table1_mb * 0.15).max(0.5);
            assert!(
                (mb - b.table1_mb).abs() <= tolerance || (b.name.contains("fpppp") && mb < 1.0),
                "{}: model {mb:.1} MB vs Table 1 {} MB",
                b.name,
                b.table1_mb
            );
        }
    }

    #[test]
    fn lookup_by_short_and_full_name() {
        assert_eq!(by_name("tomcatv").unwrap().name, "101.tomcatv");
        assert_eq!(by_name("102.swim").unwrap().name, "102.swim");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_model_compiles_for_the_paper_cpu_counts() {
        use cdpc_compiler::{compile, CompileOptions};
        for b in all() {
            let p = (b.build)(Scale::new(64));
            for cpus in [1, 2, 4, 8, 16] {
                compile(&p, &CompileOptions::new(cpus))
                    .unwrap_or_else(|e| panic!("{} @{cpus}p: {e}", b.name));
            }
        }
    }
}
