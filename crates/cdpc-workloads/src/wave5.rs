//! 146.wave5 — plasma particle-in-cell simulation. 40 MB reference data
//! set (the suite's largest).
//!
//! Little benefit from parallelization: the particle push is fine-grained
//! (suppressed) and the field solve communicates heavily through gather/
//! scatter indices the compiler cannot analyze. The paper notes one phase
//! with 30% cache-miss variance between occurrences — the seeded
//! irregular particle accesses here are the analogue. Page mapping policy
//! barely matters for it (Figure 9 / Table 2).

use cdpc_compiler::ir::{Access, AccessPattern, Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, sweep_nest, Scale, KB, MB};

/// Builds the wave5 model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("146.wave5");
    let unit = scale.bytes(8 * KB);
    let units = 512u64; // 4 MB field arrays at full scale
    let ex = p.array("ex", unit * units);
    let ey = p.array("ey", unit * units);
    let rho = p.array("rho", unit * units);
    // Particle arrays: 28 MB of gather/scatter data at full scale.
    let particles = p.array("particles", scale.bytes(20 * MB));
    let sorted = p.array("sorted", scale.bytes(8 * MB));

    // Field solve: coarse-grain parallel stencils.
    let solve = stencil_nest("field-solve", &[rho], &[ex, ey], units, unit, 1, true, 3)
        .with_code_bytes(scale.bytes(8 * KB));
    // Particle push: fine-grained, suppressed; gathers fields, scatters
    // charge.
    let push = sweep_nest("particle-push", &[ex, ey], &[rho], units, unit, 2)
        .with_access(Access::read(
            particles,
            AccessPattern::Irregular {
                touches_per_iter: 48,
            },
        ))
        .with_access(Access::write(
            particles,
            AccessPattern::Irregular {
                touches_per_iter: 16,
            },
        ))
        .with_code_bytes(scale.bytes(12 * KB));
    // Particle sort: sequential.
    let sort = sweep_nest("sort", &[], &[sorted], units, scale.bytes(16 * KB), 1)
        .with_code_bytes(scale.bytes(4 * KB));

    p.phase(Phase {
        name: "timestep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: solve,
            },
            Stmt {
                kind: StmtKind::FineGrain,
                nest: push,
            },
            Stmt {
                kind: StmtKind::Sequential,
                nest: sort,
            },
        ],
        count: 6,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((37.0..43.0).contains(&mb), "wave5 is 40 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn particle_work_is_not_distributed() {
        let p = build(Scale::FULL);
        assert_eq!(p.phases[0].stmts[1].kind, StmtKind::FineGrain);
        assert_eq!(p.phases[0].stmts[2].kind, StmtKind::Sequential);
    }
}
