//! 125.turb3d — turbulence simulation. 24 MB reference data set.
//!
//! The paper's example of multi-phase steady state: four phases occurring
//! **11, 66, 100 and 120 times** respectively. Compute-dense FFT-like
//! sweeps leave few replacement misses, so CDPC yields only slight gains
//! above four processors.

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, sweep_nest, Scale, KB};

/// Builds the turb3d model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("125.turb3d");
    let unit = scale.bytes(8 * KB);
    let units = 512u64; // 4 MB per array at full scale
    let names = ["u", "v", "w", "un", "vn", "wn"];
    let a: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();

    let fft_x = sweep_nest("fft-x", &[a[0], a[1]], &[a[3]], units, unit, 6)
        .with_code_bytes(scale.bytes(10 * KB));
    let fft_y = sweep_nest("fft-y", &[a[1], a[2]], &[a[4]], units, unit, 6)
        .with_code_bytes(scale.bytes(10 * KB));
    let fft_z = sweep_nest("fft-z", &[a[2], a[0]], &[a[5]], units, unit, 6)
        .with_code_bytes(scale.bytes(10 * KB));
    let nonlin = stencil_nest(
        "nonlinear",
        &[a[3], a[4], a[5]],
        &[a[0], a[1], a[2]],
        units,
        unit,
        1,
        true,
        4,
    )
    .with_code_bytes(scale.bytes(8 * KB));

    let phases = [
        ("xy-transform", vec![fft_x, fft_y], 11),
        ("z-transform", vec![fft_z], 66),
        ("nonlinear-term", vec![nonlin], 100),
        (
            "energy",
            vec![
                sweep_nest("energy", &[a[0], a[1], a[2]], &[], units, unit, 5)
                    .with_code_bytes(scale.bytes(4 * KB)),
            ],
            120,
        ),
    ];
    for (name, nests, count) in phases {
        p.phase(Phase {
            name: name.into(),
            stmts: nests
                .into_iter()
                .map(|nest| Stmt {
                    kind: StmtKind::Parallel,
                    nest,
                })
                .collect(),
            count,
        });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((22.0..26.0).contains(&mb), "turb3d is 24 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn four_phases_with_paper_counts() {
        let p = build(Scale::FULL);
        let counts: Vec<u64> = p.phases.iter().map(|ph| ph.count).collect();
        assert_eq!(counts, vec![11, 66, 100, 120]);
    }
}
