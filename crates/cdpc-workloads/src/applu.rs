//! 110.applu — parabolic/elliptic PDE solver. 31 MB reference data set.
//!
//! The paper's capacity-bound benchmark: at 1 MB caches CDPC shows no
//! benefit (the 31 MB data set swamps the aggregate cache), but the 4 MB
//! configuration brings gains (Figure 7). Its parallel loops have exactly
//! **33 iterations**, so 16 processors run them no faster than 11 (load
//! imbalance, §4.1). Parallelization introduced loop tiling that inhibits
//! the software pipelining of prefetches, and the large strides make
//! prefetches miss the TLB and get dropped (§6.2).

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, Scale, KB};

/// Builds the applu model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("110.applu");
    let unit = scale.bytes(184 * KB); // large-stride partition units
    let units = 33u64; // the paper's 33-iteration loops
    let names = ["u", "rsd", "a", "b", "c"];
    let arrays: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();
    let (u, rsd, a, b, c) = (arrays[0], arrays[1], arrays[2], arrays[3], arrays[4]);

    let jacld = stencil_nest("jacld", &[u, rsd], &[a, b], units, unit, 1, false, 3)
        .tiled()
        .with_code_bytes(scale.bytes(12 * KB));
    let blts = stencil_nest("blts", &[a, b, c], &[rsd], units, unit, 1, false, 3)
        .tiled()
        .with_code_bytes(scale.bytes(12 * KB));
    let update = stencil_nest("add-update", &[rsd], &[u, c], units, unit, 0, false, 2)
        .with_code_bytes(scale.bytes(4 * KB));

    p.phase(Phase {
        name: "ssor-sweep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: jacld,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: blts,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: update,
            },
        ],
        count: 8,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((28.0..32.5).contains(&mb), "applu is 31 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn loops_have_thirty_three_iterations() {
        let p = build(Scale::FULL);
        for s in &p.phases[0].stmts {
            assert_eq!(s.nest.iterations, 33);
        }
    }

    #[test]
    fn main_sweeps_are_tiled() {
        let p = build(Scale::FULL);
        assert!(p.phases[0].stmts[0].nest.tiled);
        assert!(p.phases[0].stmts[1].nest.tiled);
        assert!(!p.phases[0].stmts[2].nest.tiled);
    }
}
