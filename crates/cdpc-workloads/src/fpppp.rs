//! 145.fpppp — quantum chemistry two-electron integrals. < 1 MB data set.
//!
//! The outlier: essentially **no loop-level parallelism** (the paper uses
//! the native compiler for it) and a tiny data set, but enormous straight-
//! line basic blocks whose code footprint overflows the on-chip
//! instruction cache. Its execution is "limited entirely by instruction
//! cache misses fetched from the external cache and puts no load on the
//! shared bus" (§4.1). Page-mapping policy is irrelevant (Table 2 shows
//! identical times for all three policies).

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{sweep_nest, Scale, KB};

/// Builds the fpppp model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("145.fpppp");
    // The 64-byte units are below the 32-byte scaling floor, so fpppp
    // scales its *iteration count* instead of the unit size.
    let unit = 64u64;
    let units = (4096u64 / scale.divisor()).max(64);
    let ints = p.array("integrals", unit * units); // 256 KB at full scale
    let fock = p.array("fock", unit * units);

    // One sequential pass with a huge code body: 200 KB of straight-line
    // code at full scale, far beyond the 32 KB L1I.
    let integrals = sweep_nest("twoel", &[ints], &[fock], units, unit, 20)
        .with_code_bytes(scale.bytes(200 * KB));

    p.phase(Phase {
        name: "scf-iteration".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Sequential,
            nest: integrals,
        }],
        count: 4,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        assert!(p.data_set_bytes() < MB, "fpppp's data set is under 1 MB");
        p.validate().unwrap();
    }

    #[test]
    fn code_overflows_the_l1i() {
        let p = build(Scale::FULL);
        assert!(p.phases[0].stmts[0].nest.code_bytes > 32 * KB);
    }

    #[test]
    fn has_no_parallel_statements() {
        let p = build(Scale::FULL);
        assert!(p.phases[0]
            .stmts
            .iter()
            .all(|s| s.kind == StmtKind::Sequential));
    }
}
