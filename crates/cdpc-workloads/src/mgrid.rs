//! 107.mgrid — multigrid 3-D potential solver. 7 MB reference data set.
//!
//! A hierarchy of grids (4 MB, 2 MB, 1 MB at full scale) traversed by
//! compute-dense relaxation stencils; restriction and prolongation couple
//! adjacent levels (one coarse unit per two fine units). The number of
//! replacement misses is small, so CDPC shows only slight improvements
//! above eight processors (paper §6.1).

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, Scale, KB};

/// Builds the mgrid model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("107.mgrid");
    let unit = scale.bytes(8 * KB);
    // Grid levels: fine to coarse.
    let u3 = p.array("u3", unit * 512); // 4 MB
    let u2 = p.array("u2", unit * 256); // 2 MB
    let u1 = p.array("u1", unit * 128); // 1 MB

    // Red-black relaxation on the fine grid: in-place stencil update.
    let relax_fine = stencil_nest("relax-fine", &[u3], &[u3], 512, unit, 1, false, 8)
        .with_code_bytes(scale.bytes(6 * KB));

    // Restriction: 256 iterations, each reading two fine units and writing
    // one coarse unit.
    let restrict = LoopNest::new("restrict", 256, (3 * unit / 32).max(1) * 8)
        .with_access(Access::read(
            u3,
            AccessPattern::Stencil {
                unit_bytes: 2 * unit,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            u2,
            AccessPattern::Partitioned { unit_bytes: unit },
        ))
        .with_code_bytes(scale.bytes(4 * KB));

    let relax_coarse = LoopNest::new("relax-coarse", 128, (3 * unit / 32).max(1) * 8)
        .with_access(Access::read(
            u2,
            AccessPattern::Stencil {
                unit_bytes: 2 * unit,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            u1,
            AccessPattern::Partitioned { unit_bytes: unit },
        ))
        .with_code_bytes(scale.bytes(4 * KB));

    // Prolongation: 512 iterations writing the fine grid, reading half a
    // coarse unit each.
    let prolong = LoopNest::new("prolongate", 512, (2 * unit / 32).max(1) * 8)
        .with_access(Access::read(
            u2,
            AccessPattern::Partitioned {
                unit_bytes: unit / 2,
            },
        ))
        .with_access(Access::write(
            u3,
            AccessPattern::Partitioned { unit_bytes: unit },
        ))
        .with_code_bytes(scale.bytes(4 * KB));

    p.phase(Phase {
        name: "v-cycle".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: relax_fine,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: restrict,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: relax_coarse,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: prolong,
            },
        ],
        count: 10,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((6.0..8.0).contains(&mb), "mgrid is 7 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn restriction_halves_grid_sizes() {
        let p = build(Scale::FULL);
        assert_eq!(p.arrays[0].bytes, 2 * p.arrays[1].bytes);
        assert_eq!(p.arrays[1].bytes, 2 * p.arrays[2].bytes);
    }

    #[test]
    fn scaled_variant_validates() {
        build(Scale::new(16)).validate().unwrap();
    }
}
