//! 103.su2cor — quantum-physics Monte Carlo. 23 MB reference data set.
//!
//! The benchmark where CDPC *slightly degrades* performance: several
//! important data structures are accessed through gather indices the
//! compiler cannot analyze, so CDPC colors only the regular arrays — and
//! that mapping "happens to conflict with the other data structures"
//! (paper §6.1). The irregular arrays here are marked
//! [`AccessPattern::Irregular`], reproducing exactly that situation.

use cdpc_compiler::ir::{Access, AccessPattern, Phase, Program, Stmt, StmtKind};

use crate::spec::{sweep_nest, Scale, KB, MB};

/// Builds the su2cor model at the given scale.
pub fn build(scale: Scale) -> Program {
    // The lattice update is gather-scattered in the real benchmark, with
    // disjointness guaranteed by the index sets, not the loop structure —
    // exactly the case the race lint cannot prove. Allowed on purpose;
    // it is what makes su2cor the paper's negative result.
    let mut p = Program::new("103.su2cor");
    p.allow_lint("race/irregular-write");
    let unit = scale.bytes(8 * KB);
    let units = 384u64; // 3 MB per regular array at full scale
    let w1 = p.array("w1", unit * units);
    let w2 = p.array("w2", unit * units);
    let gauge = p.array("gauge", unit * units);
    let prop = p.array("prop", unit * units);
    // Gather-indexed structures: 5.5 MB each at full scale.
    let fermion = p.array("fermion", scale.bytes(11 * MB / 2));
    let lattice = p.array("lattice", scale.bytes(11 * MB / 2));

    let sweep = sweep_nest("gauge-update", &[gauge, w1], &[w2], units, unit, 3)
        .with_code_bytes(scale.bytes(8 * KB));
    let gather = sweep_nest("propagator", &[w2], &[prop], units, unit, 3)
        .with_access(Access::read(
            fermion,
            AccessPattern::Irregular {
                touches_per_iter: 24,
            },
        ))
        .with_access(Access::write(
            lattice,
            AccessPattern::Irregular {
                touches_per_iter: 8,
            },
        ))
        .with_code_bytes(scale.bytes(10 * KB));

    p.phase(Phase {
        name: "trajectory".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: sweep,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: gather,
            },
        ],
        count: 8,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((21.0..25.0).contains(&mb), "su2cor is 23 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn has_unanalyzable_arrays() {
        use cdpc_compiler::{compile, CompileOptions};
        let c = compile(&build(Scale::new(16)), &CompileOptions::new(4)).unwrap();
        let analyzable: Vec<String> = c
            .summary
            .analyzable_arrays()
            .map(|a| a.name.clone())
            .collect();
        assert!(!analyzable.contains(&"fermion".to_string()));
        assert!(!analyzable.contains(&"lattice".to_string()));
        assert!(analyzable.contains(&"gauge".to_string()));
    }
}
