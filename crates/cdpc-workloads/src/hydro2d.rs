//! 104.hydro2d — Navier-Stokes astrophysical jets. 8 MB reference data
//! set.
//!
//! Eight 1 MB arrays in stencil sweeps; each array spans exactly one color
//! cycle, so page coloring gives every array the same start color and the
//! same-index regions collide. The data set is small enough that the
//! aggregate cache absorbs it early: CDPC's gains start at two processors
//! with the 1 MB cache, and a 4 MB cache fixes the problem even without
//! CDPC (paper Figures 6 and 7).

use cdpc_compiler::ir::{Phase, Program, Stmt, StmtKind};

use crate::spec::{stencil_nest, Scale, KB};

/// Builds the hydro2d model at the given scale.
pub fn build(scale: Scale) -> Program {
    let mut p = Program::new("104.hydro2d");
    let unit = scale.bytes(4 * KB);
    let units = 256u64; // 1 MB per array at full scale
    let names = ["ro", "en", "mz", "mr", "zp", "rp", "fz", "fr"];
    let a: Vec<_> = names.iter().map(|n| p.array(*n, unit * units)).collect();

    let advect_z = stencil_nest(
        "advect-z",
        &[a[0], a[1], a[2]],
        &[a[4], a[6]],
        units,
        unit,
        1,
        false,
        2,
    )
    .with_code_bytes(scale.bytes(5 * KB));
    let advect_r = stencil_nest(
        "advect-r",
        &[a[0], a[1], a[3]],
        &[a[5], a[7]],
        units,
        unit,
        1,
        false,
        2,
    )
    .with_code_bytes(scale.bytes(5 * KB));
    let update = stencil_nest(
        "update",
        &[a[4], a[5], a[6], a[7]],
        &[a[0], a[1], a[2], a[3]],
        units,
        unit,
        0,
        false,
        2,
    )
    .with_code_bytes(scale.bytes(3 * KB));

    p.phase(Phase {
        name: "timestep".into(),
        stmts: vec![
            Stmt {
                kind: StmtKind::Parallel,
                nest: advect_z,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: advect_r,
            },
            Stmt {
                kind: StmtKind::Parallel,
                nest: update,
            },
        ],
        count: 10,
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    #[test]
    fn matches_table_1_size() {
        let p = build(Scale::FULL);
        let mb = p.data_set_bytes() as f64 / MB as f64;
        assert!((7.0..9.0).contains(&mb), "hydro2d is 8 MB, got {mb:.1}");
        p.validate().unwrap();
    }

    #[test]
    fn arrays_span_one_color_cycle() {
        let p = build(Scale::FULL);
        for a in &p.arrays {
            assert_eq!(a.bytes, 256 * 4096);
        }
    }
}
