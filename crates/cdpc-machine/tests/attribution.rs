//! Tests for the miss-attribution pipeline: the probe's per-class totals
//! decompose the run report's aggregate miss counts exactly, a hand-built
//! two-array conflict workload attributes to exactly the cells arithmetic
//! predicts, the JSON document is schema-stable, and attribution does not
//! perturb simulation physics.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{
    attribution_to_html, attribution_to_json, render_attribution_top, run, run_attributed,
    PolicyKind, RunConfig,
};
use cdpc_memsim::{AccessKind, CacheConfig, MemConfig, MemorySystem, MissClass};
use cdpc_obs::{AttributionProbe, JsonValue, MissClassId, Probe};
use cdpc_vm::addr::{PhysAddr, VirtAddr};
use cdpc_vm::{Region, RegionMap};

/// A small machine: 32 KB direct-mapped L2 (8 colors with 4 KB pages).
fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(1 << 10, 32, 2);
    m.l1i = CacheConfig::new(1 << 10, 32, 2);
    m.l2 = CacheConfig::new(32 << 10, 128, 1);
    m
}

/// Two arrays, a stencil read against a partitioned write, several phase
/// iterations. The arrays total 48 KB against a 32 KB L2, so the measured
/// pass keeps missing in steady state (an L2-resident working set would
/// leave nothing to attribute after warm-up).
fn two_array_program(cpus: usize) -> cdpc_compiler::CompiledProgram {
    let mut p = Program::new("attrib-golden");
    let a = p.array("A", 24 << 10);
    let b = p.array("B", 24 << 10);
    let nest = LoopNest::new("sweep", 12, 500)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 4,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

/// Every attributed per-class total equals the run report's aggregate for
/// that class exactly — the phase-weighting protocol in the probe mirrors
/// the run loop's, so no miss is double-counted or dropped.
#[test]
fn attributed_totals_decompose_report_aggregates_exactly() {
    let compiled = two_array_program(2);
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let (report, probe) = run_attributed(&compiled, &cfg);

    let agg = report.mem_stats.aggregate();
    for class in [
        MissClass::Cold,
        MissClass::Capacity,
        MissClass::Conflict,
        MissClass::TrueSharing,
        MissClass::FalseSharing,
    ] {
        let id = MissClassId::from(class);
        assert_eq!(
            probe.class_total(id),
            agg.misses.get(class),
            "attributed `{}` must equal the report aggregate",
            id.label()
        );
    }
    assert_eq!(probe.misses_total(), agg.misses.total());
    assert!(agg.misses.total() > 0, "workload must actually miss");

    // The decomposition is complete per array too: rows sum to the total.
    let (arrays, colors, cpus) = probe.dims();
    let row_sum: u64 = (0..=arrays).map(|r| probe.array_total(r)).sum();
    assert_eq!(row_sum, probe.misses_total());
    // And per cell: colors × cpus × classes re-sum to each row.
    for row in 0..=arrays {
        let mut cell_sum = 0u64;
        for color in 0..colors {
            for cpu in 0..cpus {
                for class in MissClassId::ALL {
                    cell_sum += probe.cell(row, color, cpu, class);
                }
            }
        }
        assert_eq!(cell_sum, probe.array_total(row), "row {row} cells");
    }
}

/// Hand-built two-array conflict workload, driven directly through the
/// memory system with hand-computed expectations. Arrays A and B live on
/// pages of the same color whose lines alias in the direct-mapped L1 and
/// L2, so after the two cold misses every alternating access is a conflict
/// miss — and the phase weight multiplies everything by the phase count.
#[test]
fn hand_computed_two_array_conflict_attribution() {
    let mut cfg = MemConfig::paper_base(1);
    cfg.l1d = CacheConfig::new(256, 32, 1); // direct-mapped: no co-residency
    cfg.l1i = CacheConfig::new(256, 32, 1);
    cfg.l2 = CacheConfig::new(32 << 10, 128, 1); // 8 colors with 4 KB pages

    // 2 arrays × 8 colors × 1 cpu, 1 phase.
    let probe = AttributionProbe::new(2, 8, 1, 1);
    let mut m = MemorySystem::with_probe(cfg, probe);
    m.set_regions(RegionMap::new(vec![
        Region {
            start: 0x0000,
            end: 0x1000,
            id: 0,
        }, // array A: one page at va 0
        Region {
            start: 0x1_0000,
            end: 0x1_1000,
            id: 1,
        }, // array B: one page at va 64 K
    ]));

    // pa 0x0000 → page 0 → color 0; pa 0x8000 → page 8 → color 0 too, and
    // 0x8000 mod 32 K == 0, so the two lines share an L2 set (and an L1
    // set: 0x8000 mod 256 == 0).
    let a = (VirtAddr(0x0000), PhysAddr(0x0000));
    let b = (VirtAddr(0x1_0000), PhysAddr(0x8000));

    m.probe_mut().on_phase_start(0, 3); // phase executes 3 times
    let o1 = m.access(0, 0, a.0, a.1, AccessKind::Read);
    let o2 = m.access(0, 100, b.0, b.1, AccessKind::Read);
    let o3 = m.access(0, 200, a.0, a.1, AccessKind::Read);
    let o4 = m.access(0, 300, b.0, b.1, AccessKind::Read);
    assert_eq!(o1.miss_class, Some(MissClass::Cold));
    assert_eq!(o2.miss_class, Some(MissClass::Cold));
    assert_eq!(o3.miss_class, Some(MissClass::Conflict));
    assert_eq!(o4.miss_class, Some(MissClass::Conflict));
    m.probe_mut().on_phase_end(0, 400);

    let probe = m.into_probe();
    // Each array: 1 cold + 1 conflict, weighted ×3, all on color 0, cpu 0.
    for row in 0..2 {
        assert_eq!(probe.cell(row, 0, 0, MissClassId::Cold), 3);
        assert_eq!(probe.cell(row, 0, 0, MissClassId::Conflict), 3);
        assert_eq!(probe.array_total(row), 6);
        for color in 1..8 {
            for class in MissClassId::ALL {
                assert_eq!(probe.cell(row, color, 0, class), 0, "color {color}");
            }
        }
    }
    assert_eq!(probe.array_total(2), 0, "no unattributed misses");
    assert_eq!(probe.misses_total(), 12);
    assert_eq!(probe.class_total(MissClassId::Cold), 6);
    assert_eq!(probe.class_total(MissClassId::Conflict), 6);
    assert_eq!(probe.top_conflicts(4), vec![(0, 0, 3), (1, 0, 3)]);
    // Latency histogram: 4 distinct misses, each counted 3 times.
    assert_eq!(probe.latency().count(), 12);
}

/// Golden schema test for the attribution JSON document: parses back, the
/// cross-check section equals the attribution totals class by class, and
/// the dense shapes match the declared dims.
#[test]
fn attribution_json_is_schema_stable_and_self_consistent() {
    let compiled = two_array_program(2);
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let (report, probe) = run_attributed(&compiled, &cfg);
    let doc = attribution_to_json(&probe, &compiled.array_names(), &report);

    let parsed = JsonValue::parse(&doc.to_string_pretty()).expect("valid JSON");
    assert_eq!(
        parsed.get("workload").unwrap().as_str(),
        Some("attrib-golden")
    );
    assert_eq!(parsed.get("policy").unwrap().as_str(), Some("cdpc"));
    let attrib = parsed.get("attribution").expect("attribution subtree");
    let dims = attrib.get("dims").expect("dims");
    assert_eq!(dims.get("arrays").unwrap().as_u64(), Some(2));
    assert_eq!(dims.get("classes").unwrap().as_u64(), Some(5));
    let colors = dims.get("colors").unwrap().as_u64().unwrap() as usize;
    assert_eq!(colors, 8, "32 KB DM L2 with 4 KB pages has 8 colors");

    // report_misses (from RunReport) and attribution totals agree exactly.
    let report_misses = parsed.get("report_misses").expect("cross-check section");
    let by_class = attrib.get("totals").unwrap().get("by_class").unwrap();
    for class in MissClassId::ALL {
        assert_eq!(
            by_class.get(class.label()).unwrap().as_u64(),
            report_misses.get(class.label()).unwrap().as_u64(),
            "class `{}`",
            class.label()
        );
    }
    assert_eq!(
        attrib
            .get("totals")
            .unwrap()
            .get("misses")
            .unwrap()
            .as_u64(),
        report_misses.get("total").unwrap().as_u64()
    );

    // Arrays: the two program arrays plus the `(other)` bucket, each with
    // a conflict_by_color vector of the full color count that sums to its
    // conflict total.
    let arrays = attrib.get("arrays").unwrap().as_array().unwrap();
    assert_eq!(arrays.len(), 3);
    assert_eq!(arrays[0].get("name").unwrap().as_str(), Some("A"));
    assert_eq!(arrays[1].get("name").unwrap().as_str(), Some("B"));
    assert_eq!(arrays[2].get("name").unwrap().as_str(), Some("(other)"));
    for a in arrays {
        let by_color = a.get("conflict_by_color").unwrap().as_array().unwrap();
        assert_eq!(by_color.len(), colors);
        let sum: u64 = by_color.iter().map(|v| v.as_u64().unwrap()).sum();
        assert_eq!(
            Some(sum),
            a.get("by_class").unwrap().get("conflict").unwrap().as_u64()
        );
    }

    // Occupancy series: one baseline snapshot plus one per phase.
    let occ = attrib
        .get("colors")
        .unwrap()
        .get("occupancy")
        .expect("occupancy series");
    let cycles = occ.get("cycles").unwrap().as_array().unwrap();
    assert_eq!(cycles.len(), compiled.phases.len() + 1);
    let snaps = occ.get("mapped_pages").unwrap().as_array().unwrap();
    assert_eq!(snaps.len(), cycles.len());
    for s in snaps {
        assert_eq!(s.as_array().unwrap().len(), colors);
    }

    // Two exports are byte-identical (determinism).
    let again = attribution_to_json(&probe, &compiled.array_names(), &report);
    assert_eq!(doc.to_string_compact(), again.to_string_compact());
}

/// Attribution is pure observation: the attributed run's report equals the
/// plain run's report bit for bit.
#[test]
fn attribution_does_not_perturb_results() {
    let compiled = two_array_program(2);
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let plain = run(&compiled, &cfg);
    let (attributed, _) = run_attributed(&compiled, &cfg);
    assert_eq!(plain, attributed, "attribution must not change physics");
}

/// The terminal `--top` view and the HTML report both render from a real
/// run's document without panicking and carry the load-bearing content.
#[test]
fn top_summary_and_html_render_from_real_run() {
    let compiled = two_array_program(2);
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let (report, probe) = run_attributed(&compiled, &cfg);
    let doc = attribution_to_json(&probe, &compiled.array_names(), &report);

    let top = render_attribution_top(&doc, 5);
    assert!(top.contains("attrib-golden"));
    assert!(top.contains("attributed misses"));
    assert!(top.contains("miss latency"));

    let html = attribution_to_html(&doc);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<svg"));
    assert!(html.contains("attrib-golden"));
    assert!(html.contains("Top conflict offenders"));
}
