//! Allocation-freedom proof for the epoch-parallel engine's steady state.
//!
//! The engine recycles everything that crosses an epoch boundary: bundles
//! and their journals, batch-clock logs, mailbox queues, and the
//! coordinator's scratch buffers are allocated during the first epochs and
//! reused afterwards. So once warm, adding *more* epochs (phase
//! repetitions) to a run must add exactly the heap traffic the serial
//! scheduler adds for the same epochs — the engine's own per-epoch
//! allocation budget is zero.
//!
//! The proof compares first differences under a counting global
//! allocator: `allocs(run with N+K epochs) - allocs(run with N epochs)`,
//! measured for the serial path and for the engine at `sim_threads = 4`.
//! Run-level one-offs (worker-pool spawn, mailbox construction, warm-up
//! growth) cancel in the difference; what remains is the steady-state
//! per-epoch cost, and the engine's must not exceed the serial path's.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{run, PolicyKind, RunConfig, RunReport};
use cdpc_memsim::{CacheConfig, MemConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A two-array stencil/partitioned workload whose epoch count (phase
/// repetitions) is the knob; everything else is held fixed.
fn workload(cpus: usize, epochs: u64) -> cdpc_compiler::CompiledProgram {
    let mut p = Program::new("zero-alloc-engine");
    let a = p.array("A", 24 << 10);
    let b = p.array("B", 24 << 10);
    let nest = LoopNest::new("sweep", 12, 300)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: epochs,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(1 << 10, 32, 2);
    m.l1i = CacheConfig::new(1 << 10, 32, 2);
    m.l2 = CacheConfig::new(32 << 10, 128, 1);
    m
}

/// Allocation count of one full run (the caller warms the path first).
fn allocs_of(compiled: &cdpc_compiler::CompiledProgram, cfg: &RunConfig) -> (u64, RunReport) {
    let before = ALLOCS.load(Ordering::SeqCst);
    let report = black_box(run(compiled, cfg));
    (ALLOCS.load(Ordering::SeqCst) - before, report)
}

#[test]
fn engine_steady_state_adds_zero_allocations_per_epoch() {
    const CPUS: usize = 4;
    const BASE: u64 = 3;
    const MORE: u64 = 13;
    let short = workload(CPUS, BASE);
    let long = workload(CPUS, MORE);
    let serial_cfg = RunConfig::new(small_mem(CPUS), PolicyKind::Cdpc);
    let mut engine_cfg = serial_cfg.clone();
    engine_cfg.sim_threads = 4;

    // Warm every (program, config) pair once so lazy one-time init
    // (thread-local buffers etc.) doesn't skew any measurement.
    for compiled in [&short, &long] {
        let _ = run(compiled, &serial_cfg);
        let _ = run(compiled, &engine_cfg);
    }

    let (serial_short, rs) = allocs_of(&short, &serial_cfg);
    let (serial_long, rl) = allocs_of(&long, &serial_cfg);
    let (engine_short, es) = allocs_of(&short, &engine_cfg);
    let (engine_long, el) = allocs_of(&long, &engine_cfg);

    assert_eq!(rs, es, "engine must be bit-identical (short run)");
    assert_eq!(rl, el, "engine must be bit-identical (long run)");

    let serial_delta = serial_long.saturating_sub(serial_short);
    let engine_delta = engine_long.saturating_sub(engine_short);
    assert!(
        engine_delta <= serial_delta,
        "steady-state epochs must be allocation-free for the engine: \
         {} extra epochs cost {engine_delta} allocations under the engine \
         vs {serial_delta} serially",
        MORE - BASE,
    );
}
