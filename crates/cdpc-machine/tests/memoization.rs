//! Correctness proofs for the memoization layer: warm-checkpoint forking
//! and the persistent result cache must be invisible in the results —
//! every memoized path produces reports **byte-identical** to a fresh
//! straight-line [`run`], and every tampered or mismatched cache entry is
//! rejected rather than believed.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions, CompiledProgram};
use cdpc_machine::{
    report_to_json, run, run_from_checkpoint, run_key, run_sweep, run_sweep_memo, warm_checkpoint,
    PolicyKind, ResultCache, RunConfig, RunReport, SweepJob,
};
use cdpc_memsim::MemConfig;

/// A small machine: 32 KB direct-mapped L2 (8 colors), tiny L1s.
fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1);
    m
}

/// A stencil + partitioned-write workload: enough traffic to exercise
/// misses, coherence, prefetch-free sharing, and page faults — state a
/// checkpoint must capture exactly.
fn program_named(name: &str, cpus: usize) -> CompiledProgram {
    let mut p = Program::new(name);
    let a = p.array("A", 12 << 10);
    let b = p.array("B", 12 << 10);
    let nest = LoopNest::new("sweep", 12, 400)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 3,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

fn report_key(r: &RunReport) -> String {
    report_to_json(r).to_string_compact()
}

fn temp_cache(tag: &str) -> ResultCache {
    let dir = std::env::temp_dir().join(format!("cdpc-memo-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ResultCache::new(dir)
}

/// Checkpoint/fork equivalence across every policy family: capture the
/// warm state once, replay the measured pass from it, and demand exact
/// equality with the straight-line run — structured report and rendered
/// JSON both.
#[test]
fn forked_measured_pass_matches_straight_line_run() {
    for &(cpus, policy) in &[
        (1, PolicyKind::PageColoring),
        (2, PolicyKind::PageColoring),
        (2, PolicyKind::BinHopping),
        (4, PolicyKind::Cdpc),
        (4, PolicyKind::CdpcTouch),
    ] {
        let compiled = program_named("fork-equiv", cpus);
        let cfg = RunConfig::new(small_mem(cpus), policy);
        let straight = run(&compiled, &cfg);
        let ckpt = warm_checkpoint(&compiled, &cfg);
        let forked = run_from_checkpoint(&compiled, &cfg, &ckpt);
        assert_eq!(
            straight, forked,
            "{policy:?} at {cpus} CPUs: forked run diverged"
        );
        assert_eq!(report_key(&straight), report_key(&forked));
        // The checkpoint is reusable: a second fork is identical too.
        assert_eq!(straight, run_from_checkpoint(&compiled, &cfg, &ckpt));
    }
}

/// Dynamic recoloring is the hardest state to checkpoint: per-page
/// conflict counters, per-color loads, and the recoloring count all carry
/// over from warm-up into the measured pass.
#[test]
fn forked_run_preserves_dynamic_recoloring_state() {
    let mut p = Program::new("dyn-fork");
    let a = p.array("A", 16 << 10);
    let _gap = p.array("gap", 16 << 10);
    let c = p.array("C", 16 << 10);
    let nest = LoopNest::new("sweep", 16, 300)
        .with_access(Access::read(
            a,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ))
        .with_access(Access::write(
            c,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 6,
    });
    let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
    let mut cfg = RunConfig::new(small_mem(2), PolicyKind::DynamicRecolor);
    cfg.recolor_threshold = 8;
    let straight = run(&compiled, &cfg);
    assert!(
        straight.recolorings > 0,
        "the recoloring detector must fire"
    );
    let forked = run_from_checkpoint(&compiled, &cfg, &warm_checkpoint(&compiled, &cfg));
    assert_eq!(straight, forked);
}

/// The point of the warm/full key split: programs identical in content
/// but for their *name* share a warm key (the name cannot influence the
/// simulation), so one checkpoint serves both — and each forked report
/// still equals that job's own fresh run, name and all.
#[test]
fn one_checkpoint_serves_same_content_different_name_jobs() {
    let cpus = 4;
    let alpha = program_named("variant-alpha", cpus);
    let beta = program_named("variant-beta", cpus);
    let cfg = RunConfig::new(small_mem(cpus), PolicyKind::Cdpc);
    let (ka, kb) = (run_key(&alpha, &cfg), run_key(&beta, &cfg));
    assert_eq!(ka.warm, kb.warm, "name must not enter the warm key");
    assert_ne!(ka.full, kb.full, "name must split the full key");

    let ckpt = warm_checkpoint(&alpha, &cfg);
    let forked_beta = run_from_checkpoint(&beta, &cfg, &ckpt);
    let fresh_beta = run(&beta, &cfg);
    assert_eq!(fresh_beta, forked_beta);
    assert_eq!(forked_beta.name, "variant-beta");
}

/// Replaying from a checkpoint warmed under different content would
/// silently corrupt results; the mismatch must be fatal instead.
#[test]
#[should_panic(expected = "different (program, config) content")]
fn checkpoint_rejects_mismatched_warm_key() {
    let cpus = 2;
    let compiled = program_named("mismatch", cpus);
    let cfg = RunConfig::new(small_mem(cpus), PolicyKind::PageColoring);
    let ckpt = warm_checkpoint(&compiled, &cfg);
    let other_cfg = RunConfig::new(small_mem(cpus), PolicyKind::Cdpc);
    let _ = run_from_checkpoint(&compiled, &other_cfg, &ckpt);
}

/// The memoized sweep is a drop-in for the plain one: same jobs, same
/// order, same bytes — while dedup and forking silently remove redundant
/// simulation. Stats must partition the job list exactly.
#[test]
fn memoized_sweep_is_bit_identical_to_plain_sweep() {
    let cpus = 2;
    let cfg = RunConfig::new(small_mem(cpus), PolicyKind::Cdpc);
    let jobs = vec![
        SweepJob::new(program_named("job-a", cpus), cfg.clone()),
        // Exact duplicate of job-a: in-sweep dedup.
        SweepJob::new(program_named("job-a", cpus), cfg.clone()),
        // Same content, different name: warm-checkpoint fork.
        SweepJob::new(program_named("job-b", cpus), cfg.clone()),
        // Genuinely different machine: simulates on its own.
        SweepJob::new(
            program_named("job-a", 4),
            RunConfig::new(small_mem(4), PolicyKind::PageColoring),
        ),
    ];
    let plain = run_sweep(&jobs, 2);
    for threads in [1, 4] {
        let (memo, stats) = run_sweep_memo(&jobs, threads, None);
        assert_eq!(plain, memo, "threads={threads}");
        assert_eq!(stats.total(), jobs.len() as u64);
        assert_eq!(stats.deduped, 1, "the duplicate job dedups");
        assert_eq!(stats.forked, 1, "the renamed job forks");
        assert_eq!(
            stats.bypassed, 3,
            "no cache attached: simulated jobs bypass"
        );
        assert_eq!(stats.hits + stats.misses, 0);
    }
}

/// Persistent-cache round trip through the sweep: a cold sweep misses and
/// stores, a warm sweep answers every job from disk, and both return the
/// exact bytes of the uncached sweep.
#[test]
fn warm_sweep_serves_every_job_from_the_cache() {
    let cache = temp_cache("sweep");
    let cpus = 2;
    let jobs = vec![
        SweepJob::new(
            program_named("cache-a", cpus),
            RunConfig::new(small_mem(cpus), PolicyKind::Cdpc),
        ),
        SweepJob::new(
            program_named("cache-b", cpus),
            RunConfig::new(small_mem(cpus), PolicyKind::PageColoring),
        ),
    ];
    let plain = run_sweep(&jobs, 1);

    let (cold, cold_stats) = run_sweep_memo(&jobs, 2, Some(&cache));
    assert_eq!(plain, cold);
    assert_eq!(cold_stats.misses, 2);
    assert_eq!(cold_stats.hits, 0);

    let (warm, warm_stats) = run_sweep_memo(&jobs, 2, Some(&cache));
    assert_eq!(plain, warm);
    assert_eq!(warm_stats.hits, 2, "everything answers from disk");
    assert_eq!(warm_stats.misses, 0);

    std::fs::remove_dir_all(cache.root()).ok();
}

/// Poisoned cache entries (truncated, corrupted, or from a different
/// format version) must be treated as misses — the sweep re-simulates and
/// overwrites, never trusts damaged bytes.
#[test]
fn sweep_resimulates_over_poisoned_cache_entries() {
    let cache = temp_cache("poison");
    let cpus = 2;
    let jobs = vec![SweepJob::new(
        program_named("poisoned", cpus),
        RunConfig::new(small_mem(cpus), PolicyKind::Cdpc),
    )];
    let plain = run_sweep(&jobs, 1);
    let (_, stats) = run_sweep_memo(&jobs, 1, Some(&cache));
    assert_eq!(stats.misses, 1);

    // Corrupt every stored entry in place.
    for entry in std::fs::read_dir(cache.versioned_dir()).unwrap() {
        std::fs::write(entry.unwrap().path(), "{\"format_version\": 1, garbage").unwrap();
    }
    let (healed, stats) = run_sweep_memo(&jobs, 1, Some(&cache));
    assert_eq!(plain, healed, "poisoned entry must not leak into results");
    assert_eq!(stats.misses, 1, "damaged entry re-simulates");
    assert_eq!(stats.hits, 0);

    // The re-simulation repaired the entry: next sweep hits again.
    let (_, stats) = run_sweep_memo(&jobs, 1, Some(&cache));
    assert_eq!(stats.hits, 1);

    std::fs::remove_dir_all(cache.root()).ok();
}
