//! Allocation-freedom proof for the attribution probe.
//!
//! [`AttributionProbe`] pre-sizes its tensor, histograms, and occupancy
//! series at construction, so an attribution-enabled run must perform
//! exactly the same heap traffic as a probe-free run — every
//! `on_classified_miss` / `on_phase_*` / `on_run_batch` event lands in
//! storage that already exists. This test installs a counting global
//! allocator, runs the same workload once with `NullProbe` and once with a
//! pre-built [`AttributionProbe`], and asserts the allocation counts are
//! identical (the simulator is deterministic, so so is its allocation
//! sequence).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{attribution_probe, run_observed, PolicyKind, RunConfig};
use cdpc_memsim::{CacheConfig, MemConfig};
use cdpc_obs::NullProbe;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn workload(cpus: usize) -> cdpc_compiler::CompiledProgram {
    let mut p = Program::new("zero-alloc-attrib");
    let a = p.array("A", 24 << 10);
    let b = p.array("B", 24 << 10);
    let nest = LoopNest::new("sweep", 12, 300)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 3,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(1 << 10, 32, 2);
    m.l1i = CacheConfig::new(1 << 10, 32, 2);
    m.l2 = CacheConfig::new(32 << 10, 128, 1);
    m
}

#[test]
fn attribution_enabled_run_allocates_no_more_than_probe_free_run() {
    let compiled = workload(2);
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);

    // Warm both paths once so one-time lazy initialization (thread-local
    // buffers, etc.) doesn't skew either count.
    let mut warm_probe = attribution_probe(&compiled, &cfg);
    let _ = run_observed(&compiled, &cfg, &mut NullProbe, None);
    let _ = run_observed(&compiled, &cfg, &mut warm_probe, None);

    let before_null = ALLOCS.load(Ordering::SeqCst);
    let (null_report, _) = run_observed(&compiled, &cfg, &mut NullProbe, None);
    let null_allocs = ALLOCS.load(Ordering::SeqCst) - before_null;

    // Probe construction is allowed to allocate (it pre-sizes everything);
    // the run with the probe installed is not allowed to allocate more
    // than the probe-free run.
    let mut probe = attribution_probe(&compiled, &cfg);
    let before_attrib = ALLOCS.load(Ordering::SeqCst);
    let (attrib_report, _) = run_observed(&compiled, &cfg, black_box(&mut probe), None);
    let attrib_allocs = ALLOCS.load(Ordering::SeqCst) - before_attrib;

    assert_eq!(
        null_report, attrib_report,
        "attribution must not change physics"
    );
    assert!(
        probe.misses_total() > 0,
        "the probe actually observed misses"
    );
    assert_eq!(
        attrib_allocs, null_allocs,
        "attribution-enabled run must add zero heap allocations \
         (probe-free: {null_allocs}, attribution: {attrib_allocs})"
    );
}
