//! Golden tests for the observability stack: the JSON exporter round-trips
//! through the hand-rolled parser, the Chrome trace is valid JSON in the
//! trace-event shape, and the interval series sums back to the end-of-run
//! aggregates exactly.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{report_to_json, run, run_observed, PolicyKind, RunConfig, RunReport};
use cdpc_memsim::MemConfig;
use cdpc_obs::{IntervalSeries, JsonValue, TraceProbe};

/// A small machine: 32 KB direct-mapped L2 (8 colors), tiny L1s.
fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1);
    m
}

/// Two arrays swept by a stencil plus a partitioned write — enough traffic
/// to exercise every stall category and the prefetcher.
fn observed_run() -> (RunReport, Option<IntervalSeries>, TraceProbe) {
    let mut p = Program::new("obs-golden");
    let a = p.array("A", 12 << 10);
    let b = p.array("B", 12 << 10);
    let nest = LoopNest::new("sweep", 12, 500)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 4,
    });
    let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let mut probe = TraceProbe::new();
    let (report, series) = run_observed(&compiled, &cfg, &mut probe, Some(5_000));
    (report, series, probe)
}

/// The exported report survives a round-trip through the hand-rolled
/// parser with every headline number intact.
#[test]
fn report_json_round_trips_through_parser() {
    let (report, _, _) = observed_run();
    let json = report_to_json(&report);
    let parsed = JsonValue::parse(&json.to_string_pretty()).expect("exporter emits valid JSON");
    assert_eq!(parsed.get("name").unwrap().as_str(), Some("obs-golden"));
    assert_eq!(parsed.get("policy").unwrap().as_str(), Some("cdpc"));
    assert_eq!(parsed.get("num_cpus").unwrap().as_u64(), Some(2));
    assert_eq!(
        parsed.get("instructions").unwrap().as_u64(),
        Some(report.instructions)
    );
    assert_eq!(
        parsed.get("elapsed_cycles").unwrap().as_u64(),
        Some(report.elapsed_cycles)
    );
    assert_eq!(
        parsed.get("simulated_refs").unwrap().as_u64(),
        Some(report.simulated_refs)
    );
    let mcpi = parsed.get("mcpi").unwrap().as_f64().unwrap();
    assert!((mcpi - report.mcpi()).abs() < 1e-12);
    let stalls = parsed.get("stalls").expect("stalls object");
    assert_eq!(
        stalls.get("total").unwrap().as_u64(),
        Some(report.stalls.total())
    );
    assert_eq!(
        stalls.get("conflict").unwrap().as_u64(),
        Some(report.stalls.conflict)
    );
    let memory = parsed.get("memory").expect("memory object");
    let misses = memory.get("l2_misses").expect("miss-class object");
    for class in [
        "cold",
        "capacity",
        "conflict",
        "true-sharing",
        "false-sharing",
    ] {
        assert!(misses.get(class).is_some(), "miss class `{class}` exported");
    }
    // Compact and pretty forms parse to the same value.
    let reparsed = JsonValue::parse(&json.to_string_compact()).unwrap();
    assert_eq!(
        reparsed.to_string_pretty(),
        parsed.to_string_pretty(),
        "compact and pretty forms agree"
    );
}

/// The trace export is valid JSON in the Chrome trace-event shape:
/// a top-level `traceEvents` array of objects with ph/ts/pid/tid fields.
#[test]
fn chrome_trace_is_well_formed() {
    let (_, _, probe) = observed_run();
    assert!(probe.buffered_events() > 0, "run must produce events");
    let trace = probe.to_chrome_trace();
    let parsed = JsonValue::parse(&trace).expect("trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut spans = 0;
    for ev in events {
        assert!(ev.get("name").is_some(), "every event is named");
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                spans += 1;
                assert!(ev.get("ts").is_some(), "spans carry a timestamp");
                assert!(ev.get("dur").is_some(), "spans carry a duration");
            }
            Some("M") => {} // lane-name metadata has no timestamp
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(spans > 0, "trace contains real spans, not just metadata");
}

/// Summing the interval series reproduces the end-of-run aggregates
/// exactly — no cycle and no instruction is lost at window boundaries.
#[test]
fn interval_series_sums_to_run_totals() {
    let (report, series, _) = observed_run();
    let series = series.expect("sampling was on");
    assert!(series.samples.len() > 1, "run spans several windows");
    let t = series.totals();
    assert_eq!(t.instructions, report.instructions);
    assert_eq!(t.l2_hit_stall, report.stalls.l2_hit);
    assert_eq!(t.conflict_stall, report.stalls.conflict);
    assert_eq!(t.capacity_stall, report.stalls.capacity);
    assert_eq!(t.true_sharing_stall, report.stalls.true_sharing);
    assert_eq!(t.false_sharing_stall, report.stalls.false_sharing);
    assert_eq!(t.cold_stall, report.stalls.cold);
    assert_eq!(t.prefetch_stall, report.stalls.prefetch);
    assert_eq!(t.upgrade_stall, report.stalls.upgrade);
    assert_eq!(t.stall_total(), report.stalls.total());
    assert_eq!(t.bus_data, report.bus.data_cycles);
    assert_eq!(t.bus_writeback, report.bus.writeback_cycles);
    assert_eq!(t.bus_upgrade, report.bus.upgrade_cycles);
    // The CSV renders one row per window plus a header.
    let csv = series.to_csv();
    assert_eq!(csv.lines().count(), series.samples.len() + 1);
    assert!(csv.starts_with("end_cycle,instructions,"));
}

/// Observation is pure: the observed run's report equals the plain run's.
#[test]
fn observation_does_not_perturb_results() {
    let mut p = Program::new("obs-golden");
    let a = p.array("A", 12 << 10);
    let b = p.array("B", 12 << 10);
    let nest = LoopNest::new("sweep", 12, 500)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 4,
    });
    let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
    let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
    let plain = run(&compiled, &cfg);
    let (observed, _, _) = observed_run();
    assert_eq!(
        plain, observed,
        "probes and sampling must not change physics"
    );
}
