//! Determinism guarantees for the sweep executor: every execution path —
//! the plain run loop, the observed run loop with a probe attached, and a
//! multi-threaded sweep — must produce byte-identical reports for the same
//! `(CompiledProgram, RunConfig)` input. The benchmark binaries rely on
//! this to make `--threads N` output indistinguishable from `--threads 1`.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{
    report_to_json, run, run_observed, run_sweep, PolicyKind, RunConfig, RunReport, SchedulerKind,
    SweepJob,
};
use cdpc_memsim::MemConfig;
use cdpc_obs::{CountingProbe, Probe};
use cdpc_workloads::spec::Scale;

/// A small machine: 32 KB direct-mapped L2 (8 colors), tiny L1s.
fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1);
    m
}

/// A stencil + partitioned-write workload with prefetching — enough
/// traffic to exercise misses, coherence, and the prefetch engine, where
/// iteration-order bugs would show up.
fn program(cpus: usize) -> cdpc_compiler::CompiledProgram {
    let mut p = Program::new("determinism");
    let a = p.array("A", 12 << 10);
    let b = p.array("B", 12 << 10);
    let nest = LoopNest::new("sweep", 12, 400)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 3,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

fn sweep_configs() -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for &(cpus, policy) in &[
        (1, PolicyKind::PageColoring),
        (2, PolicyKind::PageColoring),
        (2, PolicyKind::Cdpc),
        (4, PolicyKind::Cdpc),
    ] {
        jobs.push(SweepJob::new(
            program(cpus),
            RunConfig::new(small_mem(cpus), policy),
        ));
    }
    jobs
}

fn report_key(r: &RunReport) -> String {
    report_to_json(r).to_string_compact()
}

/// The scaled-down suite machine used by the root `workload_suite` tests.
fn suite_mem(cpus: usize, scale: u64) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = cdpc_memsim::CacheConfig::new((1 << 20) / scale as usize, 128, 1);
    m.l1d = cdpc_memsim::CacheConfig::new(512, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(512, 32, 2);
    m.tlb_entries = 8;
    m
}

/// A conflict-heavy layout that forces the dynamic-recoloring policy to
/// fire: A and C overlay each other in a 32 KB direct-mapped cache while
/// the gap array's colors stay free as recoloring targets.
fn recoloring_job() -> (cdpc_compiler::CompiledProgram, RunConfig) {
    let mut p = Program::new("dyn-sched");
    let a = p.array("A", 16 << 10);
    let _gap = p.array("gap", 16 << 10);
    let c = p.array("C", 16 << 10);
    let nest = LoopNest::new("sweep", 16, 300)
        .with_access(Access::read(
            a,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ))
        .with_access(Access::write(
            c,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 6,
    });
    let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
    let mut cfg = RunConfig::new(small_mem(2), PolicyKind::DynamicRecolor);
    cfg.recolor_threshold = 8;
    (compiled, cfg)
}

/// Tentpole proof: min-clock batching reproduces the per-op heap
/// scheduler bit-for-bit on every workload of the suite, across CPU
/// counts, with and without prefetching.
#[test]
fn min_clock_batching_matches_heap_scheduler_on_every_workload() {
    const SCALE: u64 = 64;
    for bench in cdpc_workloads::all() {
        let program = (bench.build)(Scale::new(SCALE));
        for cpus in [1usize, 4, 8] {
            let mem = suite_mem(cpus, SCALE);
            let mut opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
            if cpus == 4 {
                // Exercise prefetch ops under batching on one config.
                opts = opts.with_prefetch();
            }
            let compiled = compile(&program, &opts).expect("models compile");
            let mut batched = RunConfig::new(mem, PolicyKind::Cdpc);
            batched.scheduler = SchedulerKind::MinClockBatch;
            let mut heap = batched.clone();
            heap.scheduler = SchedulerKind::Heap;
            assert_eq!(
                report_key(&run(&compiled, &batched)),
                report_key(&run(&compiled, &heap)),
                "{} at {cpus} CPUs: schedulers diverged",
                bench.name
            );
        }
    }
}

/// The trickiest equivalence case: dynamic-recoloring IPIs advance *other*
/// CPUs' live clocks mid-statement while their heap keys stay stale. The
/// batching bound is a stale key too, so the disciplines must still agree.
#[test]
fn schedulers_agree_under_dynamic_recoloring_ipis() {
    let (compiled, mut cfg) = recoloring_job();
    cfg.scheduler = SchedulerKind::MinClockBatch;
    let batched = run(&compiled, &cfg);
    cfg.scheduler = SchedulerKind::Heap;
    let heap = run(&compiled, &cfg);
    assert!(batched.recolorings > 0, "the recoloring detector must fire");
    assert_eq!(report_key(&batched), report_key(&heap));
}

/// The micro-translation-cache is pure memoization: disabling it must not
/// change a single bit, including across `recolor_page` invalidations
/// (dynamic policy) and the pre-touch faults of `CdpcTouch`.
#[test]
fn translation_cache_is_pure_memoization() {
    // Recoloring run: stale translations would survive a missed
    // invalidation and redirect accesses to the old physical page.
    let (compiled, mut cfg) = recoloring_job();
    cfg.translation_cache = true;
    let cached = run(&compiled, &cfg);
    cfg.translation_cache = false;
    let walked = run(&compiled, &cfg);
    assert!(cached.recolorings > 0, "invalidation path was exercised");
    assert_eq!(report_key(&cached), report_key(&walked));

    // CdpcTouch run: pages are pre-faulted by the touch pass, so the
    // measured pass runs almost entirely out of the micro-cache.
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let program = (bench.build)(Scale::new(64));
    let mem = suite_mem(4, 64);
    let opts = CompileOptions::new(4).with_l2_cache(mem.l2.size_bytes() as u64);
    let compiled = compile(&program, &opts).expect("models compile");
    let mut cfg = RunConfig::new(mem, PolicyKind::CdpcTouch);
    cfg.translation_cache = true;
    let cached = run(&compiled, &cfg);
    cfg.translation_cache = false;
    let walked = run(&compiled, &cfg);
    assert_eq!(report_key(&cached), report_key(&walked));
}

#[test]
fn run_and_observed_run_agree() {
    let jobs = sweep_configs();
    for job in &jobs {
        let plain = run(&job.compiled, &job.cfg);
        let mut probe = CountingProbe::new();
        let (observed, _) = run_observed(&job.compiled, &job.cfg, &mut probe, None);
        assert_eq!(
            report_to_json(&plain).to_string_compact(),
            report_to_json(&observed).to_string_compact(),
            "probe attachment changed the simulation for {}",
            job.compiled.name
        );
        assert!(probe.event_count() > 0, "the probe did see events");
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let jobs = sweep_configs();
    let sequential: Vec<String> = run_sweep(&jobs, 1)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    let parallel: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    assert_eq!(
        sequential, parallel,
        "reports must not depend on thread count"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let jobs = sweep_configs();
    let first: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    let second: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    assert_eq!(first, second, "the simulator must be a pure function");
}
