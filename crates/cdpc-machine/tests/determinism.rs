//! Determinism guarantees for the sweep executor: every execution path —
//! the plain run loop, the observed run loop with a probe attached, and a
//! multi-threaded sweep — must produce byte-identical reports for the same
//! `(CompiledProgram, RunConfig)` input. The benchmark binaries rely on
//! this to make `--threads N` output indistinguishable from `--threads 1`.

use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{report_to_json, run, run_observed, run_sweep, PolicyKind, RunConfig, SweepJob};
use cdpc_memsim::MemConfig;
use cdpc_obs::{CountingProbe, Probe};

/// A small machine: 32 KB direct-mapped L2 (8 colors), tiny L1s.
fn small_mem(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
    m.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1);
    m
}

/// A stencil + partitioned-write workload with prefetching — enough
/// traffic to exercise misses, coherence, and the prefetch engine, where
/// iteration-order bugs would show up.
fn program(cpus: usize) -> cdpc_compiler::CompiledProgram {
    let mut p = Program::new("determinism");
    let a = p.array("A", 12 << 10);
    let b = p.array("B", 12 << 10);
    let nest = LoopNest::new("sweep", 12, 400)
        .with_access(Access::read(
            a,
            AccessPattern::Stencil {
                unit_bytes: 1024,
                halo_units: 1,
                wraparound: false,
            },
        ))
        .with_access(Access::write(
            b,
            AccessPattern::Partitioned { unit_bytes: 1024 },
        ));
    p.phase(Phase {
        name: "main".into(),
        stmts: vec![Stmt {
            kind: StmtKind::Parallel,
            nest,
        }],
        count: 3,
    });
    compile(&p, &CompileOptions::new(cpus).with_l2_cache(32 << 10)).unwrap()
}

fn sweep_configs() -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for &(cpus, policy) in &[
        (1, PolicyKind::PageColoring),
        (2, PolicyKind::PageColoring),
        (2, PolicyKind::Cdpc),
        (4, PolicyKind::Cdpc),
    ] {
        jobs.push(SweepJob::new(
            program(cpus),
            RunConfig::new(small_mem(cpus), policy),
        ));
    }
    jobs
}

#[test]
fn run_and_observed_run_agree() {
    let jobs = sweep_configs();
    for job in &jobs {
        let plain = run(&job.compiled, &job.cfg);
        let mut probe = CountingProbe::new();
        let (observed, _) = run_observed(&job.compiled, &job.cfg, &mut probe, None);
        assert_eq!(
            report_to_json(&plain).to_string_compact(),
            report_to_json(&observed).to_string_compact(),
            "probe attachment changed the simulation for {}",
            job.compiled.name
        );
        assert!(probe.event_count() > 0, "the probe did see events");
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let jobs = sweep_configs();
    let sequential: Vec<String> = run_sweep(&jobs, 1)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    let parallel: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    assert_eq!(
        sequential, parallel,
        "reports must not depend on thread count"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let jobs = sweep_configs();
    let first: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    let second: Vec<String> = run_sweep(&jobs, 4)
        .iter()
        .map(|r| report_to_json(r).to_string_compact())
        .collect();
    assert_eq!(first, second, "the simulator must be a pure function");
}
