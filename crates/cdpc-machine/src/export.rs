//! Structured export of run reports — the machine-readable counterpart of
//! [`format`](crate::format).
//!
//! The JSON layout is flat and stable: top-level scalars for the headline
//! numbers, one nested object per Figure-2 view (`stalls`, `overheads`,
//! `bus`, `faults`) plus an aggregate `memory` section. Objects preserve
//! insertion order, so two exports of the same report are byte-identical
//! and exports of different reports diff cleanly. Everything here is
//! parseable back with [`JsonValue::parse`], which the golden tests use to
//! guard the schema.

use cdpc_memsim::MissClass;
use cdpc_obs::JsonValue;

use crate::report::RunReport;

/// Builds the JSON tree for one run report.
pub fn report_to_json(r: &RunReport) -> JsonValue {
    let mut stalls = JsonValue::object();
    stalls
        .push("l2_hit", JsonValue::UInt(r.stalls.l2_hit))
        .push("conflict", JsonValue::UInt(r.stalls.conflict))
        .push("capacity", JsonValue::UInt(r.stalls.capacity))
        .push("true_sharing", JsonValue::UInt(r.stalls.true_sharing))
        .push("false_sharing", JsonValue::UInt(r.stalls.false_sharing))
        .push("cold", JsonValue::UInt(r.stalls.cold))
        .push("prefetch", JsonValue::UInt(r.stalls.prefetch))
        .push("upgrade", JsonValue::UInt(r.stalls.upgrade))
        .push("total", JsonValue::UInt(r.stalls.total()));

    let mut overheads = JsonValue::object();
    overheads
        .push("kernel", JsonValue::UInt(r.overheads.kernel))
        .push(
            "load_imbalance",
            JsonValue::UInt(r.overheads.load_imbalance),
        )
        .push("sequential", JsonValue::UInt(r.overheads.sequential))
        .push("suppressed", JsonValue::UInt(r.overheads.suppressed))
        .push(
            "synchronization",
            JsonValue::UInt(r.overheads.synchronization),
        )
        .push("total", JsonValue::UInt(r.overheads.total()));

    let mut bus = JsonValue::object();
    bus.push("data_cycles", JsonValue::UInt(r.bus.data_cycles))
        .push("writeback_cycles", JsonValue::UInt(r.bus.writeback_cycles))
        .push("upgrade_cycles", JsonValue::UInt(r.bus.upgrade_cycles))
        .push("utilization", JsonValue::Float(r.bus.utilization));

    let mut faults = JsonValue::object();
    faults
        .push("faults", JsonValue::UInt(r.fault_stats.faults))
        .push("preferred", JsonValue::UInt(r.fault_stats.preferred))
        .push("honored", JsonValue::UInt(r.fault_stats.honored))
        .push("fallback", JsonValue::UInt(r.fault_stats.fallback))
        .push("honor_rate", JsonValue::Float(r.fault_stats.honor_rate()));

    let agg = r.mem_stats.aggregate();
    let mut l2_misses = JsonValue::object();
    for class in [
        MissClass::Cold,
        MissClass::Capacity,
        MissClass::Conflict,
        MissClass::TrueSharing,
        MissClass::FalseSharing,
    ] {
        l2_misses.push(&class.to_string(), JsonValue::UInt(agg.misses.get(class)));
    }
    l2_misses.push("total", JsonValue::UInt(agg.misses.total()));
    let mut memory = JsonValue::object();
    memory
        .push("data_refs", JsonValue::UInt(agg.data_refs))
        .push("ifetch_refs", JsonValue::UInt(agg.ifetch_refs))
        .push("l1_hits", JsonValue::UInt(agg.l1_hits))
        .push("l2_hits", JsonValue::UInt(agg.l2_hits))
        .push("prefetch_hits", JsonValue::UInt(agg.prefetch_hits))
        .push("l2_misses", l2_misses)
        .push("tlb_misses", JsonValue::UInt(agg.tlb_misses))
        .push("prefetches_issued", JsonValue::UInt(agg.prefetches_issued))
        .push(
            "prefetches_dropped",
            JsonValue::UInt(agg.prefetches_dropped_tlb + agg.prefetches_dropped_resident),
        );

    let mut root = JsonValue::object();
    root.push("name", JsonValue::Str(r.name.clone()))
        .push("policy", JsonValue::Str(r.policy.clone()))
        .push("num_cpus", JsonValue::UInt(r.num_cpus as u64))
        .push("instructions", JsonValue::UInt(r.instructions))
        .push("exec_cycles", JsonValue::UInt(r.exec_cycles))
        .push("elapsed_cycles", JsonValue::UInt(r.elapsed_cycles))
        .push("combined_cycles", JsonValue::UInt(r.combined_cycles))
        .push("mcpi", JsonValue::Float(r.mcpi()))
        .push("l2_miss_rate", JsonValue::Float(r.l2_miss_rate()))
        .push("simulated_refs", JsonValue::UInt(r.simulated_refs))
        .push("recolorings", JsonValue::UInt(r.recolorings))
        .push("stalls", stalls)
        .push("overheads", overheads)
        .push("bus", bus)
        .push("faults", faults)
        .push("memory", memory);
    root
}

/// Builds the full miss-attribution document for one run: run identity,
/// the report-side aggregate miss counts (the cross-check target — each
/// class's attributed total must equal the report's count exactly), and
/// the probe's `(array × color × cpu × class)` decomposition, histograms,
/// and occupancy series. `names` labels the arrays in region-id order.
pub fn attribution_to_json(
    probe: &cdpc_obs::AttributionProbe,
    names: &[String],
    r: &RunReport,
) -> JsonValue {
    let agg = r.mem_stats.aggregate();
    let mut aggregate = JsonValue::object();
    for class in [
        MissClass::Cold,
        MissClass::Capacity,
        MissClass::Conflict,
        MissClass::TrueSharing,
        MissClass::FalseSharing,
    ] {
        aggregate.push(
            cdpc_obs::MissClassId::from(class).label(),
            JsonValue::UInt(agg.misses.get(class)),
        );
    }
    aggregate.push("total", JsonValue::UInt(agg.misses.total()));

    let mut root = JsonValue::object();
    root.push("workload", JsonValue::Str(r.name.clone()))
        .push("policy", JsonValue::Str(r.policy.clone()))
        .push("num_cpus", JsonValue::UInt(r.num_cpus as u64))
        .push("elapsed_cycles", JsonValue::UInt(r.elapsed_cycles))
        .push("report_misses", aggregate)
        .push("attribution", probe.to_json(names));
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BusReport, OverheadBreakdown, StallBreakdown};
    use cdpc_memsim::MemStats;
    use cdpc_vm::FaultStats;

    fn report() -> RunReport {
        RunReport {
            name: "swim".into(),
            num_cpus: 8,
            policy: "cdpc".into(),
            instructions: 2_000,
            exec_cycles: 2_000,
            stalls: StallBreakdown {
                l2_hit: 10,
                conflict: 200,
                capacity: 30,
                ..Default::default()
            },
            overheads: OverheadBreakdown {
                kernel: 40,
                synchronization: 8,
                ..Default::default()
            },
            elapsed_cycles: 700,
            combined_cycles: 5_600,
            bus: BusReport {
                data_cycles: 100,
                writeback_cycles: 20,
                upgrade_cycles: 4,
                utilization: 0.125,
            },
            mem_stats: MemStats::default(),
            fault_stats: FaultStats {
                faults: 12,
                preferred: 10,
                honored: 10,
                fallback: 0,
            },
            recolorings: 0,
            simulated_refs: 1_234,
        }
    }

    #[test]
    fn json_round_trips_headline_numbers() {
        let json = report_to_json(&report());
        let text = json.to_string_pretty();
        let back = JsonValue::parse(&text).expect("exporter output must parse");
        assert_eq!(back.get("name").and_then(|v| v.as_str()), Some("swim"));
        assert_eq!(back.get("num_cpus").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(
            back.get("simulated_refs").and_then(|v| v.as_u64()),
            Some(1_234)
        );
        let stalls = back.get("stalls").expect("stalls section");
        assert_eq!(stalls.get("conflict").and_then(|v| v.as_u64()), Some(200));
        assert_eq!(stalls.get("total").and_then(|v| v.as_u64()), Some(240));
        let mcpi = back.get("mcpi").and_then(|v| v.as_f64()).unwrap();
        assert!((mcpi - 0.12).abs() < 1e-12);
    }

    #[test]
    fn export_is_deterministic() {
        let a = report_to_json(&report()).to_string_compact();
        let b = report_to_json(&report()).to_string_compact();
        assert_eq!(a, b);
    }

    #[test]
    fn miss_classes_are_spelled_out() {
        let json = report_to_json(&report());
        let misses = json.get("memory").and_then(|m| m.get("l2_misses")).unwrap();
        for label in [
            "cold",
            "capacity",
            "conflict",
            "true-sharing",
            "false-sharing",
        ] {
            assert!(misses.get(label).is_some(), "missing class `{label}`");
        }
    }
}
