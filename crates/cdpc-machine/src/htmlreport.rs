//! Self-contained HTML rendering of a miss-attribution document.
//!
//! The report is generated from the JSON tree built by
//! [`attribution_to_json`](crate::attribution_to_json) — the JSON is the
//! single source of truth, so a report can be re-rendered later from a
//! saved `.json` file without re-running the simulation. The output is one
//! file with inline CSS and inline SVG: no scripts, no external fetches,
//! openable from a `file://` URL on an air-gapped machine.
//!
//! Sections: run header, miss totals by class, an `array × color` conflict
//! heatmap (SVG), the top offender table, the per-color occupancy timeline
//! (SVG), and histogram summaries.

use std::fmt::Write;

use cdpc_obs::JsonValue;

/// Escapes `&`, `<`, `>`, and `"` for safe embedding in HTML text and
/// attribute positions. Array names come from user programs, so they are
/// untrusted from the report's point of view.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn get_u64(v: Option<&JsonValue>) -> u64 {
    v.and_then(|v| v.as_u64()).unwrap_or(0)
}

fn u64_array(v: Option<&JsonValue>) -> Vec<u64> {
    v.and_then(|v| v.as_array())
        .map(|a| a.iter().map(|x| x.as_u64().unwrap_or(0)).collect())
        .unwrap_or_default()
}

/// Maps a density in `[0, 1]` to a white→red fill color.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // White (255,255,255) → deep red (165,15,21), perceptually adequate
    // for a conflict-density map without needing a gradient library.
    let r = 255.0 - t * (255.0 - 165.0);
    let g = 255.0 - t * (255.0 - 15.0);
    let b = 255.0 - t * (255.0 - 21.0);
    format!("rgb({},{},{})", r as u32, g as u32, b as u32)
}

/// Renders the `array × color` conflict heatmap as inline SVG.
fn heatmap_svg(rows: &[(String, Vec<u64>)], colors: usize) -> String {
    let cell = 14usize;
    let label_w = 130usize;
    let top_h = 18usize;
    let width = label_w + colors * cell + 8;
    let height = top_h + rows.len() * cell + 24;
    let max = rows
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1) as f64;

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" \
         font-family=\"monospace\" font-size=\"10\">"
    );
    for (i, (name, by_color)) in rows.iter().enumerate() {
        let y = top_h + i * cell;
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            label_w - 6,
            y + cell - 3,
            escape(name)
        );
        for (c, &n) in by_color.iter().enumerate() {
            let x = label_w + c * cell;
            let fill = heat_color((n as f64 / max).sqrt()); // sqrt: lift the mid-range
            let _ = write!(
                s,
                "<rect x=\"{x}\" y=\"{y}\" width=\"{cell}\" height=\"{cell}\" \
                 fill=\"{fill}\" stroke=\"#ddd\" stroke-width=\"0.5\">\
                 <title>{} · color {c}: {n} conflict misses</title></rect>",
                escape(name)
            );
        }
    }
    // Color-axis ticks every 8 colors.
    for c in (0..colors).step_by(8) {
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{c}</text>",
            label_w + c * cell + cell / 2,
            top_h + rows.len() * cell + 14
        );
    }
    let _ = write!(
        s,
        "<text x=\"{label_w}\" y=\"12\">page color → (max cell = {} misses)</text></svg>",
        max as u64
    );
    s
}

/// Renders the occupancy timeline (total mapped pages per snapshot, plus
/// the most-loaded color) as inline SVG.
fn occupancy_svg(cycles: &[u64], per_snapshot: &[Vec<u64>]) -> String {
    let width = 640usize;
    let height = 160usize;
    let pad = 40usize;
    if cycles.len() < 2 || per_snapshot.len() != cycles.len() {
        return "<p>(occupancy timeline needs at least two snapshots)</p>".into();
    }
    let totals: Vec<u64> = per_snapshot.iter().map(|v| v.iter().sum()).collect();
    let maxes: Vec<u64> = per_snapshot
        .iter()
        .map(|v| v.iter().copied().max().unwrap_or(0))
        .collect();
    let x_max = (*cycles.last().unwrap()).max(1) as f64;
    let y_max = totals.iter().copied().max().unwrap_or(0).max(1) as f64;
    let px = |cyc: u64| pad as f64 + (width - 2 * pad) as f64 * cyc as f64 / x_max;
    let py = |v: u64| (height - pad) as f64 - (height - 2 * pad) as f64 * v as f64 / y_max;
    let poly = |vals: &[u64]| -> String {
        cycles
            .iter()
            .zip(vals)
            .map(|(&c, &v)| format!("{:.1},{:.1}", px(c), py(v)))
            .collect::<Vec<_>>()
            .join(" ")
    };

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" \
         font-family=\"monospace\" font-size=\"10\">\
         <line x1=\"{pad}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"#888\"/>\
         <line x1=\"{pad}\" y1=\"{pad}\" x2=\"{pad}\" y2=\"{y0}\" stroke=\"#888\"/>",
        y0 = height - pad,
        x1 = width - pad,
    );
    let _ = write!(
        s,
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#2166ac\" stroke-width=\"1.5\"/>",
        poly(&totals)
    );
    let _ = write!(
        s,
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#b2182b\" stroke-width=\"1.5\" \
         stroke-dasharray=\"4 2\"/>",
        poly(&maxes)
    );
    let _ = write!(
        s,
        "<text x=\"{pad}\" y=\"12\" fill=\"#2166ac\">total mapped pages (max {})</text>\
         <text x=\"{x}\" y=\"12\" fill=\"#b2182b\">busiest color (dashed)</text>\
         <text x=\"{pad}\" y=\"{yb}\">cycle 0</text>\
         <text x=\"{x1}\" y=\"{yb}\" text-anchor=\"end\">cycle {last}</text></svg>",
        y_max as u64,
        x = pad + 280,
        yb = height - pad + 14,
        x1 = width - pad,
        last = cycles.last().unwrap(),
    );
    s
}

/// Renders a miss-attribution JSON document as a self-contained HTML page.
///
/// Accepts either the full document from
/// [`attribution_to_json`](crate::attribution_to_json) or just its
/// `attribution` subtree (the header falls back to `?` for missing run
/// identity fields).
pub fn attribution_to_html(doc: &JsonValue) -> String {
    let attrib = doc.get("attribution").unwrap_or(doc);
    let workload = doc.get("workload").and_then(|v| v.as_str()).unwrap_or("?");
    let policy = doc.get("policy").and_then(|v| v.as_str()).unwrap_or("?");
    let cpus = get_u64(doc.get("num_cpus"));
    let elapsed = get_u64(doc.get("elapsed_cycles"));

    let mut out = String::with_capacity(16 << 10);
    let _ = write!(
        out,
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>Miss attribution — {w}</title><style>\
         body{{font-family:system-ui,sans-serif;margin:2em auto;max-width:900px;color:#222}}\
         h1{{font-size:1.4em}}h2{{font-size:1.1em;margin-top:1.6em;\
         border-bottom:1px solid #ddd;padding-bottom:.2em}}\
         table{{border-collapse:collapse;font-size:.9em}}\
         th,td{{border:1px solid #ccc;padding:.25em .6em;text-align:right}}\
         th{{background:#f3f3f3}}td.l,th.l{{text-align:left}}\
         .meta{{color:#555;font-size:.9em}}\
         </style></head><body>",
        w = escape(workload)
    );
    let _ = write!(
        out,
        "<h1>Miss attribution: {}</h1>\
         <p class=\"meta\">policy {} · {} CPUs · {} elapsed cycles</p>",
        escape(workload),
        escape(policy),
        cpus,
        elapsed
    );

    // ---- totals by class -------------------------------------------------
    let _ = write!(out, "<h2>Miss totals by class</h2>");
    if let Some(totals) = attrib.get("totals") {
        let _ = write!(
            out,
            "<table><tr><th class=\"l\">class</th><th>attributed</th><th>report</th></tr>"
        );
        let report_misses = doc.get("report_misses");
        if let Some(JsonValue::Object(pairs)) = totals.get("by_class") {
            for (class, v) in pairs {
                let rep = report_misses
                    .and_then(|r| r.get(class))
                    .and_then(|v| v.as_u64());
                let _ = write!(
                    out,
                    "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td></tr>",
                    escape(class),
                    v.as_u64().unwrap_or(0),
                    rep.map_or("—".into(), |n| n.to_string())
                );
            }
        }
        let _ = write!(
            out,
            "<tr><th class=\"l\">total</th><th>{}</th><th>{}</th></tr></table>",
            get_u64(totals.get("misses")),
            report_misses
                .map(|r| get_u64(r.get("total")).to_string())
                .unwrap_or_else(|| "—".into())
        );
    }

    // ---- heatmap ---------------------------------------------------------
    let rows: Vec<(String, Vec<u64>)> = attrib
        .get("arrays")
        .and_then(|v| v.as_array())
        .map(|arrays| {
            arrays
                .iter()
                .map(|a| {
                    (
                        a.get("name")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string(),
                        u64_array(a.get("conflict_by_color")),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let colors = get_u64(attrib.get("dims").and_then(|d| d.get("colors"))) as usize;
    let _ = write!(
        out,
        "<h2>Conflict density: array × page color</h2>{}",
        heatmap_svg(&rows, colors.max(1))
    );

    // ---- top offenders ---------------------------------------------------
    let mut cells: Vec<(&str, usize, u64)> = Vec::new();
    let mut conflict_total = 0u64;
    for (name, by_color) in &rows {
        for (c, &n) in by_color.iter().enumerate() {
            conflict_total += n;
            if n > 0 {
                cells.push((name, c, n));
            }
        }
    }
    cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(&b.1)));
    let _ = write!(out, "<h2>Top conflict offenders</h2>");
    if cells.is_empty() {
        let _ = write!(out, "<p>No conflict misses attributed.</p>");
    } else {
        let _ = write!(
            out,
            "<table><tr><th class=\"l\">array</th><th>color</th>\
             <th>conflict misses</th><th>share</th></tr>"
        );
        for (name, color, n) in cells.iter().take(16) {
            let _ = write!(
                out,
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{:.1}%</td></tr>",
                escape(name),
                color,
                n,
                100.0 * *n as f64 / conflict_total.max(1) as f64
            );
        }
        let _ = write!(out, "</table>");
    }

    // ---- occupancy timeline ----------------------------------------------
    if let Some(occ) = attrib.get("colors").and_then(|c| c.get("occupancy")) {
        let cycles = u64_array(occ.get("cycles"));
        let per_snapshot: Vec<Vec<u64>> = occ
            .get("mapped_pages")
            .and_then(|v| v.as_array())
            .map(|snaps| snaps.iter().map(|s| u64_array(Some(s))).collect())
            .unwrap_or_default();
        let _ = write!(
            out,
            "<h2>Page-color occupancy over time</h2>{}",
            occupancy_svg(&cycles, &per_snapshot)
        );
    }

    // ---- histograms ------------------------------------------------------
    if let Some(hists) = attrib.get("histograms") {
        let _ = write!(
            out,
            "<h2>Latency and batching histograms</h2>\
             <table><tr><th class=\"l\">histogram</th><th>n</th><th>mean</th>\
             <th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>"
        );
        for (key, label) in [
            ("miss_latency_cycles", "miss latency (cycles)"),
            ("inter_miss_cycles", "inter-miss gap (cycles)"),
            ("batch_ops", "run-loop batch (ops)"),
        ] {
            if let Some(h) = hists.get(key) {
                let _ = write!(
                    out,
                    "<tr><td class=\"l\">{label}</td><td>{}</td><td>{:.1}</td>\
                     <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    get_u64(h.get("count")),
                    h.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    get_u64(h.get("p50")),
                    get_u64(h.get("p90")),
                    get_u64(h.get("p99")),
                    get_u64(h.get("max")),
                );
            }
        }
        let _ = write!(out, "</table>");
    }

    let _ = write!(out, "</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_hostile_names() {
        assert_eq!(escape("<A&\"B\">"), "&lt;A&amp;&quot;B&quot;&gt;");
    }

    #[test]
    fn renders_minimal_doc_without_panicking() {
        let doc = JsonValue::parse(
            r#"{"workload":"w","policy":"cdpc","num_cpus":2,"elapsed_cycles":10,
                "attribution":{"dims":{"arrays":1,"colors":4,"cpus":2,"classes":5},
                "totals":{"misses":3,"by_class":{"cold":3}},
                "arrays":[{"name":"<A>","misses":3,"conflict_by_color":[0,2,1,0]}],
                "histograms":{"miss_latency_cycles":{"count":3,"mean":40.0,
                "p50":40,"p90":40,"p99":40,"max":40}},
                "colors":{"occupancy":{"cycles":[0,10],"mapped_pages":[[0,0,0,0],[1,2,0,1]]}}}}"#,
        )
        .unwrap();
        let html = attribution_to_html(&doc);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>"));
        // Name is escaped everywhere it appears.
        assert!(!html.contains("<A>"));
        assert!(html.contains("&lt;A&gt;"));
        // All three SVG/section types are present.
        assert!(html.contains("<svg"));
        assert!(html.contains("Top conflict offenders"));
        assert!(html.contains("occupancy"));
        // Zero external references.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), "rgb(255,255,255)");
        assert_eq!(heat_color(1.0), "rgb(165,15,21)");
        assert_eq!(heat_color(-1.0), "rgb(255,255,255)");
    }
}
