//! Parallel sweep executor: fan a batch of independent simulation jobs
//! across OS threads with deterministic, input-ordered result collection.
//!
//! The paper's evaluation is a cross-product — policies × workloads × CPU
//! counts — and every cell is a *pure function* of its
//! `(CompiledProgram, RunConfig)` pair: the simulator shares no mutable
//! state between runs and uses no ambient randomness. That makes the sweep
//! embarrassingly parallel, and it is the level at which this reproduction
//! parallelizes (the simulated CPUs inside one run are cycle-interleaved
//! and stay sequential).
//!
//! Work is distributed by an atomic cursor over the job list, so long jobs
//! do not convoy behind short ones; results are stitched back in input
//! order, which keeps every report and rendered table **bit-identical**
//! regardless of thread count — `--threads 1` and `--threads N` must
//! produce the same bytes.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cdpc_compiler::CompiledProgram;
use cdpc_obs::SweepCacheStats;

use crate::memo::{run_key, ResultCache, RunKey};
use crate::report::RunReport;
use crate::run::{run, run_from_checkpoint, warm_checkpoint, RunConfig};

/// One cell of a sweep: a compiled program and the machine configuration
/// to run it under.
///
/// The program is held by `Arc` so one compilation can be shared across
/// every sweep point that runs it (the cross-product re-runs each
/// workload under many policies and machine shapes): cloning a job costs
/// a refcount bump, not a deep copy of the reference streams.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The program to simulate (shared across sweep points).
    pub compiled: Arc<CompiledProgram>,
    /// The machine/policy configuration.
    pub cfg: RunConfig,
}

impl SweepJob {
    /// Bundles a compiled program with a run configuration. Accepts either
    /// an owned [`CompiledProgram`] or an already-shared `Arc`.
    pub fn new(compiled: impl Into<Arc<CompiledProgram>>, cfg: RunConfig) -> Self {
        Self {
            compiled: compiled.into(),
            cfg,
        }
    }
}

/// The host's available parallelism (the default for `--threads`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every job on up to `threads` worker threads and returns
/// the results **in input order**.
///
/// `threads <= 1` (or a single job) degenerates to a plain sequential map
/// on the calling thread — no threads are spawned, so `--threads 1` is
/// byte-for-byte the old sequential behaviour. Worker threads pull jobs
/// from an atomic cursor (dynamic scheduling) and tag each result with its
/// input index; the tags, not completion order, decide placement.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn sweep_map<J, T, F>(jobs: &[J], threads: usize, f: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.len());
    if threads <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("atomic cursor covers every job"))
        .collect()
}

/// Runs a batch of simulation jobs on up to `threads` threads, returning
/// one [`RunReport`] per job in input order.
///
/// `threads` is the *job-level* budget; callers combining job fan-out
/// with intra-run sim-threads should first divide through
/// [`thread_budget`] so the two levels cannot oversubscribe the host.
pub fn run_sweep(jobs: &[SweepJob], threads: usize) -> Vec<RunReport> {
    sweep_map(jobs, threads, |job| run(&job.compiled, &job.cfg))
}

/// [`run_sweep`] with content-addressed memoization layered on top,
/// returning the reports (input-ordered, bit-identical to [`run_sweep`])
/// plus the [`SweepCacheStats`] describing how each job was satisfied.
///
/// Three mechanisms remove redundant simulation, applied in order:
///
/// 1. **In-sweep dedup** — jobs with equal full [`RunKey`]s are the same
///    pure function call; only the first (the *representative*) resolves,
///    the rest reuse its report.
/// 2. **Persistent cache** — if `cache` is `Some`, each representative
///    first tries [`ResultCache::load`]; hits skip simulation entirely and
///    misses [`ResultCache::store`] their fresh report afterwards.
/// 3. **Checkpoint forking** — representatives that must simulate are
///    grouped by warm key (equal program content and config, differing
///    only in report-visible metadata); each multi-member group executes
///    its warm-up pass once via [`warm_checkpoint`] and replays only the
///    measured pass per member via [`run_from_checkpoint`].
///
/// Every path is bit-identical to a fresh [`run`]: dedup and forking are
/// keyed on content fingerprints over everything the simulation can
/// observe, and the cache codec is lossless. With `cache = None`,
/// simulated jobs count as `bypassed` rather than `misses`.
///
/// Parallelism is per warm-group (a group's members share mutable-free
/// checkpoint state, so the group runs on one worker); singleton groups
/// degrade to plain [`run`] with no checkpoint overhead.
pub fn run_sweep_memo(
    jobs: &[SweepJob],
    threads: usize,
    cache: Option<&ResultCache>,
) -> (Vec<RunReport>, SweepCacheStats) {
    let mut stats = SweepCacheStats::new();
    if jobs.is_empty() {
        return (Vec::new(), stats);
    }
    let keys: Vec<RunKey> = jobs.iter().map(|j| run_key(&j.compiled, &j.cfg)).collect();

    // In-sweep dedup: the first job with each full key represents all of
    // them.
    let mut rep_of: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut first_with: HashMap<u128, usize> = HashMap::new();
    for (i, key) in keys.iter().enumerate() {
        let rep = *first_with.entry(key.full.0).or_insert(i);
        rep_of.push(rep);
        if rep != i {
            stats.deduped += 1;
        }
    }

    // Probe the persistent cache for each representative.
    let mut slots: Vec<Option<RunReport>> = vec![None; jobs.len()];
    let mut to_run: Vec<usize> = Vec::new();
    for i in 0..jobs.len() {
        if rep_of[i] != i {
            continue;
        }
        if let Some(cache) = cache {
            if let Some(report) = cache.load(&keys[i]) {
                stats.hits += 1;
                slots[i] = Some(report);
                continue;
            }
        }
        to_run.push(i);
    }

    // Group the representatives that must simulate by warm key; a group
    // shares one warm-up pass through a checkpoint.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: HashMap<u128, usize> = HashMap::new();
    for &i in &to_run {
        match group_of.entry(keys[i].warm.0) {
            Entry::Occupied(e) => groups[*e.get()].push(i),
            Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    for g in &groups {
        if cache.is_some() {
            stats.misses += g.len() as u64;
        } else {
            stats.bypassed += g.len() as u64;
        }
        // The first member simulates the group's warm-up (inside
        // warm_checkpoint); only the rest skip it.
        stats.forked += (g.len() as u64).saturating_sub(1);
    }

    // Simulate: one warm-up per group, one measured pass per member.
    // Parallelism is across groups; results land by input index, so the
    // output order (and bytes) match the unmemoized sweep exactly.
    let ran: Vec<Vec<(usize, RunReport)>> = sweep_map(&groups, threads, |group| {
        let first = &jobs[group[0]];
        if group.len() == 1 {
            return vec![(group[0], run(&first.compiled, &first.cfg))];
        }
        let ckpt = warm_checkpoint(&first.compiled, &first.cfg);
        group
            .iter()
            .map(|&i| {
                (
                    i,
                    run_from_checkpoint(&jobs[i].compiled, &jobs[i].cfg, &ckpt),
                )
            })
            .collect()
    });
    for (i, report) in ran.into_iter().flatten() {
        if let Some(cache) = cache {
            // A failed store costs a future cache miss, nothing more.
            let _ = cache.store(&keys[i], &report);
        }
        slots[i] = Some(report);
    }

    let results = (0..jobs.len())
        .map(|i| {
            slots[rep_of[i]]
                .clone()
                .expect("every representative was resolved above")
        })
        .collect();
    (results, stats)
}

/// Combines the two levels of host-thread parallelism — job fan-out
/// (`--threads`) and the intra-run engine (`--sim-threads`) — into the
/// job-level thread budget: `max(1, threads / sim_threads)`.
///
/// Precedence is **sim-threads first**: each run keeps its full
/// `sim_threads` pool and the job fan-out shrinks to compensate, so
/// `--threads 8 --sim-threads 4` runs 2 jobs at a time with 4 engine
/// threads each (8 host threads total, never 32). `sim_threads <= 1`
/// leaves the budget untouched.
pub fn thread_budget(threads: usize, sim_threads: usize) -> usize {
    (threads / sim_threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_map_preserves_input_order() {
        let jobs: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 4, 8] {
            let out = sweep_map(&jobs, threads, |&j| j * j);
            let want: Vec<u64> = jobs.iter().map(|&j| j * j).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn sweep_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(sweep_map(&empty, 4, |&j: &u64| j).is_empty());
        assert_eq!(sweep_map(&[7u64], 4, |&j| j + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_budget_divides_sim_threads_first() {
        assert_eq!(thread_budget(8, 4), 2);
        assert_eq!(thread_budget(8, 1), 8);
        assert_eq!(thread_budget(8, 0), 8);
        assert_eq!(thread_budget(4, 8), 1); // oversubscribed: one job at a time
        assert_eq!(thread_budget(1, 1), 1);
        assert_eq!(thread_budget(0, 4), 1);
    }
}
