//! Parallel sweep executor: fan a batch of independent simulation jobs
//! across OS threads with deterministic, input-ordered result collection.
//!
//! The paper's evaluation is a cross-product — policies × workloads × CPU
//! counts — and every cell is a *pure function* of its
//! `(CompiledProgram, RunConfig)` pair: the simulator shares no mutable
//! state between runs and uses no ambient randomness. That makes the sweep
//! embarrassingly parallel, and it is the level at which this reproduction
//! parallelizes (the simulated CPUs inside one run are cycle-interleaved
//! and stay sequential).
//!
//! Work is distributed by an atomic cursor over the job list, so long jobs
//! do not convoy behind short ones; results are stitched back in input
//! order, which keeps every report and rendered table **bit-identical**
//! regardless of thread count — `--threads 1` and `--threads N` must
//! produce the same bytes.

use std::sync::atomic::{AtomicUsize, Ordering};

use cdpc_compiler::CompiledProgram;

use crate::report::RunReport;
use crate::run::{run, RunConfig};

/// One cell of a sweep: a compiled program and the machine configuration
/// to run it under.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The program to simulate.
    pub compiled: CompiledProgram,
    /// The machine/policy configuration.
    pub cfg: RunConfig,
}

impl SweepJob {
    /// Bundles a compiled program with a run configuration.
    pub fn new(compiled: CompiledProgram, cfg: RunConfig) -> Self {
        Self { compiled, cfg }
    }
}

/// The host's available parallelism (the default for `--threads`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every job on up to `threads` worker threads and returns
/// the results **in input order**.
///
/// `threads <= 1` (or a single job) degenerates to a plain sequential map
/// on the calling thread — no threads are spawned, so `--threads 1` is
/// byte-for-byte the old sequential behaviour. Worker threads pull jobs
/// from an atomic cursor (dynamic scheduling) and tag each result with its
/// input index; the tags, not completion order, decide placement.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn sweep_map<J, T, F>(jobs: &[J], threads: usize, f: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.len());
    if threads <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("atomic cursor covers every job"))
        .collect()
}

/// Runs a batch of simulation jobs on up to `threads` threads, returning
/// one [`RunReport`] per job in input order.
///
/// `threads` is the *job-level* budget; callers combining job fan-out
/// with intra-run sim-threads should first divide through
/// [`thread_budget`] so the two levels cannot oversubscribe the host.
pub fn run_sweep(jobs: &[SweepJob], threads: usize) -> Vec<RunReport> {
    sweep_map(jobs, threads, |job| run(&job.compiled, &job.cfg))
}

/// Combines the two levels of host-thread parallelism — job fan-out
/// (`--threads`) and the intra-run engine (`--sim-threads`) — into the
/// job-level thread budget: `max(1, threads / sim_threads)`.
///
/// Precedence is **sim-threads first**: each run keeps its full
/// `sim_threads` pool and the job fan-out shrinks to compensate, so
/// `--threads 8 --sim-threads 4` runs 2 jobs at a time with 4 engine
/// threads each (8 host threads total, never 32). `sim_threads <= 1`
/// leaves the budget untouched.
pub fn thread_budget(threads: usize, sim_threads: usize) -> usize {
    (threads / sim_threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_map_preserves_input_order() {
        let jobs: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 4, 8] {
            let out = sweep_map(&jobs, threads, |&j| j * j);
            let want: Vec<u64> = jobs.iter().map(|&j| j * j).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn sweep_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(sweep_map(&empty, 4, |&j: &u64| j).is_empty());
        assert_eq!(sweep_map(&[7u64], 4, |&j| j + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_budget_divides_sim_threads_first() {
        assert_eq!(thread_budget(8, 4), 2);
        assert_eq!(thread_budget(8, 1), 8);
        assert_eq!(thread_budget(8, 0), 8);
        assert_eq!(thread_budget(4, 8), 1); // oversubscribed: one job at a time
        assert_eq!(thread_budget(1, 1), 1);
        assert_eq!(thread_budget(0, 4), 1);
    }
}
