//! Content-addressed memoization of simulation runs.
//!
//! A simulation is a pure function: `(CompiledProgram, RunConfig)` fully
//! determines the [`RunReport`], bit for bit (the determinism and engine
//! differential suites prove this across schedulers, thread counts, and
//! probe families). That purity makes runs memoizable at two levels:
//!
//! 1. **In-process** — [`run_key`] canonicalizes the config (execution
//!    strategy knobs that provably do not change results are normalized
//!    away) and fingerprints it together with the program, so the sweep
//!    executor can deduplicate identical jobs and group jobs that share a
//!    warm-up prefix (see `sweep::run_sweep_memo`).
//! 2. **Persistent** — [`ResultCache`] stores reports on disk keyed by the
//!    same fingerprint plus [`CACHE_FORMAT_VERSION`], so a repeated sweep
//!    (`fig6 --cache ...`) reloads unchanged points instead of
//!    re-simulating them.
//!
//! The on-disk codec ([`report_to_cache_json`]/[`report_from_cache_json`])
//! is **lossless**, unlike the human-facing `export::report_to_json`: every
//! per-CPU counter is kept and the one float in a report (bus utilization)
//! is stored as its IEEE-754 bit pattern, so a cache round trip satisfies
//! `RunReport == RunReport` exactly and cached sweeps stay byte-identical
//! to fresh ones. Entries that fail *any* structural, version, or key
//! check load as `None` — a poisoned or stale cache degrades to a
//! recompute, never to a wrong result or a crash.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cdpc_compiler::CompiledProgram;
use cdpc_core::fingerprint::{Fingerprint, FpHasher};
use cdpc_core::hints::HintOptions;
use cdpc_memsim::{CpuStats, MemStats, MissClass};
use cdpc_obs::JsonValue;
use cdpc_vm::FaultStats;

use crate::report::{BusReport, OverheadBreakdown, RunReport, StallBreakdown};
use crate::run::{PolicyKind, RunConfig, SchedulerKind};

/// Version of the on-disk cache entry format **and** of the semantics
/// behind the fingerprint. Bump it when the codec layout, the fingerprint
/// construction, the canonicalization rules, or the simulator's observable
/// behavior changes — entries under other versions live in sibling
/// directories and are simply never read.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The content identity of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Identity of the warmed machine state: program *content* (name
    /// excluded) plus canonical config. Jobs with equal `warm` keys build
    /// identical post-warm-up simulator state and can fork from one shared
    /// checkpoint.
    pub warm: Fingerprint,
    /// Identity of the full result: `warm` plus report-visible metadata
    /// (the program name, which labels the report but cannot influence the
    /// simulation). This is the persistent cache's address.
    pub full: Fingerprint,
}

impl RunKey {
    /// The cache-file stem (32 hex chars of the full key).
    pub fn hex(&self) -> String {
        self.full.to_hex()
    }
}

/// The config with every knob that provably cannot change the report
/// normalized to its default, so two configs that must produce identical
/// results fingerprint identically.
///
/// Safe to normalize because each is covered by a differential proof or by
/// construction:
/// * `scheduler`, `translation_cache` — `tests/determinism.rs` proves both
///   schedulers and both translation paths bit-identical.
/// * `sim_threads` — `tests/engine_differential.rs` proves the epoch
///   engine bit-identical to serial.
/// * `validate_coherence` — an audit that panics or does nothing; it never
///   alters state.
/// * `race_window`/`seed` — consumed only by [`PolicyKind::BinHopping`] on
///   multiprocessors (`build_policy`); elsewhere the RNG is never built.
/// * `hint_options` — consumed only when hints are generated
///   ([`PolicyKind::Cdpc`]/[`PolicyKind::CdpcTouch`]).
/// * `recolor_threshold` — consumed only by
///   [`PolicyKind::DynamicRecolor`].
fn canonical_cfg(cfg: &RunConfig) -> RunConfig {
    let mut c = cfg.clone();
    c.scheduler = SchedulerKind::MinClockBatch;
    c.translation_cache = true;
    c.sim_threads = 1;
    c.validate_coherence = false;
    if c.policy != PolicyKind::BinHopping || c.mem.num_cpus <= 1 {
        c.race_window = 0;
    }
    if c.race_window == 0 {
        c.seed = 0;
    }
    if !matches!(c.policy, PolicyKind::Cdpc | PolicyKind::CdpcTouch) {
        c.hint_options = HintOptions::FULL;
    }
    if c.policy != PolicyKind::DynamicRecolor {
        c.recolor_threshold = 0;
    }
    c
}

/// Computes the [`RunKey`] for one `(program, config)` sweep point.
///
/// The walk hashes the `Debug` rendering of the canonical config and of
/// every program field except `name` — derived `Debug` is a deterministic,
/// complete rendering of the value, which makes it the cheapest exhaustive
/// content walk that needs no per-field maintenance when structs grow (a
/// new field changes the rendering and therefore, correctly, the key).
pub fn run_key(compiled: &CompiledProgram, cfg: &RunConfig) -> RunKey {
    let mut h = FpHasher::new();
    let canon = canonical_cfg(cfg);
    write!(h, "{canon:?}").expect("fingerprint writer is infallible");
    h.write_u64(compiled.num_cpus as u64);
    h.write_u64(compiled.data_bytes);
    write!(
        h,
        "{:?}{:?}{:?}{:?}",
        compiled.layout, compiled.arrays, compiled.summary, compiled.phases
    )
    .expect("fingerprint writer is infallible");
    let warm = h.finish();
    // The name rides on top: it labels the report (`RunReport::name`) but
    // cannot influence the simulation, so it is excluded from the warm key
    // and folded into the full key only.
    h.write_str_framed(&compiled.name);
    let full = h.finish();
    RunKey { warm, full }
}

// ---------------------------------------------------------------------------
// Lossless report codec
// ---------------------------------------------------------------------------

/// Stall categories in codec order. An array, not named fields, so the
/// entry stays compact; the order is part of the format and never changes
/// within a [`CACHE_FORMAT_VERSION`].
const MISS_CLASSES: [MissClass; 5] = [
    MissClass::Cold,
    MissClass::Capacity,
    MissClass::Conflict,
    MissClass::TrueSharing,
    MissClass::FalseSharing,
];

/// Values per CPU in the flat `cpus` rows: 5 scalar hit/ref counters,
/// 5 miss counts, 1 + 5 stall counters, and 9 remaining scalars.
const CPU_ROW_LEN: usize = 25;

fn u64s(vals: impl IntoIterator<Item = u64>) -> JsonValue {
    JsonValue::Array(vals.into_iter().map(JsonValue::UInt).collect())
}

fn cpu_row(c: &CpuStats) -> JsonValue {
    let mut row = Vec::with_capacity(CPU_ROW_LEN);
    row.extend([
        c.data_refs,
        c.ifetch_refs,
        c.l1_hits,
        c.l2_hits,
        c.prefetch_hits,
    ]);
    row.extend(MISS_CLASSES.iter().map(|&m| c.misses.get(m)));
    row.push(c.l2_hit_stall_cycles);
    row.extend(MISS_CLASSES.iter().map(|&m| c.miss_stall_cycles.get(m)));
    row.extend([
        c.prefetch_wait_cycles,
        c.prefetch_slot_stall_cycles,
        c.upgrade_stall_cycles,
        c.tlb_misses,
        c.tlb_stall_cycles,
        c.prefetches_issued,
        c.prefetches_dropped_tlb,
        c.prefetches_dropped_resident,
        c.victim_hits,
    ]);
    debug_assert_eq!(row.len(), CPU_ROW_LEN);
    u64s(row)
}

fn cpu_from_row(row: &JsonValue) -> Option<CpuStats> {
    let vals: Vec<u64> = row
        .as_array()?
        .iter()
        .map(|v| v.as_u64())
        .collect::<Option<_>>()?;
    if vals.len() != CPU_ROW_LEN {
        return None;
    }
    let mut c = CpuStats {
        data_refs: vals[0],
        ifetch_refs: vals[1],
        l1_hits: vals[2],
        l2_hits: vals[3],
        prefetch_hits: vals[4],
        l2_hit_stall_cycles: vals[10],
        prefetch_wait_cycles: vals[16],
        prefetch_slot_stall_cycles: vals[17],
        upgrade_stall_cycles: vals[18],
        tlb_misses: vals[19],
        tlb_stall_cycles: vals[20],
        prefetches_issued: vals[21],
        prefetches_dropped_tlb: vals[22],
        prefetches_dropped_resident: vals[23],
        victim_hits: vals[24],
        ..CpuStats::default()
    };
    for (i, &m) in MISS_CLASSES.iter().enumerate() {
        c.misses.add(m, vals[5 + i]);
        c.miss_stall_cycles.add(m, vals[11 + i]);
    }
    Some(c)
}

/// Serializes a report without losing a single bit.
///
/// `bus.utilization` — the report's only float — travels as
/// `f64::to_bits`, so equality after a round trip is exact, not
/// approximate. See [`report_from_cache_json`].
pub fn report_to_cache_json(report: &RunReport) -> JsonValue {
    let mut bus = JsonValue::object();
    bus.push("data_cycles", JsonValue::UInt(report.bus.data_cycles));
    bus.push(
        "writeback_cycles",
        JsonValue::UInt(report.bus.writeback_cycles),
    );
    bus.push("upgrade_cycles", JsonValue::UInt(report.bus.upgrade_cycles));
    bus.push(
        "utilization_bits",
        JsonValue::UInt(report.bus.utilization.to_bits()),
    );

    let mut mem = JsonValue::object();
    mem.push(
        "cpus",
        JsonValue::Array(report.mem_stats.cpus.iter().map(cpu_row).collect()),
    );
    let occ = report.mem_stats.bus_occupancy;
    mem.push("bus_occupancy", u64s([occ.0, occ.1, occ.2]));
    mem.push(
        "bus_transactions",
        JsonValue::UInt(report.mem_stats.bus_transactions),
    );

    let s = &report.stalls;
    let o = &report.overheads;
    let f = &report.fault_stats;
    let mut r = JsonValue::object();
    r.push("name", JsonValue::Str(report.name.clone()));
    r.push("num_cpus", JsonValue::UInt(report.num_cpus as u64));
    r.push("policy", JsonValue::Str(report.policy.clone()));
    r.push("instructions", JsonValue::UInt(report.instructions));
    r.push("exec_cycles", JsonValue::UInt(report.exec_cycles));
    r.push(
        "stalls",
        u64s([
            s.l2_hit,
            s.conflict,
            s.capacity,
            s.true_sharing,
            s.false_sharing,
            s.cold,
            s.prefetch,
            s.upgrade,
        ]),
    );
    r.push(
        "overheads",
        u64s([
            o.kernel,
            o.load_imbalance,
            o.sequential,
            o.suppressed,
            o.synchronization,
        ]),
    );
    r.push("elapsed_cycles", JsonValue::UInt(report.elapsed_cycles));
    r.push("combined_cycles", JsonValue::UInt(report.combined_cycles));
    r.push("bus", bus);
    r.push("mem_stats", mem);
    r.push(
        "fault_stats",
        u64s([f.faults, f.preferred, f.honored, f.fallback]),
    );
    r.push("recolorings", JsonValue::UInt(report.recolorings));
    r.push("simulated_refs", JsonValue::UInt(report.simulated_refs));
    r
}

fn u64_field(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn u64_array<const N: usize>(v: &JsonValue, key: &str) -> Option<[u64; N]> {
    let arr = v.get(key)?.as_array()?;
    if arr.len() != N {
        return None;
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item.as_u64()?;
    }
    Some(out)
}

/// Rebuilds a report serialized by [`report_to_cache_json`]. Returns
/// `None` on any structural mismatch — wrong types, missing fields, wrong
/// array lengths — so corrupted entries fall back to a recompute.
pub fn report_from_cache_json(v: &JsonValue) -> Option<RunReport> {
    let [l2_hit, conflict, capacity, true_sharing, false_sharing, cold, prefetch, upgrade] =
        u64_array::<8>(v, "stalls")?;
    let [kernel, load_imbalance, sequential, suppressed, synchronization] =
        u64_array::<5>(v, "overheads")?;
    let bus = v.get("bus")?;
    let mem = v.get("mem_stats")?;
    let cpus = mem
        .get("cpus")?
        .as_array()?
        .iter()
        .map(cpu_from_row)
        .collect::<Option<Vec<_>>>()?;
    let [occ_d, occ_w, occ_u] = u64_array::<3>(mem, "bus_occupancy")?;
    let [faults, preferred, honored, fallback] = u64_array::<4>(v, "fault_stats")?;
    Some(RunReport {
        name: v.get("name")?.as_str()?.to_string(),
        num_cpus: u64_field(v, "num_cpus")? as usize,
        policy: v.get("policy")?.as_str()?.to_string(),
        instructions: u64_field(v, "instructions")?,
        exec_cycles: u64_field(v, "exec_cycles")?,
        stalls: StallBreakdown {
            l2_hit,
            conflict,
            capacity,
            true_sharing,
            false_sharing,
            cold,
            prefetch,
            upgrade,
        },
        overheads: OverheadBreakdown {
            kernel,
            load_imbalance,
            sequential,
            suppressed,
            synchronization,
        },
        elapsed_cycles: u64_field(v, "elapsed_cycles")?,
        combined_cycles: u64_field(v, "combined_cycles")?,
        bus: BusReport {
            data_cycles: u64_field(bus, "data_cycles")?,
            writeback_cycles: u64_field(bus, "writeback_cycles")?,
            upgrade_cycles: u64_field(bus, "upgrade_cycles")?,
            utilization: f64::from_bits(u64_field(bus, "utilization_bits")?),
        },
        mem_stats: MemStats {
            cpus,
            bus_occupancy: (occ_d, occ_w, occ_u),
            bus_transactions: u64_field(mem, "bus_transactions")?,
        },
        fault_stats: FaultStats {
            faults,
            preferred,
            honored,
            fallback,
        },
        recolorings: u64_field(v, "recolorings")?,
        simulated_refs: u64_field(v, "simulated_refs")?,
    })
}

// ---------------------------------------------------------------------------
// Persistent cache
// ---------------------------------------------------------------------------

/// A content-addressed on-disk store of [`RunReport`]s.
///
/// Layout: `<root>/v<CACHE_FORMAT_VERSION>/<32-hex-full-key>.json`. The
/// version appears both in the path (so incompatible generations never
/// collide) and inside each entry (so a file moved across version
/// directories is still rejected). Writes go through a temp file plus
/// `rename`, so concurrent sweeps sharing one cache directory only ever
/// observe complete entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The version-scoped directory entries live in.
    pub fn versioned_dir(&self) -> PathBuf {
        self.root.join(format!("v{CACHE_FORMAT_VERSION}"))
    }

    fn entry_path(&self, key: &RunKey) -> PathBuf {
        self.versioned_dir().join(format!("{}.json", key.hex()))
    }

    /// Loads the report stored under `key`, or `None` if absent, corrupt,
    /// truncated, version-mismatched, or stored under a different key
    /// (i.e. a renamed or tampered file). Never panics on cache contents.
    pub fn load(&self, key: &RunKey) -> Option<RunReport> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let v = JsonValue::parse(&text).ok()?;
        if u64_field(&v, "format_version")? != u64::from(CACHE_FORMAT_VERSION) {
            return None;
        }
        if v.get("key")?.as_str()? != key.hex() {
            return None;
        }
        report_from_cache_json(v.get("report")?)
    }

    /// Stores `report` under `key`, atomically. IO failure is returned to
    /// the caller, who should treat the cache as best-effort (a sweep that
    /// cannot write its cache still produced correct results).
    pub fn store(&self, key: &RunKey, report: &RunReport) -> io::Result<()> {
        let dir = self.versioned_dir();
        fs::create_dir_all(&dir)?;
        let mut entry = JsonValue::object();
        entry.push(
            "format_version",
            JsonValue::UInt(CACHE_FORMAT_VERSION.into()),
        );
        entry.push("key", JsonValue::Str(key.hex()));
        entry.push("report", report_to_cache_json(report));
        let tmp = dir.join(format!(".{}.{}.tmp", key.hex(), std::process::id()));
        fs::write(&tmp, entry.to_string_compact())?;
        let path = self.entry_path(key);
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// The cache's root directory (as configured, version dir excluded).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run;
    use cdpc_compiler::{compile, CompileOptions};
    use cdpc_memsim::MemConfig;
    use cdpc_workloads::spec::Scale;

    const SCALE: u64 = 32;

    fn small_cfg(cpus: usize) -> RunConfig {
        let mut m = MemConfig::paper_base(cpus);
        m.l2 = cdpc_memsim::CacheConfig::new((1 << 20) / SCALE as usize, 128, 1);
        m.l1d = cdpc_memsim::CacheConfig::new(512, 32, 2);
        m.l1i = cdpc_memsim::CacheConfig::new(512, 32, 2);
        m.tlb_entries = 8;
        RunConfig::new(m, PolicyKind::PageColoring)
    }

    fn compile_suite(name: &str, cpus: usize) -> CompiledProgram {
        let bench = cdpc_workloads::by_name(name).expect("suite workload exists");
        let program = (bench.build)(Scale::new(SCALE));
        let l2 = small_cfg(cpus).mem.l2.size_bytes() as u64;
        compile(&program, &CompileOptions::new(cpus).with_l2_cache(l2)).expect("models compile")
    }

    fn compiled(cpus: usize) -> CompiledProgram {
        compile_suite("tomcatv", cpus)
    }

    #[test]
    fn canonicalization_merges_execution_strategies() {
        let c = compiled(2);
        let base = small_cfg(2);
        let mut variant = base.clone();
        variant.scheduler = SchedulerKind::Heap;
        variant.sim_threads = 4;
        variant.translation_cache = false;
        variant.validate_coherence = true;
        // Page coloring never reads these:
        variant.seed = 99;
        variant.race_window = 7;
        variant.recolor_threshold = 1;
        variant.hint_options = HintOptions {
            order_sets: false,
            order_segments: true,
            cyclic_layout: false,
        };
        assert_eq!(run_key(&c, &base), run_key(&c, &variant));
    }

    #[test]
    fn semantic_fields_change_the_key() {
        let c = compiled(2);
        let base = small_cfg(2);
        let key = run_key(&c, &base);
        let mut other = base.clone();
        other.policy = PolicyKind::Cdpc;
        assert_ne!(key, run_key(&c, &other));
        let mut other = base.clone();
        other.barrier_cycles += 1;
        assert_ne!(key, run_key(&c, &other));
        let mut other = base.clone();
        other.hog_fraction = 0.25;
        assert_ne!(key, run_key(&c, &other));
        // Bin hopping on a multiprocessor really consumes the seed.
        let mut bh_a = base.clone();
        bh_a.policy = PolicyKind::BinHopping;
        let mut bh_b = bh_a.clone();
        bh_b.seed += 1;
        assert_ne!(run_key(&c, &bh_a), run_key(&c, &bh_b));
    }

    #[test]
    fn program_name_splits_full_key_but_not_warm_key() {
        let cfg = small_cfg(2);
        let a = compiled(2);
        let mut b = a.clone();
        b.name = "tomcatv-relabeled".to_string();
        let ka = run_key(&a, &cfg);
        let kb = run_key(&b, &cfg);
        assert_eq!(ka.warm, kb.warm, "name must not affect warm identity");
        assert_ne!(ka.full, kb.full, "name labels the report");
        // Program content changes both.
        let c = compile_suite("swim", 2);
        let kc = run_key(&c, &cfg);
        assert_ne!(ka.warm, kc.warm);
        assert_ne!(ka.full, kc.full);
    }

    #[test]
    fn codec_round_trip_is_exact() {
        let c = compiled(2);
        let mut cfg = small_cfg(2);
        cfg.hog_fraction = 0.2; // exercise fault fallbacks
        let report = run(&c, &cfg);
        assert!(report.bus.utilization > 0.0, "want a nontrivial float");
        let json = report_to_cache_json(&report);
        let text = json.to_string_compact();
        let parsed = JsonValue::parse(&text).expect("codec output parses");
        let back = report_from_cache_json(&parsed).expect("codec output decodes");
        assert_eq!(report, back, "cache codec must be lossless");
        assert_eq!(
            report.bus.utilization.to_bits(),
            back.bus.utilization.to_bits(),
            "float must survive bit-exactly"
        );
    }

    #[test]
    fn cache_store_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("cdpc-memo-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let c = compiled(2);
        let cfg = small_cfg(2);
        let key = run_key(&c, &cfg);
        assert!(cache.load(&key).is_none(), "cold cache misses");
        let report = run(&c, &cfg);
        cache.store(&key, &report).expect("store succeeds");
        assert_eq!(cache.load(&key), Some(report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_and_mismatched_entries_load_as_none() {
        let dir = std::env::temp_dir().join(format!("cdpc-memo-poison-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let c = compiled(2);
        let cfg = small_cfg(2);
        let key = run_key(&c, &cfg);
        let report = run(&c, &cfg);
        cache.store(&key, &report).expect("store succeeds");
        let path = cache.versioned_dir().join(format!("{}.json", key.hex()));

        // Truncated file → recompute, not crash.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key), None, "truncated entry must be rejected");

        // Valid JSON, wrong embedded key (renamed/tampered entry).
        let other_key = {
            let mut c2 = c.clone();
            c2.name = "imposter".into();
            run_key(&c2, &cfg)
        };
        cache.store(&other_key, &report).expect("store succeeds");
        let other_path = cache
            .versioned_dir()
            .join(format!("{}.json", other_key.hex()));
        fs::rename(&other_path, &path).unwrap();
        assert_eq!(cache.load(&key), None, "foreign key must be rejected");

        // Version mismatch inside an otherwise-valid entry.
        cache.store(&key, &report).expect("store succeeds");
        let bumped = fs::read_to_string(&path).unwrap().replace(
            &format!("\"format_version\":{CACHE_FORMAT_VERSION}"),
            &format!("\"format_version\":{}", CACHE_FORMAT_VERSION + 1),
        );
        fs::write(&path, bumped).unwrap();
        assert_eq!(cache.load(&key), None, "future version must be rejected");

        // Structural damage deep in the report (cpu row too short).
        cache.store(&key, &report).expect("store succeeds");
        let damaged =
            fs::read_to_string(&path)
                .unwrap()
                .replacen("\"cpus\":[[", "\"cpus\":[[1],[", 1);
        fs::write(&path, damaged).unwrap();
        assert_eq!(cache.load(&key), None, "short cpu row must be rejected");

        let _ = fs::remove_dir_all(&dir);
    }
}
