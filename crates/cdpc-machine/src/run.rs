//! The machine run loop: executes a compiled program's reference streams
//! against the memory system, OS, and page-mapping policy, producing a
//! [`RunReport`].
//!
//! ## Methodology (paper §3.2)
//!
//! The paper measures *representative execution windows*: the program is
//! positioned at its steady state, statistics are collected separately per
//! phase, weighted by each phase's occurrence count, and the first
//! (cold-miss-dominated) executions are discarded. The run loop reproduces
//! this: one **warm-up pass** over all phases (faulting pages in and
//! warming caches, statistics discarded), then one **measured pass** whose
//! per-phase statistics are scaled by the phase counts.
//!
//! Processors are interleaved one reference at a time in global time order
//! (a priority queue on local clocks), so bus contention and coherence
//! races resolve the way they would on the machine.

use std::cmp::Reverse;

use std::collections::BinaryHeap;
use std::sync::Arc;

use cdpc_compiler::trace::TraceOp;
use cdpc_compiler::{CompiledProgram, CompiledStmt};
use cdpc_core::hints::HintOptions;
use cdpc_core::{generate_hints_with, Fingerprint, MachineParams};
use cdpc_memsim::{AccessKind, CpuStats, MemConfig, MemSnapshot, MemStats, MemorySystem};
use cdpc_obs::{AttributionProbe, HintOutcome, IntervalSeries, NullProbe, Probe, Sample};
use cdpc_vm::addr::{Color, ColorSpace, PageGeometry, PhysAddr, Ppn, VirtAddr, Vpn};
use cdpc_vm::policy::{BinHopping, CdpcPolicy, MappingPolicy, PageColoring};
use cdpc_vm::AddressSpace;

use crate::report::{BusReport, OverheadBreakdown, RunReport, StallBreakdown};

/// Which page-mapping policy the OS runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// IRIX-style page coloring.
    PageColoring,
    /// Digital UNIX-style bin hopping (with a modeled multiprocessor race
    /// when more than one CPU is faulting).
    BinHopping,
    /// CDPC via the kernel hint table (the paper's IRIX implementation);
    /// unhinted pages fall back to page coloring.
    Cdpc,
    /// CDPC via user-level selective page touching over an unmodified
    /// bin-hopping kernel (the paper's Digital UNIX implementation).
    CdpcTouch,
    /// Dynamic page recoloring (paper §2.1 related work): page coloring
    /// plus a conflict-miss detector that recolors hot pages by copying
    /// them — paying the copy, cache flush, and multiprocessor TLB
    /// shootdown the paper warns about.
    DynamicRecolor,
}

impl PolicyKind {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::PageColoring => "page-coloring",
            PolicyKind::BinHopping => "bin-hopping",
            PolicyKind::Cdpc => "cdpc",
            PolicyKind::CdpcTouch => "cdpc-touch",
            PolicyKind::DynamicRecolor => "dynamic-recolor",
        }
    }
}

/// Which discipline the run loop uses to interleave per-CPU streams.
///
/// Both produce the **same global reference order** (a differential test
/// in `tests/determinism.rs` proves bit-identical reports); they differ
/// only in how many priority-queue operations they spend getting there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Pop the minimum-clock CPU once and keep executing its ops until its
    /// local clock passes the runner-up's key, then reinsert. Equivalent to
    /// [`SchedulerKind::Heap`] because executing an op only advances the
    /// running CPU's *key* (IPIs from dynamic recoloring advance other
    /// CPUs' live clocks, but their heap keys stay stale in both
    /// disciplines), so the runner-up key is the exact hand-over point.
    #[default]
    MinClockBatch,
    /// One heap pop + push per op — the original discipline, kept as the
    /// reference for differential tests (`--scheduler heap` in the bench
    /// binaries).
    Heap,
}

/// Run-loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Memory-system configuration (CPU count lives here).
    pub mem: MemConfig,
    /// OS page-mapping policy.
    pub policy: PolicyKind,
    /// Cycles charged per barrier to every participant.
    pub barrier_cycles: u64,
    /// Kernel cycles charged per page fault.
    pub page_fault_cycles: u64,
    /// Bin-hopping race window (max slots of fault-order perturbation) on
    /// multiprocessors; 0 disables the race model.
    pub race_window: u32,
    /// Seed for all stochastic model components.
    pub seed: u64,
    /// Physical memory slack: pool size = touched span × this factor.
    pub phys_slack: f64,
    /// CDPC algorithm-step ablation switches (full algorithm by default).
    pub hint_options: HintOptions,
    /// Conflict misses on one page before the dynamic-recoloring policy
    /// moves it (only used by [`PolicyKind::DynamicRecolor`]).
    pub recolor_threshold: u32,
    /// Fraction of physical memory held by a simulated co-resident job
    /// before the run starts, concentrated in the lower half of the color
    /// space (models the "memory pressure" under which the OS cannot
    /// honor hints, paper §5 stage 3). 0.0 disables.
    pub hog_fraction: f64,
    /// Run `MemorySystem::validate_coherence` at every phase boundary
    /// (always on in `debug_assertions` builds; this flag forces it in
    /// release builds, e.g. for `--sanitize` bench runs).
    pub validate_coherence: bool,
    /// Stream-interleaving discipline (min-clock batching by default; the
    /// per-op heap is kept as a differential-testing reference).
    pub scheduler: SchedulerKind,
    /// Use the per-CPU VPN→PPN micro-translation-cache on the demand path.
    /// Pure memoization of the page-table walk — results are identical
    /// either way (a differential test proves it); off is only useful for
    /// that test and for debugging.
    pub translation_cache: bool,
    /// Host threads for the intra-run parallel execution engine
    /// (`--sim-threads N` in the bench binaries). `1` (the default) is the
    /// plain serial run loop. With `N > 1`, parallel statements execute on
    /// `N - 1` worker threads plus the calling thread: each simulated CPU's
    /// private references (L1/L2 hits) run on a worker holding that CPU's
    /// detached cache [`Lane`](cdpc_memsim::Lane), while every cross-CPU
    /// reference (misses, upgrades, prefetches) is serialized through the
    /// coordinator in exact global clock order. Reports, series, and probe
    /// aggregates are **bit-identical** to the serial scheduler for every
    /// value (differential tests in `tests/engine_differential.rs` prove
    /// it); the engine silently falls back to the serial path for
    /// configurations it does not cover (single-CPU machines, the `heap`
    /// reference scheduler, `translation_cache = false`, dynamic
    /// recoloring, order-sensitive probes, or interval sampling during the
    /// measured pass).
    pub sim_threads: usize,
}

impl RunConfig {
    /// Defaults for a given memory configuration and policy.
    pub fn new(mem: MemConfig, policy: PolicyKind) -> Self {
        Self {
            mem,
            policy,
            barrier_cycles: 1_000,
            page_fault_cycles: 4_000,
            race_window: 3,
            seed: 0xC0FFEE,
            phys_slack: 1.5,
            hint_options: HintOptions::FULL,
            recolor_threshold: 64,
            hog_fraction: 0.0,
            validate_coherence: false,
            scheduler: SchedulerKind::MinClockBatch,
            translation_cache: true,
            sim_threads: 1,
        }
    }

    fn color_space(&self) -> ColorSpace {
        ColorSpace::new(
            self.mem.l2.size_bytes(),
            self.mem.page_size,
            self.mem.l2.associativity(),
        )
    }

    fn machine_params(&self) -> MachineParams {
        MachineParams::new(
            self.mem.num_cpus,
            self.mem.page_size,
            self.mem.l2.size_bytes(),
            self.mem.l2.associativity(),
        )
    }
}

/// Per-phase interval-sampling state: the counter baselines of the last
/// closed window, the running wall clock, and the next window boundary.
///
/// Windows are defined on the *global* simulated wall clock (the max over
/// per-CPU clocks seen so far), so `end_cycle` values increase
/// monotonically across phases; windows never span a phase boundary
/// because a partial window is flushed at every phase end. Counter deltas
/// are scaled by the phase's occurrence count `k`, which is what makes
/// [`IntervalSeries::totals`] equal the end-of-run aggregates exactly.
struct Sampler {
    interval: u64,
    series: IntervalSeries,
    /// Occurrence count of the phase being sampled.
    k: u64,
    /// Aggregate CPU counters at the last flush.
    prev: CpuStats,
    /// Instruction total at the last flush.
    prev_instr: u64,
    /// Bus occupancy (data, writeback, upgrade) at the last flush.
    prev_bus: (u64, u64, u64),
    /// Max simulated cycle seen so far.
    wall: u64,
    /// Wall cycle at which the current window closes.
    next_boundary: u64,
}

impl Sampler {
    fn new(interval: u64) -> Self {
        let interval = interval.max(1);
        Self {
            interval,
            series: IntervalSeries::new(interval),
            k: 1,
            prev: CpuStats::default(),
            prev_instr: 0,
            prev_bus: (0, 0, 0),
            wall: 0,
            next_boundary: 0,
        }
    }
}

/// Slots in each CPU's micro-translation-cache. Power of two so the index
/// is a mask; 512 entries (8 KB per CPU) cover the page working set of the
/// scaled workloads — at 64 slots the direct-mapped cache thrashed on the
/// multi-hundred-page footprints and the demand path fell back to the page
/// table for a measurable fraction of references.
const TCACHE_SLOTS: usize = 512;

/// A per-CPU direct-mapped VPN→PPN cache in front of the page table.
///
/// This is *not* the simulated TLB (`cdpc-memsim` models that, with miss
/// penalties); it is a simulator-internal memoization of
/// `AddressSpace::translate`. A virtual page's mapping can only change
/// through [`Sim::recolor_page`], which invalidates the VPN in every CPU's
/// cache, so a hit is always current and the demand path can skip both
/// `ensure_mapped` and the page-table walk.
#[derive(Clone)]
pub(crate) struct TransCache {
    /// Tag per slot; [`TransCache::EMPTY`] marks an invalid slot. (Program
    /// VPNs are tiny and even the hog job's synthetic VPNs start at
    /// `u64::MAX / 2`, so the sentinel is unreachable.)
    vpns: [u64; TCACHE_SLOTS],
    ppns: [u64; TCACHE_SLOTS],
}

impl TransCache {
    const EMPTY: u64 = u64::MAX;

    pub(crate) fn new() -> Self {
        Self {
            vpns: [Self::EMPTY; TCACHE_SLOTS],
            ppns: [0; TCACHE_SLOTS],
        }
    }

    #[inline]
    pub(crate) fn lookup(&self, vpn: u64) -> Option<u64> {
        let slot = (vpn as usize) & (TCACHE_SLOTS - 1);
        (self.vpns[slot] == vpn).then(|| self.ppns[slot])
    }

    #[inline]
    fn insert(&mut self, vpn: u64, ppn: u64) {
        let slot = (vpn as usize) & (TCACHE_SLOTS - 1);
        self.vpns[slot] = vpn;
        self.ppns[slot] = ppn;
    }

    fn invalidate(&mut self, vpn: u64) {
        let slot = (vpn as usize) & (TCACHE_SLOTS - 1);
        if self.vpns[slot] == vpn {
            self.vpns[slot] = Self::EMPTY;
        }
    }
}

pub(crate) struct Sim<Q: Probe> {
    pub(crate) mem: MemorySystem<Q>,
    vm: AddressSpace,
    policy: Box<dyn MappingPolicy + Send + Sync>,
    pub(crate) clocks: Vec<u64>,
    /// Per-CPU micro-translation-caches (see [`TransCache`]). Boxed so the
    /// parallel engine can hand a CPU's cache to a worker thread with an
    /// 8-byte pointer swap instead of an 8 KB copy.
    pub(crate) tcache: Vec<Box<TransCache>>,
    /// Dynamic recoloring state: per-page conflict counters, per-color
    /// mapped-page loads, and the number of recolorings performed.
    dynamic: bool,
    conflict_counts: cdpc_core::fastmap::FxMap64<u32>,
    color_loads: Vec<u32>,
    recolorings: u64,
    // Per-phase accumulators (reset at phase boundaries).
    pub(crate) instr: Vec<u64>,
    fault_cycles: Vec<u64>,
    imbalance: u64,
    sequential: u64,
    suppressed: u64,
    sync: u64,
    pub(crate) cfg: RunConfig,
    geometry: PageGeometry,
    /// Interval metrics, armed only during the measured pass of
    /// [`run_observed`] when sampling was requested.
    sampler: Option<Sampler>,
}

impl<Q: Probe> Sim<Q> {
    fn ensure_mapped(&mut self, cpu: usize, vpn: Vpn) {
        if !self.vm.is_mapped(vpn) {
            let faults_before = self.vm.stats();
            let hints_before = self.policy.hint_lookup_stats();
            self.vm
                .fault(vpn, &mut self.policy)
                .expect("physical memory exhausted: raise phys_slack");
            let faults_after = self.vm.stats();
            if let (Some((lb, hb)), Some((la, ha))) =
                (hints_before, self.policy.hint_lookup_stats())
            {
                for i in 0..la.saturating_sub(lb) {
                    self.mem
                        .probe_mut()
                        .on_hint_lookup(vpn.0, i < ha.saturating_sub(hb));
                }
            }
            let outcome = if faults_after.honored > faults_before.honored {
                HintOutcome::Honored
            } else if faults_after.fallback > faults_before.fallback {
                HintOutcome::Fallback
            } else {
                HintOutcome::NoPreference
            };
            let color = self.vm.color_of(vpn).expect("just mapped");
            self.clocks[cpu] += self.cfg.page_fault_cycles;
            self.fault_cycles[cpu] += self.cfg.page_fault_cycles;
            self.mem
                .probe_mut()
                .on_page_fault(cpu, self.clocks[cpu], vpn.0, color.0, outcome);
            if self.dynamic {
                self.color_loads[color.0 as usize] += 1;
            }
        }
    }

    /// The recoloring operation of a dynamic policy: detect (caller),
    /// pick the least-loaded color, flush the old physical page from all
    /// caches, move the mapping, and charge the costs the paper warns
    /// about — the copy itself plus a TLB shootdown on every processor.
    fn recolor_page(&mut self, cpu: usize, vpn: Vpn) {
        let old_color = self.vm.color_of(vpn).expect("mapped");
        let target = Color(
            (0..self.color_loads.len())
                .min_by_key(|&c| self.color_loads[c])
                .expect("at least one color") as u32,
        );
        if target == old_color {
            return;
        }
        let page = self.geometry.page_size() as u64;
        let old_base = self
            .vm
            .translate(self.geometry.base_of(vpn))
            .expect("mapped");
        if self.vm.recolor(vpn, target).is_err() {
            return; // memory pressure: keep the old mapping
        }
        self.color_loads[old_color.0 as usize] -= 1;
        let new_color = self.vm.color_of(vpn).expect("still mapped");
        self.color_loads[new_color.0 as usize] += 1;
        self.mem
            .flush_physical_page(self.clocks[cpu], PhysAddr(old_base.0 & !(page - 1)));
        self.mem.shoot_down_tlb(vpn);
        // The mapping moved: drop the stale translation from every CPU's
        // micro-cache, mirroring the simulated TLB shootdown above.
        for tc in &mut self.tcache {
            tc.invalidate(vpn.0);
        }
        self.recolorings += 1;
        self.mem
            .probe_mut()
            .on_recolor(cpu, self.clocks[cpu], vpn.0, old_color.0, new_color.0);
        // Copy cost: read + write one page over the memory system, plus a
        // fixed kernel overhead, charged to the faulting CPU...
        let copy = 2 * self.cfg.mem.bus_occupancy_cycles(page) + self.cfg.page_fault_cycles;
        self.clocks[cpu] += copy;
        self.fault_cycles[cpu] += copy;
        // ...and the shootdown interrupt on every other processor.
        let ipi = self.cfg.mem.ns_to_cycles(2_000);
        for other in 0..self.clocks.len() {
            if other != cpu {
                self.clocks[other] += ipi;
                self.fault_cycles[other] += ipi;
            }
        }
    }

    fn translate(&self, va: VirtAddr) -> PhysAddr {
        self.vm.translate(va).expect("accessed page must be mapped")
    }

    /// Translates a demand reference for `cpu`, faulting the page in on
    /// first touch. The common case — the page is mapped and its VPN sits
    /// in the CPU's [`TransCache`] — skips both `ensure_mapped` and the
    /// page-table walk entirely; since a cached translation is invalidated
    /// whenever the mapping moves, the result is identical either way.
    #[inline]
    pub(crate) fn translate_demand(&mut self, cpu: usize, va: VirtAddr) -> (Vpn, PhysAddr) {
        let vpn = self.geometry.vpn_of(va);
        if self.cfg.translation_cache {
            if let Some(ppn) = self.tcache[cpu].lookup(vpn.0) {
                let pa = self
                    .geometry
                    .phys_addr(Ppn(ppn), self.geometry.offset_of(va));
                return (vpn, pa);
            }
        }
        self.ensure_mapped(cpu, vpn);
        let pa = self.translate(va);
        if self.cfg.translation_cache {
            self.tcache[cpu].insert(vpn.0, self.geometry.ppn_of(pa).0);
        }
        (vpn, pa)
    }

    /// Conflict-miss bookkeeping for the dynamic-recoloring policy. Out of
    /// line (and `#[cold]`) so the Load/Store fast path stays compact:
    /// static-policy runs never get here, and even dynamic runs only on a
    /// conflict miss.
    #[cold]
    fn note_conflict_miss(&mut self, cpu: usize, vpn: Vpn) {
        let count = self.conflict_counts.entry_or_insert_with(vpn.0, || 0);
        *count += 1;
        if *count >= self.cfg.recolor_threshold {
            *count = 0;
            self.recolor_page(cpu, vpn);
        }
    }

    /// Executes one trace op on `cpu`, advancing its local clock.
    ///
    /// Per-op accounting (audited; the asymmetry is intentional):
    /// * `Instr(n)` — `n` cycles, `n` instructions (single-issue CPU).
    /// * `Load`/`Store` — memory latency + 1 issue cycle, 1 instruction.
    /// * `Prefetch` — stall cycles + 1 issue cycle, 1 instruction (the
    ///   prefetch instruction issues even when the engine drops it).
    /// * `IFetch` — memory latency only, **zero** instructions and no
    ///   issue cycle: an ifetch models fetching a code *line*, and the
    ///   instructions on that line are exactly the ones the adjacent
    ///   `Instr(n)` op already charges — adding an issue cycle here would
    ///   double-count them. A test pins the accounted totals to the stream.
    pub(crate) fn exec_op(&mut self, cpu: usize, op: TraceOp) {
        match op {
            TraceOp::Instr(n) => {
                self.clocks[cpu] += n;
                self.instr[cpu] += n;
            }
            TraceOp::Load(va) | TraceOp::Store(va) | TraceOp::IFetch(va) => {
                let (vpn, pa) = self.translate_demand(cpu, va);
                let miss = self.exec_demand_translated(cpu, op, pa);
                if self.dynamic && miss == Some(cdpc_memsim::MissClass::Conflict) {
                    self.note_conflict_miss(cpu, vpn);
                }
            }
            TraceOp::Prefetch { addr, exclusive } => {
                let pa = self.prefetch_pa(cpu, addr);
                let out = self
                    .mem
                    .prefetch(cpu, self.clocks[cpu], addr, pa, exclusive);
                self.clocks[cpu] += out.stall_cycles + 1;
                self.instr[cpu] += 1;
            }
        }
        self.sampler_tick(cpu);
    }

    /// Translates a prefetch target without faulting: prefetches to
    /// unmapped pages are dropped by the TLB probe (the page cannot be in
    /// the TLB if never demand-accessed), so the placeholder `pa` of an
    /// unmapped page is never read. Pure — no state changes — which is
    /// what lets the parallel engine compute a prefetch hazard's cache
    /// line before committing to execute it.
    pub(crate) fn prefetch_pa(&self, cpu: usize, addr: VirtAddr) -> PhysAddr {
        if self.cfg.translation_cache {
            let vpn = self.geometry.vpn_of(addr);
            match self.tcache[cpu].lookup(vpn.0) {
                Some(ppn) => self
                    .geometry
                    .phys_addr(Ppn(ppn), self.geometry.offset_of(addr)),
                None => self.vm.translate(addr).unwrap_or(PhysAddr(0)),
            }
        } else {
            self.vm.translate(addr).unwrap_or(PhysAddr(0))
        }
    }

    /// Applies a prefetch outcome's processor-side accounting — the tail
    /// of the `Prefetch` arm of [`exec_op`](Self::exec_op), split out for
    /// the parallel engine (which screens and issues the prefetch in two
    /// steps around its victim gate).
    pub(crate) fn finish_prefetch(&mut self, cpu: usize, out: cdpc_memsim::PrefetchOutcome) {
        self.clocks[cpu] += out.stall_cycles + 1;
        self.instr[cpu] += 1;
    }

    /// The post-translation tail of [`exec_op`](Self::exec_op) for demand
    /// references (`Load`/`Store`/`IFetch`): runs the memory access at the
    /// CPU's current clock and applies the audited per-op accounting.
    /// Shared between the serial path and the parallel engine's hazard
    /// execution (which translates at its ordering gate), so the two
    /// cannot drift. Returns the miss class for the caller's
    /// dynamic-recoloring hook.
    pub(crate) fn exec_demand_translated(
        &mut self,
        cpu: usize,
        op: TraceOp,
        pa: PhysAddr,
    ) -> Option<cdpc_memsim::MissClass> {
        match op {
            TraceOp::Load(va) | TraceOp::Store(va) => {
                let kind = if matches!(op, TraceOp::Store(_)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let out = self.mem.access(cpu, self.clocks[cpu], va, pa, kind);
                self.clocks[cpu] += out.latency_cycles + 1;
                self.instr[cpu] += 1;
                out.miss_class
            }
            TraceOp::IFetch(va) => {
                let out = self
                    .mem
                    .access(cpu, self.clocks[cpu], va, pa, AccessKind::IFetch);
                self.clocks[cpu] += out.latency_cycles;
                None
            }
            TraceOp::Instr(_) | TraceOp::Prefetch { .. } => {
                unreachable!("exec_demand_translated only handles demand references")
            }
        }
    }

    /// Advances the sampling wall clock past this CPU's local clock and
    /// closes the window if a boundary was crossed. A no-op (one `Option`
    /// check) when sampling is off.
    fn sampler_tick(&mut self, cpu: usize) {
        let Some(s) = &mut self.sampler else { return };
        let clock = self.clocks[cpu];
        if clock > s.wall {
            s.wall = clock;
        }
        if s.wall >= s.next_boundary {
            self.sampler_flush(false);
        }
    }

    /// Re-arms the sampler for a phase repeated `k` times. Must run right
    /// after [`reset_phase_counters`](Self::reset_phase_counters): the
    /// memory statistics were just zeroed, so the delta baselines restart
    /// from zero while the wall clock keeps running.
    fn sampler_begin_phase(&mut self, k: u64) {
        let wall = self.clocks.iter().copied().max().unwrap_or(0);
        if let Some(s) = &mut self.sampler {
            s.k = k;
            s.prev = CpuStats::default();
            s.prev_instr = 0;
            s.prev_bus = (0, 0, 0);
            s.wall = wall;
            s.next_boundary = wall + s.interval;
        }
    }

    /// Flushes the partial window at a phase boundary so no window spans
    /// two phases (they are scaled by different occurrence counts).
    fn sampler_end_phase(&mut self) {
        if self.sampler.is_none() {
            return;
        }
        let wall = self.clocks.iter().copied().max().unwrap_or(0);
        if let Some(s) = &mut self.sampler {
            if wall > s.wall {
                s.wall = wall;
            }
        }
        self.sampler_flush(true);
    }

    /// Closes the current window: pushes the counter deltas since the last
    /// flush (scaled by the phase count) and re-arms the next boundary.
    fn sampler_flush(&mut self, skip_empty: bool) {
        if self.sampler.is_none() {
            return;
        }
        let stats = self.mem.stats();
        let agg = stats.aggregate();
        let instr: u64 = self.instr.iter().sum();
        let s = self.sampler.as_mut().expect("checked above");
        let (bus_d, bus_w, bus_u) = stats.bus_occupancy;
        let prev = &s.prev;
        // Field mapping mirrors `StallBreakdown::from_mem_stats` exactly —
        // that is what makes the series totals reproduce the report.
        let delta = Sample {
            end_cycle: s.wall,
            instructions: instr - s.prev_instr,
            refs: (agg.data_refs + agg.ifetch_refs) - (prev.data_refs + prev.ifetch_refs),
            misses: agg.misses.total() - prev.misses.total(),
            tlb_misses: agg.tlb_misses - prev.tlb_misses,
            l2_hit_stall: agg.l2_hit_stall_cycles - prev.l2_hit_stall_cycles,
            conflict_stall: agg.miss_stall_cycles.get(cdpc_memsim::MissClass::Conflict)
                - prev.miss_stall_cycles.get(cdpc_memsim::MissClass::Conflict),
            capacity_stall: agg.miss_stall_cycles.get(cdpc_memsim::MissClass::Capacity)
                - prev.miss_stall_cycles.get(cdpc_memsim::MissClass::Capacity),
            true_sharing_stall: agg
                .miss_stall_cycles
                .get(cdpc_memsim::MissClass::TrueSharing)
                - prev
                    .miss_stall_cycles
                    .get(cdpc_memsim::MissClass::TrueSharing),
            false_sharing_stall: agg
                .miss_stall_cycles
                .get(cdpc_memsim::MissClass::FalseSharing)
                - prev
                    .miss_stall_cycles
                    .get(cdpc_memsim::MissClass::FalseSharing),
            cold_stall: agg.miss_stall_cycles.get(cdpc_memsim::MissClass::Cold)
                - prev.miss_stall_cycles.get(cdpc_memsim::MissClass::Cold),
            prefetch_stall: (agg.prefetch_wait_cycles + agg.prefetch_slot_stall_cycles)
                - (prev.prefetch_wait_cycles + prev.prefetch_slot_stall_cycles),
            upgrade_stall: agg.upgrade_stall_cycles - prev.upgrade_stall_cycles,
            bus_data: bus_d - s.prev_bus.0,
            bus_writeback: bus_w - s.prev_bus.1,
            bus_upgrade: bus_u - s.prev_bus.2,
        };
        if !(skip_empty && delta.is_empty()) {
            s.series.push(delta.scaled(s.k));
        }
        s.prev = agg;
        s.prev_instr = instr;
        s.prev_bus = (bus_d, bus_w, bus_u);
        s.next_boundary = s.wall + s.interval;
    }

    /// Runs one statement to completion, including the trailing barrier for
    /// parallel statements.
    fn exec_stmt(&mut self, stmt: &CompiledStmt) {
        match stmt {
            CompiledStmt::Parallel { specs } => {
                let p = specs.len();
                let mut streams: Vec<_> = specs.iter().map(|s| s.ops()).collect();
                let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                    (0..p).map(|c| Reverse((self.clocks[c], c))).collect();
                match self.cfg.scheduler {
                    SchedulerKind::Heap => {
                        // Reference discipline: one pop + push per op.
                        while let Some(Reverse((_, cpu))) = heap.pop() {
                            match streams[cpu].next() {
                                Some(op) => {
                                    self.exec_op(cpu, op);
                                    heap.push(Reverse((self.clocks[cpu], cpu)));
                                }
                                None => { /* stream finished: cpu waits at barrier */ }
                            }
                        }
                    }
                    SchedulerKind::MinClockBatch => {
                        // Same global order, one pop per *batch*: after an
                        // op, the heap discipline would re-pop this CPU as
                        // long as its fresh key stays below the runner-up's
                        // key — and the runner-up's key cannot change while
                        // we batch (executing an op updates only the running
                        // CPU's key; recoloring IPIs advance other CPUs'
                        // live clocks, but their *keys* stay stale in both
                        // disciplines), so we keep executing locally until
                        // the comparison flips.
                        while let Some(Reverse((_, cpu))) = heap.pop() {
                            let bound = heap.peek().map(|r| r.0);
                            let mut batch_ops = 0u64;
                            // Stream exhaustion ends the batch with no push:
                            // the finished CPU waits at the barrier.
                            for op in streams[cpu].by_ref() {
                                self.exec_op(cpu, op);
                                batch_ops += 1;
                                // `bound == None` means sole live CPU: run to
                                // the end of the stream.
                                if bound.is_some_and(|b| (self.clocks[cpu], cpu) >= b) {
                                    heap.push(Reverse((self.clocks[cpu], cpu)));
                                    break;
                                }
                            }
                            if batch_ops > 0 {
                                self.mem.probe_mut().on_run_batch(cpu, batch_ops);
                            }
                        }
                    }
                }
                self.parallel_barrier(p);
            }
            CompiledStmt::Master { spec, suppressed } => {
                let start = self.clocks[0];
                for op in spec.ops() {
                    self.exec_op(0, op);
                }
                let elapsed = self.clocks[0] - start;
                for c in 1..self.clocks.len() {
                    // Slaves spin until the master finishes.
                    self.clocks[c] = self.clocks[0];
                    if *suppressed {
                        self.suppressed += elapsed;
                    } else {
                        self.sequential += elapsed;
                    }
                }
            }
        }
    }

    /// The barrier closing a parallel statement: account imbalance, then
    /// synchronize every participant. Shared by the serial scheduler arms
    /// and the parallel engine.
    pub(crate) fn parallel_barrier(&mut self, p: usize) {
        let tmax = *self.clocks.iter().max().expect("at least one cpu");
        for c in 0..p {
            self.imbalance += tmax - self.clocks[c];
            self.clocks[c] = tmax + self.cfg.barrier_cycles;
            self.sync += self.cfg.barrier_cycles;
        }
    }

    fn reset_phase_counters(&mut self) {
        self.mem.reset_stats();
        for v in &mut self.instr {
            *v = 0;
        }
        for v in &mut self.fault_cycles {
            *v = 0;
        }
        self.imbalance = 0;
        self.sequential = 0;
        self.suppressed = 0;
        self.sync = 0;
    }
}

fn scaled_cpu_stats(stats: &CpuStats, k: u64) -> CpuStats {
    let mut out = CpuStats::default();
    for _ in 0..k {
        out.merge(stats);
    }
    out
}

/// The virtual pages of the program's code segment.
fn code_pages(compiled: &CompiledProgram, page_size: usize) -> Vec<Vpn> {
    let geometry = PageGeometry::new(page_size);
    let max_code = compiled
        .phases
        .iter()
        .flat_map(|ph| ph.stmts.iter())
        .map(|s| match s {
            CompiledStmt::Parallel { specs } => specs.first().map(|x| x.code_bytes).unwrap_or(0),
            CompiledStmt::Master { spec, .. } => spec.code_bytes,
        })
        .max()
        .unwrap_or(0);
    let first = geometry.vpn_of(compiled.layout.code_base).0;
    let last = geometry
        .vpn_of(VirtAddr(compiled.layout.code_base.0 + max_code.max(1) - 1))
        .0;
    (first..=last).map(Vpn).collect()
}

/// Builds the mapping policy for a run. CDPC hints are generated from the
/// compiled program's access summary with the run's machine parameters —
/// the paper's stage-2 run-time step.
fn build_policy(
    compiled: &CompiledProgram,
    cfg: &RunConfig,
) -> Box<dyn MappingPolicy + Send + Sync> {
    let colors = cfg.color_space();
    match cfg.policy {
        PolicyKind::PageColoring | PolicyKind::DynamicRecolor => {
            Box::new(PageColoring::new(colors))
        }
        PolicyKind::BinHopping => {
            if cfg.mem.num_cpus > 1 && cfg.race_window > 0 {
                Box::new(BinHopping::with_race_perturbation(
                    colors,
                    cfg.race_window,
                    cfg.seed,
                ))
            } else {
                Box::new(BinHopping::new(colors))
            }
        }
        PolicyKind::Cdpc | PolicyKind::CdpcTouch => {
            let hints =
                generate_hints_with(&compiled.summary, &cfg.machine_params(), cfg.hint_options)
                    .expect("compiler-produced summaries are always valid");
            let mut table = hints.to_hint_table();
            // The run-time library also colors the text segment: code pages
            // continue the round-robin after the data pages, so instruction
            // lines never collide with hinted data. (At the paper's scale —
            // 256 colors, tiny loop bodies resident in the L1I — this is
            // invisible; at scaled-down color counts it matters.) A program
            // with no data hints — nothing was parallelized — gets no code
            // hints either: CDPC degenerates to the native policy exactly.
            if !hints.is_empty() {
                let mut color = Color(hints.len() as u32 % colors.num_colors());
                for vpn in code_pages(compiled, cfg.mem.page_size) {
                    if table.lookup(vpn).is_none() {
                        table.advise(vpn, color);
                        color = colors.advance(color, 1);
                    }
                }
            }
            Box::new(CdpcPolicy::new(table, PageColoring::new(colors)))
        }
    }
}

/// Runs a compiled program and reports the steady-state behavior.
///
/// Equivalent to [`run_observed`] with the no-op probe and no sampling;
/// the probe hooks compile away entirely on this path.
///
/// # Panics
///
/// Panics if physical memory is exhausted (raise
/// [`RunConfig::phys_slack`]) — a configuration error, not a program
/// outcome.
pub fn run(compiled: &CompiledProgram, cfg: &RunConfig) -> RunReport {
    run_observed(compiled, cfg, &mut NullProbe, None).0
}

/// Runs a compiled program with an event probe attached to every layer of
/// the machine and, optionally, interval sampling of the measured pass.
///
/// `probe` receives the memory-system events (L2 misses with their class,
/// bus transactions, TLB misses, prefetch issues and drops) plus the
/// OS-level events the run loop itself generates (page faults with their
/// color-preference outcome, hint-table lookups, dynamic recolorings).
/// Dispatch is static — `run` instantiates this with
/// [`NullProbe`](cdpc_obs::NullProbe) and pays nothing.
///
/// With `sample_interval = Some(n)`, the measured pass is decomposed into
/// windows of `n` simulated cycles (partial windows are flushed at phase
/// boundaries, and each window is weighted by its phase's occurrence
/// count), and the resulting [`IntervalSeries`] is returned alongside the
/// report. The series' [`totals`](IntervalSeries::totals) equal the
/// report's stall breakdown, instruction count, and bus occupancy exactly.
/// Warm-up is never sampled.
///
/// # Panics
///
/// Panics if physical memory is exhausted (raise
/// [`RunConfig::phys_slack`]) — a configuration error, not a program
/// outcome.
pub fn run_observed<P: Probe>(
    compiled: &CompiledProgram,
    cfg: &RunConfig,
    probe: &mut P,
    sample_interval: Option<u64>,
) -> (RunReport, Option<IntervalSeries>) {
    if engine_eligible::<P>(cfg) {
        match crate::engine::run_engine(compiled, cfg, &mut *probe, sample_interval) {
            Ok(out) => return out,
            Err(crate::engine::EngineAbort) => {
                // A cross-CPU conflict landed inside a speculated private
                // span (possible, rare, and detected exactly): drop all
                // engine state, tell the probe to reset, and re-run the
                // whole thing serially — the bit-identical slow path.
                probe.on_engine_restart();
            }
        }
    }
    match run_observed_inner(compiled, cfg, probe, sample_interval, None) {
        Ok(out) => out,
        Err(crate::engine::EngineAbort) => unreachable!("serial path cannot abort"),
    }
}

/// Whether the parallel engine covers this configuration and probe. The
/// excluded cases either have nothing to parallelize (one CPU, one
/// thread), change the reference order itself (`heap` scheduler), route
/// every translation through mutable OS state (`translation_cache =
/// false`), mutate cross-CPU state from arbitrary points (dynamic
/// recoloring's IPIs and flushes), or require the exact global event
/// interleaving (`ORDER_SENSITIVE` probes).
fn engine_eligible<P: Probe>(cfg: &RunConfig) -> bool {
    cfg.sim_threads > 1
        && cfg.mem.num_cpus > 1
        && cfg.scheduler == SchedulerKind::MinClockBatch
        && cfg.translation_cache
        && cfg.policy != PolicyKind::DynamicRecolor
        && !P::ORDER_SENSITIVE
}

pub(crate) fn run_observed_inner<'a, P: Probe>(
    compiled: &'a CompiledProgram,
    cfg: &RunConfig,
    probe: &mut P,
    sample_interval: Option<u64>,
    mut engine: Option<&mut crate::engine::EngineDriver<'a, '_>>,
) -> Result<(RunReport, Option<IntervalSeries>), crate::engine::EngineAbort> {
    let mut sim = build_sim(compiled, cfg, probe);

    // Warm-up pass: fault pages in, warm caches; everything discarded.
    for phase in &compiled.phases {
        for stmt in &phase.stmts {
            exec_stmt_dispatch(&mut sim, stmt, &mut engine)?;
        }
        if cfg.validate_coherence || cfg!(debug_assertions) {
            sim.mem.validate_coherence();
        }
    }

    measured_pass(&mut sim, compiled, sample_interval, &mut engine)
}

/// Builds the machine — VM, physical memory (with the optional hog job),
/// mapping policy, per-CPU clocks and translation caches — positioned at
/// the program's start, before any warm-up. Shared by the straight-line
/// run path and [`warm_checkpoint`].
fn build_sim<Q: Probe>(compiled: &CompiledProgram, cfg: &RunConfig, probe: Q) -> Sim<Q> {
    assert_eq!(
        compiled.num_cpus, cfg.mem.num_cpus,
        "program compiled for {} CPUs but machine has {}",
        compiled.num_cpus, cfg.mem.num_cpus
    );
    let geometry = PageGeometry::new(cfg.mem.page_size);

    // Physical memory sized to the touched VA span plus slack, rounded to a
    // whole number of color groups so every color has equal pages.
    let colors = cfg.color_space();
    let max_code = compiled
        .phases
        .iter()
        .flat_map(|ph| ph.stmts.iter())
        .map(|s| match s {
            CompiledStmt::Parallel { specs } => specs.first().map(|x| x.code_bytes).unwrap_or(0),
            CompiledStmt::Master { spec, .. } => spec.code_bytes,
        })
        .max()
        .unwrap_or(0);
    let va_end = compiled.layout.code_base.0 + max_code + cfg.mem.page_size as u64;
    let span_pages = geometry.pages_for(va_end) as f64;
    let n = colors.num_colors() as usize;
    let phys_pages = (((span_pages * cfg.phys_slack) as usize).div_ceil(n)).max(2) * n;

    let mut vm = AddressSpace::new(geometry, phys_pages, colors);
    // Simulated memory pressure: a co-resident job pins pages concentrated
    // in the lower half of the color space, so some hints must fall back.
    if cfg.hog_fraction > 0.0 {
        let hog_pages = ((phys_pages as f64) * cfg.hog_fraction.clamp(0.0, 0.95)) as usize;
        let half = (colors.num_colors() / 2).max(1);
        for i in 0..hog_pages {
            let mut hog = cdpc_vm::policy::FixedColor::new(Color(i as u32 % half));
            // Hog pages live in a distant VA region the program never uses.
            let vpn = Vpn(u64::MAX / 2 + i as u64);
            vm.fault(vpn, &mut hog).expect("hog stays below capacity");
        }
    }
    let policy = build_policy(compiled, cfg);
    let p = cfg.mem.num_cpus;

    let num_colors = colors.num_colors() as usize;
    let mut sim = Sim {
        mem: MemorySystem::with_probe(cfg.mem.clone(), probe),
        vm,
        policy,
        clocks: vec![0; p],
        tcache: (0..p).map(|_| Box::new(TransCache::new())).collect(),
        dynamic: cfg.policy == PolicyKind::DynamicRecolor,
        conflict_counts: cdpc_core::fastmap::FxMap64::new(),
        color_loads: vec![0; num_colors],
        recolorings: 0,
        instr: vec![0; p],
        fault_cycles: vec![0; p],
        imbalance: 0,
        sequential: 0,
        suppressed: 0,
        sync: 0,
        cfg: cfg.clone(),
        geometry,
        sampler: None,
    };
    // Thread the compiler's array layout into the memory system so every
    // classified miss carries its source array and landing color
    // (`Probe::on_classified_miss`). With a NullProbe the events are
    // no-ops and the tagging folds away.
    sim.mem.set_regions(compiled.region_map());

    // CDPC on Digital UNIX: serially touch every hinted page in coloring
    // order before the computation starts, so the bin-hopping kernel
    // produces the desired colors. (We model the kernel side with the hint
    // table directly — build_policy already returns it — so the touch pass
    // here only pre-faults the pages, reproducing the serialized-fault
    // start-up the paper describes.)
    if cfg.policy == PolicyKind::CdpcTouch {
        let hints = generate_hints_with(&compiled.summary, &cfg.machine_params(), cfg.hint_options)
            .expect("compiler-produced summaries are always valid");
        for &vpn in hints.order() {
            sim.ensure_mapped(0, vpn);
        }
    }
    sim
}

/// The measured pass: per-phase statistics weighted by occurrence count,
/// with optional interval sampling. Expects `sim` positioned exactly at
/// the end of the warm-up pass — whether it just executed one
/// ([`run_observed_inner`]) or was restored from a [`WarmCheckpoint`]
/// ([`run_from_checkpoint`]); the report is bit-identical either way.
fn measured_pass<'a, Q: Probe>(
    sim: &mut Sim<Q>,
    compiled: &'a CompiledProgram,
    sample_interval: Option<u64>,
    engine: &mut Option<&mut crate::engine::EngineDriver<'a, '_>>,
) -> Result<(RunReport, Option<IntervalSeries>), crate::engine::EngineAbort> {
    let cfg = sim.cfg.clone();
    let p = cfg.mem.num_cpus;
    sim.sampler = sample_interval.map(Sampler::new);
    let mut instructions = 0u64;
    let mut exec_cycles = 0u64;
    let mut stalls_total = StallBreakdown::default();
    let mut overheads = OverheadBreakdown::default();
    let mut elapsed = 0u64;
    let mut combined = 0u64;
    let mut weighted_cpu_stats: Vec<CpuStats> = vec![CpuStats::default(); p];
    let mut bus_occ = (0u64, 0u64, 0u64);
    let mut bus_busy_weighted = 0u64;

    for (phase_idx, phase) in compiled.phases.iter().enumerate() {
        let k = phase.count.max(1);
        sim.reset_phase_counters();
        sim.sampler_begin_phase(k);
        // Mirror the phase-weighting protocol to the probe: attribution
        // sinks fold each phase's events into their totals times `k`, so
        // their decompositions match this loop's aggregates exactly.
        sim.mem.probe_mut().on_phase_start(phase_idx, phase.count);
        let start: Vec<u64> = sim.clocks.clone();
        for stmt in &phase.stmts {
            exec_stmt_dispatch(&mut *sim, stmt, engine)?;
        }
        let phase_end_cycle = sim.clocks.iter().copied().max().unwrap_or(0);
        sim.mem.probe_mut().on_phase_end(phase_idx, phase_end_cycle);
        sim.sampler_end_phase();
        if cfg.validate_coherence || cfg!(debug_assertions) {
            sim.mem.validate_coherence();
        }
        let phase_stats = sim.mem.stats();

        let phase_instr: u64 = sim.instr.iter().sum();
        instructions += phase_instr * k;
        exec_cycles += phase_instr * k; // single-issue: 1 cycle per instr

        let s = StallBreakdown::from_mem_stats(&phase_stats);
        stalls_total.l2_hit += s.l2_hit * k;
        stalls_total.conflict += s.conflict * k;
        stalls_total.capacity += s.capacity * k;
        stalls_total.true_sharing += s.true_sharing * k;
        stalls_total.false_sharing += s.false_sharing * k;
        stalls_total.cold += s.cold * k;
        stalls_total.prefetch += s.prefetch * k;
        stalls_total.upgrade += s.upgrade * k;

        let agg = phase_stats.aggregate();
        overheads.kernel += (agg.tlb_stall_cycles + sim.fault_cycles.iter().sum::<u64>()) * k;
        overheads.load_imbalance += sim.imbalance * k;
        overheads.sequential += sim.sequential * k;
        overheads.suppressed += sim.suppressed * k;
        overheads.synchronization += sim.sync * k;

        let wall_start = start.iter().copied().max().unwrap_or(0);
        let wall_end = sim.clocks.iter().copied().max().unwrap_or(0);
        elapsed += (wall_end - wall_start) * k;
        let busy: u64 = sim
            .clocks
            .iter()
            .zip(&start)
            .map(|(e, s)| (e - s) * k)
            .sum();
        combined += busy;

        for (acc, st) in weighted_cpu_stats.iter_mut().zip(&phase_stats.cpus) {
            acc.merge(&scaled_cpu_stats(st, k));
        }
        let (d, w, u) = phase_stats.bus_occupancy;
        bus_occ.0 += d * k;
        bus_occ.1 += w * k;
        bus_occ.2 += u * k;
        bus_busy_weighted += (d + w + u) * k;
    }

    let bus = BusReport {
        data_cycles: bus_occ.0,
        writeback_cycles: bus_occ.1,
        upgrade_cycles: bus_occ.2,
        utilization: if elapsed > 0 {
            (bus_busy_weighted as f64 / elapsed as f64).min(1.0)
        } else {
            0.0
        },
    };

    let report = RunReport {
        name: compiled.name.clone(),
        num_cpus: p,
        policy: cfg.policy.label().to_string(),
        instructions,
        exec_cycles,
        stalls: stalls_total,
        overheads,
        elapsed_cycles: elapsed,
        combined_cycles: combined,
        bus,
        mem_stats: MemStats {
            cpus: weighted_cpu_stats,
            bus_occupancy: bus_occ,
            bus_transactions: 0,
        },
        fault_stats: sim.vm.stats(),
        recolorings: sim.recolorings,
        simulated_refs: sim.mem.lifetime_refs(),
    };
    let series = sim.sampler.take().map(|s| s.series);
    Ok((report, series))
}

/// The complete machine state at the end of a warm-up pass, captured once
/// and shared (via `Arc`) by every sweep point whose warm-up is
/// content-identical.
///
/// The warm-up pass depends on everything in the `RunConfig` and the
/// program's *content* — but not on the program's *name*, which only
/// labels the report. [`warm_checkpoint`] therefore keys the state by
/// [`RunKey::warm`](crate::memo::RunKey::warm) (the name-excluding half of
/// the content fingerprint), and [`run_from_checkpoint`] asserts the key
/// matches before replaying. Cloning is an `Arc` bump; the state itself is
/// immutable once captured.
#[derive(Clone)]
pub struct WarmCheckpoint {
    state: Arc<WarmState>,
}

/// The mutable half of a [`Sim`] as of the end of warm-up: memory-system
/// snapshot, address space, policy state (hint counters, bin-hopping
/// cursors), per-CPU clocks and translation caches, and the dynamic
/// recolorer's accumulators. Per-phase accumulators are *not* stored —
/// [`measured_pass`] resets them at every phase boundary anyway.
struct WarmState {
    mem: MemSnapshot,
    vm: AddressSpace,
    policy: Box<dyn MappingPolicy + Send + Sync>,
    clocks: Vec<u64>,
    tcache: Vec<Box<TransCache>>,
    conflict_counts: cdpc_core::fastmap::FxMap64<u32>,
    color_loads: Vec<u32>,
    recolorings: u64,
    warm: Fingerprint,
    num_cpus: usize,
}

impl WarmCheckpoint {
    /// The warm-key fingerprint this checkpoint was captured under —
    /// [`run_from_checkpoint`] only accepts `(compiled, cfg)` pairs whose
    /// [`run_key`](crate::memo::run_key)`.warm` equals this.
    pub fn warm_key(&self) -> Fingerprint {
        self.state.warm
    }

    /// Number of CPUs in the checkpointed machine.
    pub fn num_cpus(&self) -> usize {
        self.state.num_cpus
    }
}

/// Builds the machine and executes the warm-up pass only, capturing the
/// resulting state as a [`WarmCheckpoint`].
///
/// Sweep points that share warm-up content (same program content and
/// configuration, differing only in report name) can then each call
/// [`run_from_checkpoint`] to replay the measured pass from this shared
/// state instead of re-simulating the warm-up prefix — with bit-identical
/// reports, because the serial measured pass starts from byte-equal state
/// either way.
///
/// # Panics
///
/// Panics if physical memory is exhausted (raise
/// [`RunConfig::phys_slack`]) — a configuration error, not a program
/// outcome.
pub fn warm_checkpoint(compiled: &CompiledProgram, cfg: &RunConfig) -> WarmCheckpoint {
    let mut sim = build_sim(compiled, cfg, NullProbe);
    for phase in &compiled.phases {
        for stmt in &phase.stmts {
            exec_stmt_dispatch(&mut sim, stmt, &mut None)
                .unwrap_or_else(|_| unreachable!("serial path cannot abort"));
        }
        if cfg.validate_coherence || cfg!(debug_assertions) {
            sim.mem.validate_coherence();
        }
    }
    WarmCheckpoint {
        state: Arc::new(WarmState {
            mem: sim.mem.snapshot(),
            vm: sim.vm.clone(),
            policy: sim.policy.clone_box(),
            clocks: sim.clocks.clone(),
            tcache: sim.tcache.clone(),
            conflict_counts: sim.conflict_counts.clone(),
            color_loads: sim.color_loads.clone(),
            recolorings: sim.recolorings,
            warm: crate::memo::run_key(compiled, cfg).warm,
            num_cpus: cfg.mem.num_cpus,
        }),
    }
}

/// Runs only the measured pass of `(compiled, cfg)`, starting from a
/// [`WarmCheckpoint`] instead of executing the warm-up pass.
///
/// The report is bit-identical to [`run`]`(compiled, cfg)`: the serial
/// measured pass is a deterministic function of the warm machine state,
/// and the checkpoint stores that state exactly.
///
/// # Panics
///
/// Panics if the checkpoint's warm key does not match
/// [`run_key`](crate::memo::run_key)`(compiled, cfg).warm` — replaying
/// from a differently-warmed machine would silently corrupt results, so
/// the mismatch is fatal.
pub fn run_from_checkpoint(
    compiled: &CompiledProgram,
    cfg: &RunConfig,
    ckpt: &WarmCheckpoint,
) -> RunReport {
    let key = crate::memo::run_key(compiled, cfg);
    assert_eq!(
        key.warm, ckpt.state.warm,
        "checkpoint was warmed under a different (program, config) content"
    );
    let s = &*ckpt.state;
    let mut sim = Sim {
        mem: MemorySystem::with_probe(cfg.mem.clone(), NullProbe),
        vm: s.vm.clone(),
        policy: s.policy.clone_box(),
        clocks: s.clocks.clone(),
        tcache: s.tcache.clone(),
        dynamic: cfg.policy == PolicyKind::DynamicRecolor,
        conflict_counts: s.conflict_counts.clone(),
        color_loads: s.color_loads.clone(),
        recolorings: s.recolorings,
        instr: vec![0; s.num_cpus],
        fault_cycles: vec![0; s.num_cpus],
        imbalance: 0,
        sequential: 0,
        suppressed: 0,
        sync: 0,
        cfg: cfg.clone(),
        geometry: PageGeometry::new(cfg.mem.page_size),
        sampler: None,
    };
    sim.mem.set_regions(compiled.region_map());
    sim.mem.restore(&s.mem);
    let (report, _) = measured_pass(&mut sim, compiled, None, &mut None)
        .unwrap_or_else(|_| unreachable!("serial path cannot abort"));
    report
}

/// Routes one statement either through the parallel engine (parallel
/// statements while no sampler is armed) or the serial scheduler. Master
/// statements and sampled statements always run serially: the former are
/// single-stream by construction, and interval sampling needs the global
/// wall clock op by op — warm-up still parallelizes even when sampling
/// was requested, because the sampler is armed only for the measured
/// pass, so the returned series is bit-identical either way.
fn exec_stmt_dispatch<'a, Q: Probe>(
    sim: &mut Sim<Q>,
    stmt: &'a CompiledStmt,
    engine: &mut Option<&mut crate::engine::EngineDriver<'a, '_>>,
) -> Result<(), crate::engine::EngineAbort> {
    if let (Some(driver), CompiledStmt::Parallel { specs }) = (engine.as_deref_mut(), stmt) {
        if sim.sampler.is_none() {
            return crate::engine::run_parallel_stmt(driver, sim, specs);
        }
    }
    sim.exec_stmt(stmt);
    Ok(())
}

/// An [`AttributionProbe`] pre-sized for `compiled` on `cfg`'s machine:
/// one tensor row per declared array (plus the implicit "(other)" row),
/// one color per cache bin, and snapshot capacity for every phase — so a
/// run it observes allocates nothing on its behalf.
pub fn attribution_probe(compiled: &CompiledProgram, cfg: &RunConfig) -> AttributionProbe {
    AttributionProbe::new(
        compiled.arrays.len(),
        cfg.color_space().num_colors() as usize,
        cfg.mem.num_cpus,
        compiled.phases.len(),
    )
}

/// [`run_observed`] with a fresh [`AttributionProbe`] attached: the
/// returned probe holds the full `(array × color × cpu × class)` miss
/// tensor, histograms, and occupancy series for the measured pass. Its
/// per-class totals decompose the report's aggregate miss counts exactly
/// (both sides are phase-weighted by occurrence count).
pub fn run_attributed(
    compiled: &CompiledProgram,
    cfg: &RunConfig,
) -> (RunReport, AttributionProbe) {
    let mut probe = attribution_probe(compiled, cfg);
    let (report, _) = run_observed(compiled, cfg, &mut probe, None);
    (report, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
    use cdpc_compiler::{compile, CompileOptions};

    /// A small machine: 32 KB direct-mapped L2 (8 colors), tiny L1s.
    fn small_mem(cpus: usize) -> MemConfig {
        let mut m = MemConfig::paper_base(cpus);
        m.l1d = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
        m.l1i = cdpc_memsim::CacheConfig::new(1 << 10, 32, 2);
        m.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1);
        m
    }

    /// Two 12 KB arrays swept by a stencil: the full working set (6 data
    /// pages + 1 code page) fits the 8-color 32 KB cache, so CDPC can
    /// eliminate all conflicts.
    fn two_array_program() -> Program {
        let mut p = Program::new("mini");
        let a = p.array("A", 12 << 10);
        let b = p.array("B", 12 << 10);
        let nest = LoopNest::new("sweep", 12, 500)
            .with_access(Access::read(
                a,
                AccessPattern::Stencil {
                    unit_bytes: 1024,
                    halo_units: 1,
                    wraparound: false,
                },
            ))
            .with_access(Access::write(
                b,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 4,
        });
        p
    }

    fn run_with(policy: PolicyKind, cpus: usize) -> RunReport {
        let opts = CompileOptions::new(cpus).with_l2_cache(32 << 10);
        let compiled = compile(&two_array_program(), &opts).unwrap();
        run(&compiled, &RunConfig::new(small_mem(cpus), policy))
    }

    #[test]
    fn report_is_internally_consistent() {
        let r = run_with(PolicyKind::PageColoring, 2);
        assert_eq!(r.num_cpus, 2);
        assert!(r.instructions > 0);
        assert!(r.elapsed_cycles > 0);
        assert!(r.combined_cycles >= r.elapsed_cycles);
        assert!(r.mcpi() >= 0.0);
    }

    #[test]
    fn warmup_discards_cold_misses() {
        let r = run_with(PolicyKind::PageColoring, 2);
        assert_eq!(
            r.stalls.cold, 0,
            "steady state after warm-up must have no cold misses"
        );
    }

    #[test]
    fn cdpc_improves_on_or_matches_page_coloring() {
        let pc = run_with(PolicyKind::PageColoring, 2);
        let cdpc = run_with(PolicyKind::Cdpc, 2);
        assert!(
            cdpc.stalls.conflict <= pc.stalls.conflict,
            "CDPC must not create conflicts: cdpc={} pc={}",
            cdpc.stalls.conflict,
            pc.stalls.conflict
        );
    }

    #[test]
    fn cdpc_eliminates_conflicts_when_per_cpu_data_fits() {
        let cdpc = run_with(PolicyKind::Cdpc, 2);
        assert_eq!(
            cdpc.stalls.conflict, 0,
            "working set fits the 32 KB cache: zero conflict misses"
        );
    }

    #[test]
    fn touch_variant_matches_kernel_variant() {
        let a = run_with(PolicyKind::Cdpc, 2);
        let b = run_with(PolicyKind::CdpcTouch, 2);
        // Same coloring, same steady state (modulo page-fault timing which
        // the measured pass excludes).
        assert_eq!(a.stalls.conflict, b.stalls.conflict);
        assert_eq!(a.stalls.capacity, b.stalls.capacity);
    }

    #[test]
    fn policies_produce_different_colorings() {
        let pc = run_with(PolicyKind::PageColoring, 2);
        let bh = run_with(PolicyKind::BinHopping, 2);
        // Both must run; they generally differ in conflict behavior.
        assert!(pc.instructions == bh.instructions, "same work either way");
    }

    #[test]
    fn parallel_run_beats_uniprocessor() {
        let one = run_with(PolicyKind::Cdpc, 1);
        let two = run_with(PolicyKind::Cdpc, 2);
        assert!(
            two.elapsed_cycles < one.elapsed_cycles,
            "2 CPUs must be faster: {} vs {}",
            two.elapsed_cycles,
            one.elapsed_cycles
        );
    }

    #[test]
    fn hints_are_honored_with_ample_memory() {
        let r = run_with(PolicyKind::Cdpc, 2);
        assert!(r.fault_stats.preferred > 0);
        assert_eq!(
            r.fault_stats.fallback, 0,
            "no memory pressure, no fallbacks"
        );
        assert_eq!(r.fault_stats.honor_rate(), 1.0);
    }

    #[test]
    fn sequential_program_shows_sequential_overhead() {
        let mut p = Program::new("seq");
        let a = p.array("A", 8 << 10);
        p.phase(Phase {
            name: "s".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Sequential,
                nest: LoopNest::new("l", 8, 100).with_access(Access::read(
                    a,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                )),
            }],
            count: 1,
        });
        let compiled = compile(&p, &CompileOptions::new(4)).unwrap();
        let r = run(
            &compiled,
            &RunConfig::new(small_mem(4), PolicyKind::PageColoring),
        );
        assert!(r.overheads.sequential > 0);
        assert_eq!(r.overheads.suppressed, 0);
    }

    #[test]
    fn dynamic_recoloring_reduces_conflicts_at_a_price() {
        // A conflict layout with room to repair: A and C sit exactly one
        // cache (32 KB) apart so page coloring overlays them, while the
        // colors of the untouched gap array stay free for recoloring.
        let mut p = Program::new("dyn");
        let a = p.array("A", 16 << 10);
        let _gap = p.array("gap", 16 << 10);
        let c = p.array("C", 16 << 10);
        let nest = LoopNest::new("sweep", 16, 300)
            .with_access(Access::read(
                a,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ))
            .with_access(Access::write(
                c,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 6,
        });
        let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
        let pc = run(
            &compiled,
            &RunConfig::new(small_mem(2), PolicyKind::PageColoring),
        );
        let mut cfg = RunConfig::new(small_mem(2), PolicyKind::DynamicRecolor);
        cfg.recolor_threshold = 8;
        let dynamic = run(&compiled, &cfg);
        assert!(dynamic.recolorings > 0, "detector must fire");
        assert!(
            dynamic.stalls.conflict < pc.stalls.conflict,
            "recoloring must remove conflicts: {} vs {}",
            dynamic.stalls.conflict,
            pc.stalls.conflict
        );
        // And it pays kernel time that static policies don't.
        assert!(dynamic.overheads.kernel >= pc.overheads.kernel);
    }

    #[test]
    fn memory_pressure_forces_hint_fallbacks() {
        let opts = CompileOptions::new(2).with_l2_cache(32 << 10);
        let compiled = compile(&two_array_program(), &opts).unwrap();
        let mut cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
        cfg.phys_slack = 4.0;
        cfg.hog_fraction = 0.6;
        let pressured = run(&compiled, &cfg);
        assert!(
            pressured.fault_stats.fallback > 0,
            "hogged colors must force fallbacks"
        );
        assert!(pressured.fault_stats.honor_rate() < 1.0);
        // Unpressured baseline honors everything.
        let free = run_with(PolicyKind::Cdpc, 2);
        assert_eq!(free.fault_stats.honor_rate(), 1.0);
    }

    #[test]
    fn static_policies_never_recolor() {
        let r = run_with(PolicyKind::Cdpc, 2);
        assert_eq!(r.recolorings, 0);
    }

    #[test]
    fn observed_run_reproduces_plain_run() {
        let opts = CompileOptions::new(2).with_l2_cache(32 << 10);
        let compiled = compile(&two_array_program(), &opts).unwrap();
        let cfg = RunConfig::new(small_mem(2), PolicyKind::Cdpc);
        let plain = run(&compiled, &cfg);
        let mut probe = cdpc_obs::CountingProbe::default();
        let (observed, series) = run_observed(&compiled, &cfg, &mut probe, Some(10_000));
        assert_eq!(plain, observed, "probes must not perturb the simulation");
        assert!(series.is_some());
        assert!(probe.page_faults > 0, "warm-up faults must be observed");
        assert!(probe.hint_lookups > 0, "cdpc faults consult the hint table");
    }

    #[test]
    fn interval_series_totals_match_report_exactly() {
        let opts = CompileOptions::new(2).with_l2_cache(32 << 10);
        let compiled = compile(&two_array_program(), &opts).unwrap();
        let cfg = RunConfig::new(small_mem(2), PolicyKind::PageColoring);
        let mut probe = cdpc_obs::NullProbe;
        let (report, series) = run_observed(&compiled, &cfg, &mut probe, Some(5_000));
        let series = series.expect("sampling was requested");
        assert!(series.samples.len() > 1, "run must span several windows");
        let t = series.totals();
        assert_eq!(t.instructions, report.instructions);
        assert_eq!(t.l2_hit_stall, report.stalls.l2_hit);
        assert_eq!(t.conflict_stall, report.stalls.conflict);
        assert_eq!(t.capacity_stall, report.stalls.capacity);
        assert_eq!(t.true_sharing_stall, report.stalls.true_sharing);
        assert_eq!(t.false_sharing_stall, report.stalls.false_sharing);
        assert_eq!(t.cold_stall, report.stalls.cold);
        assert_eq!(t.prefetch_stall, report.stalls.prefetch);
        assert_eq!(t.upgrade_stall, report.stalls.upgrade);
        assert_eq!(t.stall_total(), report.stalls.total());
        assert_eq!(
            (t.bus_data, t.bus_writeback, t.bus_upgrade),
            report.mem_stats.bus_occupancy
        );
        let agg = report.mem_stats.aggregate();
        assert_eq!(t.misses, agg.misses.total());
        assert_eq!(t.tlb_misses, agg.tlb_misses);
        assert_eq!(t.refs, agg.data_refs + agg.ifetch_refs);
    }

    #[test]
    fn recolorings_are_observed() {
        let mut p = Program::new("dyn-obs");
        let a = p.array("A", 16 << 10);
        let _gap = p.array("gap", 16 << 10);
        let c = p.array("C", 16 << 10);
        let nest = LoopNest::new("sweep", 16, 300)
            .with_access(Access::read(
                a,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ))
            .with_access(Access::write(
                c,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            ));
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest,
            }],
            count: 6,
        });
        let compiled = compile(&p, &CompileOptions::new(2).with_l2_cache(32 << 10)).unwrap();
        let mut cfg = RunConfig::new(small_mem(2), PolicyKind::DynamicRecolor);
        cfg.recolor_threshold = 8;
        let mut probe = cdpc_obs::CountingProbe::default();
        let (report, _) = run_observed(&compiled, &cfg, &mut probe, None);
        assert!(report.recolorings > 0);
        assert_eq!(probe.recolorings, report.recolorings);
    }

    #[test]
    fn simulated_refs_count_the_whole_run() {
        let r = run_with(PolicyKind::PageColoring, 2);
        // The counter spans warm-up plus one measured pass, unweighted by
        // phase counts, so it is nonzero but independent of `count`.
        assert!(r.simulated_refs > 0);
        let r2 = run_with(PolicyKind::PageColoring, 2);
        assert_eq!(r.simulated_refs, r2.simulated_refs, "deterministic");
    }

    /// Pins the per-op accounting documented on [`Sim::exec_op`]: every
    /// `Instr(n)` charges `n` instructions, every Load/Store/Prefetch
    /// charges exactly one, and IFetch charges none (its instructions are
    /// the ones `Instr` already counted).
    #[test]
    fn accounted_instruction_totals_match_the_op_stream() {
        let opts = CompileOptions::new(2)
            .with_prefetch()
            .with_l2_cache(32 << 10);
        let compiled = compile(&two_array_program(), &opts).unwrap();
        let charge = |op: TraceOp| match op {
            TraceOp::Instr(n) => n,
            TraceOp::Load(_) | TraceOp::Store(_) | TraceOp::Prefetch { .. } => 1,
            TraceOp::IFetch(_) => 0,
        };
        let mut expected = 0u64;
        for phase in &compiled.phases {
            let mut per_pass = 0u64;
            for stmt in &phase.stmts {
                match stmt {
                    CompiledStmt::Parallel { specs } => {
                        for s in specs {
                            per_pass += s.ops().map(charge).sum::<u64>();
                        }
                    }
                    CompiledStmt::Master { spec, .. } => {
                        per_pass += spec.ops().map(charge).sum::<u64>();
                    }
                }
            }
            expected += per_pass * phase.count.max(1);
        }
        assert!(expected > 0);
        let r = run(&compiled, &RunConfig::new(small_mem(2), PolicyKind::Cdpc));
        assert_eq!(
            r.instructions, expected,
            "measured-pass instruction total must equal the stream's charges"
        );
    }

    #[test]
    fn uneven_iterations_cause_load_imbalance() {
        let mut p = Program::new("imb");
        let a = p.array("A", 33 << 10);
        p.phase(Phase {
            name: "s".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                // 33 iterations on 4 CPUs: blocked gives 9,9,9,6.
                nest: LoopNest::new("l", 33, 500).with_access(Access::read(
                    a,
                    AccessPattern::Partitioned { unit_bytes: 1024 },
                )),
            }],
            count: 1,
        });
        let compiled = compile(&p, &CompileOptions::new(4)).unwrap();
        let r = run(
            &compiled,
            &RunConfig::new(small_mem(4), PolicyKind::PageColoring),
        );
        assert!(r.overheads.load_imbalance > 0);
    }
}
