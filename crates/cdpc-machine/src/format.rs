//! Human-readable rendering of run reports — the textual equivalent of
//! the paper's Figure 2 bars.

use std::fmt::Write;

use cdpc_obs::JsonValue;

use crate::report::RunReport;

/// Renders a full Figure-2-style breakdown of one run: combined time with
/// execution/memory/overhead shares, the overhead categories, the MCPI
/// decomposition by miss class, and the bus view.
pub fn render_report(r: &RunReport) -> String {
    let mut out = String::new();
    let total = (r.exec_cycles + r.stalls.total() + r.overheads.total()).max(1);
    let pct = |x: u64| 100.0 * x as f64 / total as f64;

    let _ = writeln!(
        out,
        "{} · {} CPUs · policy {}",
        r.name, r.num_cpus, r.policy
    );
    let _ = writeln!(
        out,
        "  combined time {:>12} cycles  (wall {:>12})",
        total, r.elapsed_cycles
    );
    let _ = writeln!(
        out,
        "    execution {:5.1}%   memory {:5.1}%   overhead {:5.1}%",
        pct(r.exec_cycles),
        pct(r.stalls.total()),
        pct(r.overheads.total())
    );
    let o = &r.overheads;
    let _ = writeln!(
        out,
        "  overheads: kernel {:.1}% · imbalance {:.1}% · sequential {:.1}% · suppressed {:.1}% · sync {:.1}%",
        pct(o.kernel),
        pct(o.load_imbalance),
        pct(o.sequential),
        pct(o.suppressed),
        pct(o.synchronization)
    );
    let s = &r.stalls;
    let instr = r.instructions.max(1) as f64;
    let _ = writeln!(
        out,
        "  MCPI {:.3}: l2-hit {:.3} · conflict {:.3} · capacity {:.3} · true-sh {:.3} · false-sh {:.3} · prefetch {:.3} · upgrade {:.3}",
        r.mcpi(),
        s.l2_hit as f64 / instr,
        s.conflict as f64 / instr,
        s.capacity as f64 / instr,
        s.true_sharing as f64 / instr,
        s.false_sharing as f64 / instr,
        s.prefetch as f64 / instr,
        s.upgrade as f64 / instr
    );
    let _ = writeln!(
        out,
        "  bus: {:.1}% occupied (data {} · writeback {} · upgrade {})",
        r.bus.utilization * 100.0,
        r.bus.data_cycles,
        r.bus.writeback_cycles,
        r.bus.upgrade_cycles
    );
    if r.recolorings > 0 {
        let _ = writeln!(out, "  dynamic recolorings: {}", r.recolorings);
    }
    if r.fault_stats.preferred > 0 {
        let _ = writeln!(
            out,
            "  color preferences: {} issued, {:.1}% honored",
            r.fault_stats.preferred,
            r.fault_stats.honor_rate() * 100.0
        );
    }
    out
}

/// Renders the terminal `--top` summary of a miss-attribution document
/// (the JSON tree built by [`attribution_to_json`](crate::attribution_to_json)):
/// totals by miss class, the `top` worst `(array, color)` conflict cells,
/// and one summary line per histogram.
pub fn render_attribution_top(doc: &JsonValue, top: usize) -> String {
    let mut out = String::new();
    let attrib = doc.get("attribution").unwrap_or(doc);
    let u = |v: Option<&JsonValue>| v.and_then(|v| v.as_u64()).unwrap_or(0);

    let _ = writeln!(
        out,
        "{} · {} CPUs · policy {} — miss attribution",
        doc.get("workload").and_then(|v| v.as_str()).unwrap_or("?"),
        u(doc.get("num_cpus")),
        doc.get("policy").and_then(|v| v.as_str()).unwrap_or("?"),
    );

    if let Some(totals) = attrib.get("totals") {
        let _ = writeln!(out, "  attributed misses: {}", u(totals.get("misses")));
        if let Some(JsonValue::Object(pairs)) = totals.get("by_class") {
            let parts: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{} {}", k, v.as_u64().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "    by class: {}", parts.join(" · "));
        }
    }

    // Gather every (array, color, conflict-miss) cell and rank them.
    let mut cells: Vec<(&str, usize, u64)> = Vec::new();
    let mut conflict_total = 0u64;
    if let Some(arrays) = attrib.get("arrays").and_then(|v| v.as_array()) {
        for a in arrays {
            let name = a.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            if let Some(by_color) = a.get("conflict_by_color").and_then(|v| v.as_array()) {
                for (color, v) in by_color.iter().enumerate() {
                    let n = v.as_u64().unwrap_or(0);
                    conflict_total += n;
                    if n > 0 {
                        cells.push((name, color, n));
                    }
                }
            }
        }
    }
    cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(&b.1)));
    if cells.is_empty() {
        let _ = writeln!(out, "  no conflict misses attributed");
    } else {
        let _ = writeln!(
            out,
            "  top {} conflict cells ({} conflict misses total):",
            top.min(cells.len()),
            conflict_total
        );
        let _ = writeln!(
            out,
            "    {:<16} {:>6} {:>12} {:>7}",
            "array", "color", "conflicts", "share"
        );
        for (name, color, n) in cells.iter().take(top) {
            let _ = writeln!(
                out,
                "    {:<16} {:>6} {:>12} {:>6.1}%",
                name,
                color,
                n,
                100.0 * *n as f64 / conflict_total.max(1) as f64
            );
        }
    }

    if let Some(hists) = attrib.get("histograms") {
        for (key, label) in [
            ("miss_latency_cycles", "miss latency"),
            ("inter_miss_cycles", "inter-miss gap"),
            ("batch_ops", "run-loop batch"),
        ] {
            if let Some(h) = hists.get(key) {
                let count = u(h.get("count"));
                if count == 0 {
                    let _ = writeln!(out, "  {label}: (empty)");
                } else {
                    let _ = writeln!(
                        out,
                        "  {label}: n={} mean={:.1} p50={} p90={} p99={} max={}",
                        count,
                        h.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0),
                        u(h.get("p50")),
                        u(h.get("p90")),
                        u(h.get("p99")),
                        u(h.get("max")),
                    );
                }
            }
        }
    }
    out
}

/// A one-line summary for tables: `name policy cpus time mcpi`.
pub fn summary_line(r: &RunReport) -> String {
    format!(
        "{:<14} {:<14} {:>3}p {:>14} cycles  MCPI {:>7.3}  bus {:>5.1}%",
        r.name,
        r.policy,
        r.num_cpus,
        r.elapsed_cycles,
        r.mcpi(),
        r.bus.utilization * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BusReport, OverheadBreakdown, StallBreakdown};
    use cdpc_memsim::MemStats;
    use cdpc_vm::FaultStats;

    fn report() -> RunReport {
        RunReport {
            name: "test".into(),
            num_cpus: 4,
            policy: "cdpc".into(),
            instructions: 1000,
            exec_cycles: 1000,
            stalls: StallBreakdown {
                l2_hit: 100,
                conflict: 200,
                capacity: 300,
                ..Default::default()
            },
            overheads: OverheadBreakdown {
                kernel: 50,
                load_imbalance: 25,
                ..Default::default()
            },
            elapsed_cycles: 500,
            combined_cycles: 2000,
            bus: BusReport {
                data_cycles: 40,
                writeback_cycles: 10,
                upgrade_cycles: 2,
                utilization: 0.25,
            },
            mem_stats: MemStats::default(),
            fault_stats: FaultStats {
                faults: 10,
                preferred: 10,
                honored: 9,
                fallback: 1,
            },
            recolorings: 3,
            simulated_refs: 400,
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let s = render_report(&report());
        for needle in [
            "test · 4 CPUs",
            "execution",
            "overheads:",
            "MCPI",
            "conflict 0.200",
            "bus:",
            "recolorings: 3",
            "90.0% honored",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }

    #[test]
    fn summary_line_is_single_line() {
        let s = summary_line(&report());
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("cdpc"));
    }

    #[test]
    fn percentages_sum_to_about_100() {
        let r = report();
        let total = r.exec_cycles + r.stalls.total() + r.overheads.total();
        assert_eq!(total, 1000 + 600 + 75);
    }
}
