//! Whole-machine composition: CPUs, caches, bus, operating system, and the
//! run loop that executes compiled programs and produces reports.
//!
//! This crate plays the role of SimOS in the paper's methodology: it wires
//! the memory-hierarchy simulator (`cdpc-memsim`), the virtual-memory
//! substrate (`cdpc-vm`), and the compiler's reference streams
//! (`cdpc-compiler`) into one machine, runs the paper's
//! representative-execution-window methodology (warm-up pass + weighted
//! per-phase measurement), and reports the four views of Figure 2.
//!
//! # Example
//!
//! ```
//! use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
//! use cdpc_compiler::{compile, CompileOptions};
//! use cdpc_machine::{run, PolicyKind, RunConfig};
//! use cdpc_memsim::MemConfig;
//!
//! let mut prog = Program::new("demo");
//! let a = prog.array("A", 64 << 10);
//! prog.phase(Phase {
//!     name: "sweep".into(),
//!     stmts: vec![Stmt {
//!         kind: StmtKind::Parallel,
//!         nest: LoopNest::new("l", 64, 100)
//!             .with_access(Access::write(a, AccessPattern::Partitioned { unit_bytes: 1024 })),
//!     }],
//!     count: 2,
//! });
//! let compiled = compile(&prog, &CompileOptions::new(2))?;
//! let mut mem = MemConfig::paper_base(2);
//! mem.l2 = cdpc_memsim::CacheConfig::new(32 << 10, 128, 1); // scaled machine
//! let report = run(&compiled, &RunConfig::new(mem, PolicyKind::Cdpc));
//! assert!(report.instructions > 0);
//! # Ok::<(), cdpc_compiler::CompileError>(())
//! ```

pub(crate) mod engine;
pub mod export;
pub mod format;
pub mod htmlreport;
pub mod memo;
pub mod report;
pub mod run;
pub mod sweep;
pub mod validate;

pub use export::{attribution_to_json, report_to_json};
pub use format::{render_attribution_top, render_report, summary_line};
pub use htmlreport::attribution_to_html;
pub use memo::{run_key, ResultCache, RunKey, CACHE_FORMAT_VERSION};
pub use report::{geometric_mean, BusReport, OverheadBreakdown, RunReport, StallBreakdown};
pub use run::{
    attribution_probe, run, run_attributed, run_from_checkpoint, run_observed, warm_checkpoint,
    PolicyKind, RunConfig, SchedulerKind, WarmCheckpoint,
};
pub use sweep::{default_threads, run_sweep, run_sweep_memo, sweep_map, thread_budget, SweepJob};
pub use validate::{diff_prediction, PredictionDiff};
