//! Epoch-parallel intra-run execution engine: shards the memory system
//! across host threads while staying **bit-identical** to the serial
//! min-clock-batching scheduler.
//!
//! ## Why this is possible
//!
//! Almost every reference a scaled workload issues is *private*: an L1 or
//! L2 hit that touches no bus, no directory, and no other CPU's caches
//! (tomcatv at the snapshot scale misses on ~1 in 12 references). The
//! serial scheduler still interleaves those hits in global clock order,
//! but nothing about their outcome depends on that order — only the rare
//! cross-CPU references ("hazards": L2 misses, coherence upgrades,
//! prefetches) do.
//!
//! ## How it works
//!
//! Each simulated CPU's private state — its caches, TLB, shadow cache, and
//! statistics — is detached as a [`Lane`] and executed span by span
//! through [`Lane::access_private`], which executes a reference *only*
//! when it provably touches no shared state and otherwise **parks** the
//! CPU with nothing committed. Parked references are executed by the
//! coordinator through the ordinary serial
//! [`MemorySystem`](cdpc_memsim::MemorySystem) path — in exact global
//! `(clock, cpu)` order, which PR 4's scheduler-equivalence argument shows
//! is the serial execution order.
//!
//! **Placement** decides which host thread runs a private span, and only
//! wall-clock depends on it. A statement starts with every CPU's stream on
//! the worker pool (`sim_threads - 1` workers; the coordinator rides the
//! calling thread). After serializing a hazard, though, the coordinator
//! continues the resumed stream *inline*: the resumed CPU was the global
//! clock minimum, so it would gate the next hazard almost immediately, and
//! shipping it out would put a cross-thread round trip on the serial
//! critical path — the mistake that makes naive fork/join sharding slower
//! than the serial loop. Only when the hazard's latency pushed the CPU
//! well past every pending hazard key ([`SHIP_SLACK`]) is the stream
//! shipped back to a worker, where its private span genuinely overlaps
//! with hazard processing. On a single-core host the engine thus degrades
//! to near-serial cost (and all spin budgets drop to zero); on a
//! multi-core host the ahead-of-hazard spans run concurrently.
//!
//! Two gates delay a parked hazard until it is provably *the* next
//! cross-CPU action in serial order:
//!
//! 1. **Watermark gate** — every still-running CPU has published a
//!    monotonically increasing pre-op `(clock, cpu)` watermark past the
//!    hazard's key, so no earlier hazard can still appear. (A stale read
//!    only under-reports progress: Relaxed ordering is sufficient.)
//! 2. **Victim gate** — every CPU holding the hazard's cache line (per
//!    the directory, which private execution never modifies) is parked or
//!    finished, so the hazard mutates no cache a worker is touching.
//!
//! A worker may have *speculated* private hits past the hazard's clock.
//! The per-span **journal** of `(clock, line, shadow-miss)` entries
//! detects the rare case where that speculation was wrong — the hazard's
//! line appears later in a victim's span, or an invalidation would have
//! reordered the victim's shadow-cache evictions — and the engine then
//! aborts the entire run and re-runs it serially ([`EngineAbort`]), the
//! bit-identical slow path. Everything else commutes: private effects on
//! shared counters (reference totals, sharing-tracker writes, TLB probe
//! events) are buffered per lane in a [`LaneFx`] and applied at park time,
//! before any reference that could observe them.
//!
//! Batch-sensitive probes ([`Probe::BATCH_SENSITIVE`]) additionally need
//! the serial scheduler's `on_run_batch` decisions, which the engine never
//! makes; it records every per-op clock instead and replays the exact
//! min-clock batching discipline over the log at the end of each parallel
//! statement ([`replay_batches`]).
//!
//! There is no `unsafe` here: all cross-thread state transfers move
//! ownership through mutex-backed mailboxes, and the only shared mutable
//! data are the atomic watermarks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use cdpc_compiler::trace::{OpCursor, OpSpec, TraceOp};
use cdpc_compiler::CompiledProgram;
use cdpc_memsim::{blank_lane, AccessKind, Lane, LaneFx, LaneStep, MemConfig};
use cdpc_obs::{IntervalSeries, Probe};
use cdpc_vm::addr::{PageGeometry, Ppn};

use crate::report::RunReport;
use crate::run::{run_observed_inner, RunConfig, Sim, TransCache};

/// The engine hit a speculation conflict it cannot repair in place; the
/// whole run must be re-executed serially (after
/// [`Probe::on_engine_restart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EngineAbort;

/// Ops a worker executes between two inbox checks before re-picking the
/// minimum-clock CPU it owns. Small enough to keep multi-CPU workers fair
/// and resume messages timely, large enough to amortize the checks.
const SPAN_OPS: usize = 256;

/// How long the coordinator sleeps when every pending hazard is gated on
/// a *watermark* (worker progress is not signalled through the mailbox
/// condvar, so this is a bounded poll, not a lost-wakeup hazard).
const GATE_POLL: Duration = Duration::from_micros(50);

/// Coordinator / worker spin iterations before falling back to a blocking
/// or timed wait (multi-core hosts only; see [`EngineShared::spin_rounds`]).
const SPIN_ROUNDS: u32 = 20_000;

/// How far (in cycles) a just-resumed CPU must be ahead of the earliest
/// pending hazard before the coordinator ships its stream to a worker
/// instead of continuing it inline. Below this the CPU would gate that
/// hazard almost immediately, putting a cross-thread round trip on the
/// serial critical path; above it the stream has real private work that
/// can overlap with hazard processing.
const SHIP_SLACK: u64 = 512;

/// One conflict-journal entry: a privately executed reference in the
/// current speculation span.
#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    /// The reference's pre-op clock (its scheduler key; the CPU index is
    /// implicit — one journal per CPU).
    clock: u64,
    /// The external-cache line it touched.
    line: u64,
    /// Whether it was a write. A privately executed write proves the
    /// owner held the line `Modified`, which any cross-CPU touch of the
    /// line (even a read's downgrade) would have changed; private reads
    /// commute with downgrades and writebacks.
    write: bool,
    /// The line the reference's shadow-cache insertion evicted, if any —
    /// evictions are what make insertions non-commutative with an
    /// invalidation's shadow removal, and the evicted key lets the
    /// speculation check reconstruct shadow membership at an earlier
    /// serial position.
    shadow_evicted: Option<u64>,
}

/// Everything that travels with a simulated CPU between the coordinator
/// and its worker: the detached cache lane, the micro-translation cache,
/// the local clock/instruction counters, the deferred commutative
/// effects, the conflict journal, and (for batch-sensitive probes) the
/// per-op clock log. Boxed so a hand-off moves 8 bytes.
pub(crate) struct Bundle {
    cpu: usize,
    lane: Lane,
    tcache: Box<TransCache>,
    clock: u64,
    instr: u64,
    record_batches: bool,
    fx: LaneFx,
    journal: Vec<JournalEntry>,
    batch_clocks: Vec<u64>,
}

enum ToWorker<'a> {
    /// A new parallel statement: fresh op stream for this CPU.
    Start {
        bundle: Box<Bundle>,
        spec: &'a OpSpec,
    },
    /// A stream the coordinator decided to ship back out (it resumed the
    /// parked reference and the CPU is now comfortably ahead of every
    /// pending hazard).
    Resume {
        bundle: Box<Bundle>,
        cursor: OpCursor<'a>,
    },
    /// The run (or the engine) is over.
    Exit,
}

/// Worker → coordinator: the CPU parked on `op` (which the coordinator
/// must execute serially), or finished its stream (`op == None`). The op
/// cursor travels with the bundle so the coordinator can continue the
/// stream *inline* instead of paying a cross-thread round trip.
struct Park<'a> {
    bundle: Box<Bundle>,
    cursor: OpCursor<'a>,
    op: Option<TraceOp>,
}

/// An unbounded MPSC mailbox: mutex-backed deque plus a condvar and a
/// cheap "has mail" flag so busy receivers can skip the lock.
struct Mailbox<T> {
    q: Mutex<VecDeque<T>>,
    cv: Condvar,
    flag: AtomicBool,
}

impl<T> Mailbox<T> {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            flag: AtomicBool::new(false),
        }
    }

    fn send(&self, msg: T) {
        let mut q = self.q.lock().expect("mailbox poisoned");
        q.push_back(msg);
        self.flag.store(true, Ordering::Release);
        self.cv.notify_one();
    }

    /// Moves any queued messages into `out` without blocking.
    fn try_drain(&self, out: &mut Vec<T>) {
        if !self.flag.load(Ordering::Acquire) {
            return;
        }
        let mut q = self.q.lock().expect("mailbox poisoned");
        self.flag.store(false, Ordering::Relaxed);
        out.extend(q.drain(..));
    }

    /// Blocks until at least one message is queued, then drains.
    fn drain_blocking(&self, out: &mut Vec<T>) {
        let mut q = self.q.lock().expect("mailbox poisoned");
        while q.is_empty() {
            q = self.cv.wait(q).expect("mailbox poisoned");
        }
        self.flag.store(false, Ordering::Relaxed);
        out.extend(q.drain(..));
    }

    /// Waits up to `dur` for a message, then drains whatever is queued
    /// (possibly nothing). Used when the coordinator is gated on worker
    /// *watermarks*, which advance without mailbox signals.
    fn drain_timeout(&self, out: &mut Vec<T>, dur: Duration) {
        let q = self.q.lock().expect("mailbox poisoned");
        let q = if q.is_empty() {
            self.cv.wait_timeout(q, dur).expect("mailbox poisoned").0
        } else {
            q
        };
        let mut q = q;
        self.flag.store(false, Ordering::Relaxed);
        out.extend(q.drain(..));
    }
}

/// State shared between the coordinator and the worker threads for one
/// engine-backed run.
pub(crate) struct EngineShared<'a> {
    cfg: MemConfig,
    geometry: PageGeometry,
    workers: usize,
    /// Per-CPU published progress: `pack(clock, cpu)` of the reference the
    /// owning worker is *about to* execute. Monotone within a span; only
    /// consulted for CPUs in the `Running` control state.
    watermarks: Vec<AtomicU64>,
    /// Per-worker inboxes (coordinator → worker).
    inboxes: Vec<Mailbox<ToWorker<'a>>>,
    /// The coordinator's inbox (workers → coordinator).
    coord: Mailbox<Park<'a>>,
    /// Spin budget before a blocking/timed wait. On a single-core host
    /// spinning only steals the core from the thread being waited on, so
    /// the budget drops to zero there.
    spin_rounds: u32,
}

/// Packs a scheduler key into one atomic word. Clocks stay far below
/// 2^56 (a billion-cycle run is ~2^30) and the simulator caps at 32 CPUs,
/// so the packing is exact and preserves lexicographic `(clock, cpu)`
/// order.
#[inline]
fn pack(clock: u64, cpu: usize) -> u64 {
    debug_assert!(clock < 1 << 56, "clock overflows watermark packing");
    (clock << 8) | cpu as u64
}

impl<'a> EngineShared<'a> {
    fn new(cfg: &RunConfig) -> Self {
        let p = cfg.mem.num_cpus;
        debug_assert!(p <= 32, "directory sharer masks cap the engine at 32 CPUs");
        let workers = cfg.sim_threads.saturating_sub(1).clamp(1, p);
        Self {
            cfg: cfg.mem.clone(),
            geometry: PageGeometry::new(cfg.mem.page_size),
            workers,
            watermarks: (0..p).map(|_| AtomicU64::new(0)).collect(),
            inboxes: (0..workers).map(|_| Mailbox::new()).collect(),
            coord: Mailbox::new(),
            spin_rounds: if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
                SPIN_ROUNDS
            } else {
                0
            },
        }
    }

    /// Static CPU → worker assignment (round-robin).
    fn worker_of(&self, cpu: usize) -> usize {
        cpu % self.workers
    }

    fn send_to_worker(&self, cpu: usize, msg: ToWorker<'a>) {
        self.inboxes[self.worker_of(cpu)].send(msg);
    }

    fn shutdown(&self) {
        for inbox in &self.inboxes {
            inbox.send(ToWorker::Exit);
        }
    }
}

/// Sends `Exit` to every worker when dropped, so the thread scope can
/// join even when the coordinator unwinds (abort or panic).
struct ShutdownGuard<'s, 'a>(&'s EngineShared<'a>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Per-CPU control state, owned by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctl {
    /// On a worker, executing private references.
    Running,
    /// Waiting for the coordinator to execute its parked reference.
    Parked,
    /// Stream exhausted for the current statement.
    Done,
}

/// A parked reference awaiting serial execution. `key_clock` is the CPU's
/// clock *at park time* — the reference's scheduler key. (Executing the
/// reference may first charge page-fault cycles, which moves the live
/// clock but not the key; serial order is decided on pre-op keys.)
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    op: TraceOp,
    key_clock: u64,
}

/// The coordinator's per-run state: bundle parking slots, control states,
/// pending hazards, and recycled scratch storage.
pub(crate) struct EngineDriver<'a, 's> {
    shared: &'s EngineShared<'a>,
    /// Bundles at home between statements (every CPU's, after each
    /// statement completes) or for `Done` CPUs mid-statement.
    bundles: Vec<Option<Box<Bundle>>>,
    /// Bundles of `Parked` CPUs (the coordinator holds them while their
    /// hazard waits).
    parked: Vec<Option<Box<Bundle>>>,
    /// Op cursors of `Parked` CPUs (they travel with the bundle).
    cursors: Vec<Option<OpCursor<'a>>>,
    pending: Vec<Option<PendingOp>>,
    ctl: Vec<Ctl>,
    /// CPUs whose stream finished for the current statement.
    stmt_done: usize,
    /// Final-span journals of `Done` CPUs — still consulted by the victim
    /// gate for hazards executing after the stream ended.
    done_journals: Vec<Vec<JournalEntry>>,
    /// Per-CPU post-op clock logs for batch replay (batch-sensitive
    /// probes only); capacity recycled across statements.
    logs: Vec<Vec<u64>>,
    scratch: Vec<Park<'a>>,
}

impl<'a, 's> EngineDriver<'a, 's> {
    fn new(cfg: &RunConfig, shared: &'s EngineShared<'a>) -> Self {
        let p = cfg.mem.num_cpus;
        Self {
            shared,
            bundles: (0..p)
                .map(|cpu| {
                    Some(Box::new(Bundle {
                        cpu,
                        lane: blank_lane(&cfg.mem),
                        tcache: Box::new(TransCache::new()),
                        clock: 0,
                        instr: 0,
                        record_batches: false,
                        fx: LaneFx::default(),
                        journal: Vec::new(),
                        batch_clocks: Vec::new(),
                    }))
                })
                .collect(),
            parked: (0..p).map(|_| None).collect(),
            cursors: (0..p).map(|_| None).collect(),
            pending: vec![None; p],
            ctl: vec![Ctl::Done; p],
            stmt_done: 0,
            done_journals: vec![Vec::new(); p],
            logs: vec![Vec::new(); p],
            scratch: Vec::new(),
        }
    }
}

/// Entry point from [`run_observed`](crate::run::run_observed): spawns the
/// worker pool once for the whole run, executes the run loop on the
/// calling thread with the engine attached, and tears the pool down on
/// the way out (normal return, abort, or panic).
pub(crate) fn run_engine<'a, P: Probe>(
    compiled: &'a CompiledProgram,
    cfg: &RunConfig,
    probe: &mut P,
    sample_interval: Option<u64>,
) -> Result<(RunReport, Option<IntervalSeries>), EngineAbort> {
    let shared: EngineShared<'a> = EngineShared::new(cfg);
    std::thread::scope(|scope| {
        let _guard = ShutdownGuard(&shared);
        for w in 0..shared.workers {
            let sh = &shared;
            scope.spawn(move || worker_loop(sh, w));
        }
        let mut driver = EngineDriver::new(cfg, &shared);
        run_observed_inner(compiled, cfg, probe, sample_interval, Some(&mut driver))
    })
}

/// Executes one parallel statement through the engine: launches every
/// CPU's stream onto the worker pool, serializes hazards in global key
/// order, replays scheduler batches if the probe needs them, and closes
/// with the ordinary barrier.
pub(crate) fn run_parallel_stmt<'a, Q: Probe>(
    driver: &mut EngineDriver<'a, '_>,
    sim: &mut Sim<Q>,
    specs: &'a [OpSpec],
) -> Result<(), EngineAbort> {
    let p = specs.len();
    debug_assert_eq!(p, sim.clocks.len(), "one spec per CPU");
    let record_batches = Q::BATCH_SENSITIVE;
    let start_clocks: Vec<u64> = if record_batches {
        sim.clocks.clone()
    } else {
        Vec::new()
    };

    // Launch: detach every CPU's lane and translation cache into its
    // bundle and hand the bundle to its worker.
    for (cpu, spec) in specs.iter().enumerate() {
        let mut b = driver.bundles[cpu]
            .take()
            .expect("bundles are home between statements");
        debug_assert_eq!(b.cpu, cpu);
        b.clock = sim.clocks[cpu];
        b.instr = sim.instr[cpu];
        b.record_batches = record_batches;
        b.journal = std::mem::take(&mut driver.done_journals[cpu]);
        b.journal.clear();
        b.batch_clocks = std::mem::take(&mut driver.logs[cpu]);
        b.batch_clocks.clear();
        driver.shared.watermarks[cpu].store(pack(b.clock, cpu), Ordering::Relaxed);
        sim.mem.swap_lane(cpu, &mut b.lane);
        std::mem::swap(&mut sim.tcache[cpu], &mut b.tcache);
        driver.ctl[cpu] = Ctl::Running;
        driver
            .shared
            .send_to_worker(cpu, ToWorker::Start { bundle: b, spec });
    }

    let mut scratch = std::mem::take(&mut driver.scratch);
    driver.stmt_done = 0;
    let mut idle_rounds = 0u32;
    while driver.stmt_done < p {
        driver.shared.coord.try_drain(&mut scratch);
        let got_mail = !scratch.is_empty();
        for park in scratch.drain(..) {
            absorb_park(driver, sim, park.bundle, park.cursor, park.op);
        }
        let executed = match pump_hazards(driver, sim, p) {
            Ok(n) => n,
            Err(abort) => {
                driver.scratch = scratch;
                return Err(abort);
            }
        };
        if driver.stmt_done < p && !got_mail && executed == 0 {
            // Gated on worker progress. On a multi-core host watermarks
            // advance in nanoseconds, so spin before paying a condvar
            // sleep; on a single-core host the spin budget is zero and we
            // go straight to the timed wait, yielding the core to the
            // worker we are waiting for. (A timed wait, not a blocking
            // one: watermark progress is published without a mailbox
            // signal.)
            idle_rounds += 1;
            if idle_rounds < driver.shared.spin_rounds {
                std::hint::spin_loop();
            } else {
                driver.shared.coord.drain_timeout(&mut scratch, GATE_POLL);
            }
            continue;
        }
        idle_rounds = 0;
    }
    driver.scratch = scratch;

    if record_batches {
        replay_batches(sim, &start_clocks, &driver.logs);
    }
    sim.parallel_barrier(p);
    Ok(())
}

/// Re-attaches a parked (or finished) CPU's private state to the live
/// memory system, applies its deferred commutative effects *before* any
/// hazard can observe them, and records the park. Used for both worker
/// park messages and inline parks the coordinator produced itself.
fn absorb_park<'a, Q: Probe>(
    driver: &mut EngineDriver<'a, '_>,
    sim: &mut Sim<Q>,
    mut b: Box<Bundle>,
    cursor: OpCursor<'a>,
    op: Option<TraceOp>,
) {
    let cpu = b.cpu;
    sim.mem.swap_lane(cpu, &mut b.lane);
    std::mem::swap(&mut sim.tcache[cpu], &mut b.tcache);
    sim.mem.apply_lane_fx(cpu, &mut b.fx);
    sim.clocks[cpu] = b.clock;
    sim.instr[cpu] = b.instr;
    match op {
        Some(op) => {
            driver.ctl[cpu] = Ctl::Parked;
            driver.pending[cpu] = Some(PendingOp {
                op,
                key_clock: b.clock,
            });
            driver.parked[cpu] = Some(b);
            driver.cursors[cpu] = Some(cursor);
        }
        None => {
            driver.ctl[cpu] = Ctl::Done;
            driver.stmt_done += 1;
            driver.done_journals[cpu] = std::mem::take(&mut b.journal);
            if b.record_batches {
                driver.logs[cpu] = std::mem::take(&mut b.batch_clocks);
            }
            driver.bundles[cpu] = Some(b);
        }
    }
}

/// Executes every pending hazard whose gates pass, in global key order.
/// Returns how many were executed (0 means the coordinator should wait
/// for worker progress).
fn pump_hazards<'a, Q: Probe>(
    driver: &mut EngineDriver<'a, '_>,
    sim: &mut Sim<Q>,
    p: usize,
) -> Result<usize, EngineAbort> {
    let mut executed = 0usize;
    // The minimum-key parked hazard is the only candidate each round:
    // hazards must execute in serial order, and every other parked key is
    // larger by construction.
    while let Some(hcpu) = (0..p)
        .filter(|&c| driver.ctl[c] == Ctl::Parked)
        .min_by_key(|&c| (driver.pending[c].expect("parked ⇒ pending").key_clock, c))
    {
        let PendingOp { op, key_clock } = driver.pending[hcpu].expect("parked ⇒ pending");
        let hkey = pack(key_clock, hcpu);

        // Gate 1 (watermarks): every running CPU must have published
        // progress past this key, or an earlier hazard could still
        // appear. Stale (low) reads only delay us — never reorder.
        if (0..p).any(|c| {
            driver.ctl[c] == Ctl::Running
                && driver.shared.watermarks[c].load(Ordering::Relaxed) <= hkey
        }) {
            break;
        }

        // The reference is now definitively next in serial order, so its
        // page fault (if any) lands exactly where the serial run would
        // put it. A hazard that cannot touch any other CPU's state — a
        // dropped prefetch, or a demand hit in the owner's own caches
        // that parked for translation or inflight bookkeeping — executes
        // immediately: gate 1 already proved its position, and no victim
        // can observe it. Cross-CPU hazards additionally pass the victim
        // gate and the speculation check. (When the victim gate defers
        // us, we retry on the next pump: re-translation goes through the
        // now-warm translation cache and the prefetch screen is
        // idempotent, so nothing is double-charged.)
        match op {
            TraceOp::Load(va) | TraceOp::Store(va) | TraceOp::IFetch(va) => {
                let pa = sim.translate_demand(hcpu, va).1;
                let is_write = matches!(op, TraceOp::Store(_));
                if sim.mem.demand_interacts(hcpu, pa, is_write) {
                    let line = sim.cfg.mem.l2.line_of(pa.0);
                    match victim_gate(driver, sim, p, hcpu, key_clock, line, is_write)? {
                        Gate::Blocked => break,
                        Gate::Clear => {}
                    }
                }
                sim.exec_demand_translated(hcpu, op, pa);
            }
            TraceOp::Prefetch { addr, exclusive } => {
                let pa = sim.prefetch_pa(hcpu, addr);
                let now = sim.clocks[hcpu];
                match sim.mem.prefetch_screen(hcpu, now, addr, pa) {
                    Some(dropped) => sim.finish_prefetch(hcpu, dropped),
                    None => {
                        let line = sim.cfg.mem.l2.line_of(pa.0);
                        match victim_gate(driver, sim, p, hcpu, key_clock, line, exclusive)? {
                            Gate::Blocked => break,
                            Gate::Clear => {}
                        }
                        let out = sim.mem.prefetch_issue(hcpu, now, pa, exclusive);
                        sim.finish_prefetch(hcpu, out);
                    }
                }
            }
            TraceOp::Instr(_) => unreachable!("instruction ops never park"),
        }

        // Resume the stream: detach the lane again.
        let mut b = driver.parked[hcpu].take().expect("parked bundle");
        let mut cursor = driver.cursors[hcpu].take().expect("parked cursor");
        driver.pending[hcpu] = None;
        if b.record_batches {
            b.batch_clocks.push(sim.clocks[hcpu]);
        }
        b.clock = sim.clocks[hcpu];
        b.instr = sim.instr[hcpu];
        // The span that just ended is fully ordered before every future
        // hazard (its keys are at most this hazard's key), so its journal
        // can never conflict again.
        b.journal.clear();
        driver.shared.watermarks[hcpu].store(pack(b.clock, hcpu), Ordering::Relaxed);
        sim.mem.swap_lane(hcpu, &mut b.lane);
        std::mem::swap(&mut sim.tcache[hcpu], &mut b.tcache);
        driver.ctl[hcpu] = Ctl::Running;
        executed += 1;

        // Placement. The resumed CPU was the global minimum, so it is the
        // CPU most likely to gate the next hazard: shipping it to a worker
        // would put a cross-thread round trip on the serial critical path.
        // The coordinator therefore continues the stream *inline* — unless
        // the hazard's latency pushed the CPU well past every pending
        // hazard key, in which case its private span is real overlap and
        // goes to a worker. (Either placement is bit-identical; only
        // wall-clock differs.)
        let next_key = (0..p)
            .filter(|&c| driver.ctl[c] == Ctl::Parked)
            .map(|c| driver.pending[c].expect("parked ⇒ pending").key_clock)
            .min();
        let ship = next_key.is_some_and(|k| b.clock > k.saturating_add(SHIP_SLACK));
        if ship {
            driver
                .shared
                .send_to_worker(hcpu, ToWorker::Resume { bundle: b, cursor });
            continue;
        }
        loop {
            match run_span(driver.shared, &mut cursor, &mut b) {
                SpanEnd::Budget => continue,
                SpanEnd::Park(op) => {
                    absorb_park(driver, sim, b, cursor, Some(op));
                    break;
                }
                SpanEnd::Done => {
                    absorb_park(driver, sim, b, cursor, None);
                    break;
                }
            }
        }
    }
    Ok(executed)
}

enum Gate {
    /// A victim is still running; retry once it parks or finishes.
    Blocked,
    /// Safe to execute the hazard now.
    Clear,
}

/// Gate 2 (victims) plus the speculation check, for a hazard by `hcpu`
/// with scheduler key `(key_clock, hcpu)` on external-cache line `line`.
///
/// Every *other* holder of the line (per the directory, which private
/// execution never mutates, so the set is stable while we wait) must be
/// parked or done — the hazard may invalidate, downgrade, or source from
/// their caches, which must not race a worker. Once they are, each
/// holder's journal is checked for speculation the hazard would have
/// changed: a private touch of this line *after* the hazard's serial
/// position, or — when the hazard invalidates (`drop_line` also edits the
/// victim's shadow cache) — a later shadow-cache insertion whose
/// replacement decisions the invalidation would have altered. Either one
/// aborts the run ([`EngineAbort`]); both are rare.
fn victim_gate<Q: Probe>(
    driver: &EngineDriver<'_, '_>,
    sim: &Sim<Q>,
    p: usize,
    hcpu: usize,
    key_clock: u64,
    line: u64,
    invalidating: bool,
) -> Result<Gate, EngineAbort> {
    let holders = sim.mem.line_holders(line) & !(1u32 << hcpu);
    if (0..p).any(|c| holders & (1 << c) != 0 && driver.ctl[c] == Ctl::Running) {
        return Ok(Gate::Blocked);
    }
    for v in 0..p {
        if holders & (1 << v) == 0 {
            continue;
        }
        let journal: &[JournalEntry] = match driver.ctl[v] {
            Ctl::Parked => &driver.parked[v].as_ref().expect("parked bundle").journal,
            Ctl::Done => &driver.done_journals[v],
            Ctl::Running => unreachable!("victims are parked or done here"),
        };
        let mut later_eviction = false;
        let mut evicted_hazard_line = false;
        for e in journal {
            let later = e.clock > key_clock || (e.clock == key_clock && v > hcpu);
            if !later {
                continue;
            }
            // An invalidation (`drop_line`) removes the victim's copy, so
            // any later touch of the line was mis-speculated (a read that
            // hit would have missed). A non-invalidating hazard (read-miss
            // service, shared prefetch) at most downgrades the victim
            // `M/E → S` and writes back: later private *reads* still hit
            // identically, but a later private *write* proves the victim
            // held `Modified`, which the downgrade would have taken away
            // before the write ran.
            if e.line == line && (invalidating || e.write) {
                return Err(EngineAbort);
            }
            later_eviction |= e.shadow_evicted.is_some();
            evicted_hazard_line |= e.shadow_evicted == Some(line);
        }
        // Shadow rule: `drop_line` also removes the line from the victim's
        // shadow cache. Removing one key commutes with later insertions of
        // *other* keys — same final contents and LRU order — unless an
        // insertion ran at capacity and evicted: the removal would have
        // freed a slot first and changed which keys got evicted. So the
        // speculation only diverges if the line was in the shadow at the
        // hazard's serial position AND some later insertion evicted.
        // Membership back then is reconstructible because no later entry
        // references the line (checked above, so nothing re-inserted it):
        // present now, or evicted since by a later insertion.
        if invalidating
            && later_eviction
            && (evicted_hazard_line || sim.mem.shadow_contains(v, line))
        {
            return Err(EngineAbort);
        }
    }
    Ok(Gate::Clear)
}

/// Replays the serial min-clock-batching discipline over the recorded
/// per-op clock logs and fires `on_run_batch` exactly as the serial
/// scheduler would have. The algorithm mirrors
/// `Sim::exec_stmt`'s `MinClockBatch` arm line for line; since the
/// per-op clocks are bit-identical (that is the engine's core
/// guarantee), so are the batch decisions.
fn replay_batches<Q: Probe>(sim: &mut Sim<Q>, start_clocks: &[u64], logs: &[Vec<u64>]) {
    let p = logs.len();
    let mut pos = vec![0usize; p];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..p).map(|c| Reverse((start_clocks[c], c))).collect();
    while let Some(Reverse((_, cpu))) = heap.pop() {
        let bound = heap.peek().map(|r| r.0);
        let mut batch_ops = 0u64;
        while let Some(&clk) = logs[cpu].get(pos[cpu]) {
            pos[cpu] += 1;
            batch_ops += 1;
            if bound.is_some_and(|b| (clk, cpu) >= b) {
                heap.push(Reverse((clk, cpu)));
                break;
            }
        }
        if batch_ops > 0 {
            sim.mem.probe_mut().on_run_batch(cpu, batch_ops);
        }
    }
}

/// One simulated CPU's seat on a worker. A seat exists exactly while the
/// worker owns the CPU's stream (bundle *and* cursor); parking sends both
/// back to the coordinator and removes the seat.
struct Slot<'a> {
    cpu: usize,
    cursor: OpCursor<'a>,
    bundle: Box<Bundle>,
}

/// How a span of private execution ended.
enum SpanEnd {
    /// Op budget exhausted; re-pick the minimum-clock seat.
    Budget,
    /// The next reference needs the coordinator.
    Park(TraceOp),
    /// Stream exhausted.
    Done,
}

fn worker_loop<'a>(shared: &EngineShared<'a>, w: usize) {
    let inbox = &shared.inboxes[w];
    let mut slots: Vec<Slot<'a>> = Vec::new();
    let mut mail: Vec<ToWorker<'a>> = Vec::new();
    loop {
        if !slots.is_empty() {
            inbox.try_drain(&mut mail);
        } else {
            // No seats: spin briefly on the inbox flag (multi-core hosts
            // only) before paying a condvar sleep.
            let mut spun = 0u32;
            while !inbox.flag.load(Ordering::Acquire) && spun < shared.spin_rounds {
                std::hint::spin_loop();
                spun += 1;
            }
            if inbox.flag.load(Ordering::Acquire) {
                inbox.try_drain(&mut mail);
            } else {
                inbox.drain_blocking(&mut mail);
            }
        }
        for msg in mail.drain(..) {
            match msg {
                ToWorker::Exit => return,
                ToWorker::Start { bundle, spec } => {
                    debug_assert!(slots.iter().all(|s| s.cpu != bundle.cpu));
                    slots.push(Slot {
                        cpu: bundle.cpu,
                        cursor: spec.ops(),
                        bundle,
                    });
                }
                ToWorker::Resume { bundle, cursor } => {
                    debug_assert!(slots.iter().all(|s| s.cpu != bundle.cpu));
                    slots.push(Slot {
                        cpu: bundle.cpu,
                        cursor,
                        bundle,
                    });
                }
            }
        }
        // Run the lowest-clock seat for one span. (Minimum-first keeps
        // watermarks advancing where the coordinator is gated.)
        let Some(si) = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (s.bundle.clock, s.cpu))
            .map(|(i, _)| i)
        else {
            continue;
        };
        let slot = &mut slots[si];
        match run_span(shared, &mut slot.cursor, &mut slot.bundle) {
            SpanEnd::Budget => {}
            end => {
                let Slot { cursor, bundle, .. } = slots.swap_remove(si);
                let op = match end {
                    SpanEnd::Park(op) => Some(op),
                    _ => None,
                };
                shared.coord.send(Park { bundle, cursor, op });
            }
        }
    }
}

/// Executes up to [`SPAN_OPS`] references privately on the bundle's lane,
/// publishing the pre-op watermark before each. Accounting mirrors
/// `Sim::exec_op`'s audited per-op rules exactly.
fn run_span(shared: &EngineShared<'_>, cursor: &mut OpCursor<'_>, b: &mut Bundle) -> SpanEnd {
    let wm = &shared.watermarks[b.cpu];
    for _ in 0..SPAN_OPS {
        wm.store(pack(b.clock, b.cpu), Ordering::Relaxed);
        let Some(op) = cursor.next() else {
            return SpanEnd::Done;
        };
        match op {
            TraceOp::Instr(n) => {
                b.clock += n;
                b.instr += n;
            }
            TraceOp::Load(va) | TraceOp::Store(va) | TraceOp::IFetch(va) => {
                let vpn = shared.geometry.vpn_of(va);
                // Translation-cache misses go through OS state (page
                // tables, faults, the mapping policy): coordinator work.
                let Some(ppn) = b.tcache.lookup(vpn.0) else {
                    return SpanEnd::Park(op);
                };
                let pa = shared
                    .geometry
                    .phys_addr(Ppn(ppn), shared.geometry.offset_of(va));
                let kind = match op {
                    TraceOp::Load(_) => AccessKind::Read,
                    TraceOp::Store(_) => AccessKind::Write,
                    _ => AccessKind::IFetch,
                };
                match b
                    .lane
                    .access_private(&shared.cfg, b.clock, va.0, pa.0, kind, &mut b.fx)
                {
                    LaneStep::Park => return SpanEnd::Park(op),
                    LaneStep::Executed {
                        latency,
                        line,
                        shadow_evicted,
                        ..
                    } => {
                        b.journal.push(JournalEntry {
                            clock: b.clock,
                            line,
                            write: matches!(op, TraceOp::Store(_)),
                            shadow_evicted,
                        });
                        if matches!(op, TraceOp::IFetch(_)) {
                            b.clock += latency;
                        } else {
                            b.clock += latency + 1;
                            b.instr += 1;
                        }
                    }
                }
            }
            // The prefetch unit reads the directory and the bus: always
            // coordinator work.
            TraceOp::Prefetch { .. } => return SpanEnd::Park(op),
        }
        if b.record_batches {
            b.batch_clocks.push(b.clock);
        }
    }
    SpanEnd::Budget
}
