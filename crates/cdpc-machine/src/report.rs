//! Run reports: the numbers behind every figure of the paper.
//!
//! A [`RunReport`] carries the four views of Figure 2 — combined execution
//! time, overhead breakdown, memory system behavior (MCPI by miss class),
//! and bus utilization — plus the raw memory statistics for deeper
//! analysis.

use cdpc_memsim::{MemStats, MissClass};
use cdpc_vm::FaultStats;

/// Parallelization overheads (Figure 2, second graph), in CPU cycles
/// summed over all processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Operating-system time: TLB-fault servicing and page faults.
    pub kernel: u64,
    /// Waiting at barriers for slower processors.
    pub load_imbalance: u64,
    /// Slaves spinning while the master runs inherently sequential code.
    pub sequential: u64,
    /// Slaves spinning while the master runs a *suppressed* parallelizable
    /// loop.
    pub suppressed: u64,
    /// Barrier/lock implementation cost.
    pub synchronization: u64,
}

impl OverheadBreakdown {
    /// Total overhead cycles.
    pub fn total(&self) -> u64 {
        self.kernel + self.load_imbalance + self.sequential + self.suppressed + self.synchronization
    }
}

/// Memory stall cycles by cause (Figure 2, third graph), summed over
/// processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// L1 misses that hit in the external cache ("on-chip" stall in the
    /// paper's classification).
    pub l2_hit: u64,
    /// External-cache conflict misses.
    pub conflict: u64,
    /// External-cache capacity misses.
    pub capacity: u64,
    /// True-sharing communication misses.
    pub true_sharing: u64,
    /// False-sharing communication misses.
    pub false_sharing: u64,
    /// Cold misses (mostly discarded with warm-up, residual may remain).
    pub cold: u64,
    /// Waiting on in-flight prefetches and on free prefetch slots.
    pub prefetch: u64,
    /// Ownership upgrades.
    pub upgrade: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.l2_hit
            + self.conflict
            + self.capacity
            + self.true_sharing
            + self.false_sharing
            + self.cold
            + self.prefetch
            + self.upgrade
    }

    /// Replacement stall (the paper's conflict + capacity).
    pub fn replacement(&self) -> u64 {
        self.conflict + self.capacity
    }

    /// Builds the breakdown from raw memory statistics.
    pub fn from_mem_stats(stats: &MemStats) -> Self {
        let agg = stats.aggregate();
        StallBreakdown {
            l2_hit: agg.l2_hit_stall_cycles,
            conflict: agg.miss_stall_cycles.get(MissClass::Conflict),
            capacity: agg.miss_stall_cycles.get(MissClass::Capacity),
            true_sharing: agg.miss_stall_cycles.get(MissClass::TrueSharing),
            false_sharing: agg.miss_stall_cycles.get(MissClass::FalseSharing),
            cold: agg.miss_stall_cycles.get(MissClass::Cold),
            prefetch: agg.prefetch_wait_cycles + agg.prefetch_slot_stall_cycles,
            upgrade: agg.upgrade_stall_cycles,
        }
    }
}

/// Shared-bus occupancy (Figure 2, fourth graph).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusReport {
    /// Cycles carrying demand/prefetch data.
    pub data_cycles: u64,
    /// Cycles carrying write-backs.
    pub writeback_cycles: u64,
    /// Cycles carrying upgrades.
    pub upgrade_cycles: u64,
    /// Occupied fraction of the measured interval, 0–1.
    pub utilization: f64,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// Processors.
    pub num_cpus: usize,
    /// Page-mapping policy label.
    pub policy: String,
    /// Instructions executed, summed over processors.
    pub instructions: u64,
    /// Pure execution cycles (1 cycle/instruction), summed over processors.
    pub exec_cycles: u64,
    /// Memory stalls by cause, summed over processors.
    pub stalls: StallBreakdown,
    /// Parallelization overheads, summed over processors.
    pub overheads: OverheadBreakdown,
    /// Wall-clock cycles of the measured steady state (max over CPUs).
    pub elapsed_cycles: u64,
    /// `elapsed * num_cpus`: the paper's combined execution time metric.
    pub combined_cycles: u64,
    /// Bus view.
    pub bus: BusReport,
    /// Raw memory statistics.
    pub mem_stats: MemStats,
    /// Page-fault statistics (hint honor rate).
    pub fault_stats: FaultStats,
    /// Pages moved by the dynamic-recoloring policy (zero for static
    /// policies).
    pub recolorings: u64,
    /// Memory references simulated over the whole run (warm-up included,
    /// demand accesses plus issued prefetches) — the simulator-throughput
    /// numerator behind wall-clock refs/sec self-profiling.
    pub simulated_refs: u64,
}

impl RunReport {
    /// Memory cycles per instruction (the paper's MCPI): total stall
    /// cycles summed over processors, divided by total instructions summed
    /// over processors (not a per-processor average).
    pub fn mcpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.stalls.total() as f64 / self.instructions as f64
    }

    /// External-cache miss rate over demand references.
    pub fn l2_miss_rate(&self) -> f64 {
        self.mem_stats.aggregate().l2_miss_rate()
    }

    /// Speedup of this run relative to `baseline` in wall-clock time.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.elapsed_cycles as f64 / self.elapsed_cycles.max(1) as f64
    }

    /// SPEC-style ratio: `reference_cycles / elapsed_cycles`.
    pub fn ratio(&self, reference_cycles: u64) -> f64 {
        reference_cycles as f64 / self.elapsed_cycles.max(1) as f64
    }
}

/// Geometric mean of a set of ratios (the SPEC95fp aggregate).
///
/// Returns 0.0 for an empty slice.
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_total_sums_categories() {
        let o = OverheadBreakdown {
            kernel: 1,
            load_imbalance: 2,
            sequential: 3,
            suppressed: 4,
            synchronization: 5,
        };
        assert_eq!(o.total(), 15);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn stall_breakdown_from_stats() {
        let mut stats = MemStats::default();
        let mut cpu = cdpc_memsim::CpuStats::default();
        cpu.l2_hit_stall_cycles = 10;
        cpu.miss_stall_cycles.add(MissClass::Conflict, 20);
        cpu.miss_stall_cycles.add(MissClass::Capacity, 30);
        cpu.prefetch_wait_cycles = 5;
        stats.cpus.push(cpu);
        let s = StallBreakdown::from_mem_stats(&stats);
        assert_eq!(s.l2_hit, 10);
        assert_eq!(s.replacement(), 50);
        assert_eq!(s.total(), 65);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    fn dummy_report(elapsed: u64) -> RunReport {
        RunReport {
            name: "t".into(),
            num_cpus: 2,
            policy: "page-coloring".into(),
            instructions: 100,
            exec_cycles: 100,
            stalls: StallBreakdown {
                conflict: 50,
                ..Default::default()
            },
            overheads: OverheadBreakdown::default(),
            elapsed_cycles: elapsed,
            combined_cycles: elapsed * 2,
            bus: BusReport::default(),
            mem_stats: MemStats::default(),
            fault_stats: FaultStats::default(),
            recolorings: 0,
            simulated_refs: 0,
        }
    }

    #[test]
    fn mcpi_and_speedup() {
        let a = dummy_report(1000);
        let b = dummy_report(500);
        assert!((a.mcpi() - 0.5).abs() < 1e-12);
        assert!((b.speedup_over(&a) - 2.0).abs() < 1e-12);
        assert!((a.ratio(2000) - 2.0).abs() < 1e-12);
    }
}
