//! Prediction-versus-simulation diffing.
//!
//! The static conflict prover (in `cdpc-analyze`) claims a set of hot
//! `(attribution row, color)` cells; the simulator's
//! [`AttributionProbe`] records where conflict misses actually landed.
//! This module diffs the two so benches and CI can state the prover's
//! guarantee numerically: **zero false negatives** (every simulated
//! conflict cell was predicted) with measured precision. It deliberately
//! speaks only plain types — `BTreeSet<(usize, u64)>` in, counts out —
//! so `cdpc-machine` needs no dependency on the analyzer.

use std::collections::BTreeSet;

use cdpc_obs::{AttributionProbe, MissClassId};

/// Outcome of diffing predicted conflict cells against the simulator's
/// attribution tensor.
#[derive(Debug, Clone, Default)]
pub struct PredictionDiff {
    /// Cells with at least one simulated conflict miss, as
    /// `(attribution row, color)` — rows `0..arrays` are arrays, row
    /// `arrays` is the "(other)" row (code and stack pages).
    pub oracle_cells: BTreeSet<(usize, u64)>,
    /// Predicted cells confirmed by the oracle.
    pub hits: BTreeSet<(usize, u64)>,
    /// Oracle cells the prediction missed — false negatives; a sound
    /// prover keeps this empty.
    pub missed: BTreeSet<(usize, u64)>,
    /// Predicted cells the oracle never charged — false positives, the
    /// price of over-approximation.
    pub spurious: BTreeSet<(usize, u64)>,
}

impl PredictionDiff {
    /// Fraction of oracle cells predicted (1.0 on an empty oracle).
    pub fn recall(&self) -> f64 {
        if self.oracle_cells.is_empty() {
            1.0
        } else {
            self.hits.len() as f64 / self.oracle_cells.len() as f64
        }
    }

    /// Fraction of predictions confirmed (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        let predicted = self.hits.len() + self.spurious.len();
        if predicted == 0 {
            1.0
        } else {
            self.hits.len() as f64 / predicted as f64
        }
    }

    /// `true` when every simulated conflict cell was predicted.
    pub fn sound(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Diffs `predicted` hot cells against the conflict misses `probe`
/// attributed during measurement.
pub fn diff_prediction(
    predicted: &BTreeSet<(usize, u64)>,
    probe: &AttributionProbe,
) -> PredictionDiff {
    let (arrays, colors, _) = probe.dims();
    let mut oracle_cells = BTreeSet::new();
    for row in 0..=arrays {
        for color in 0..colors {
            if probe.array_color_class(row, color, MissClassId::Conflict) > 0 {
                oracle_cells.insert((row, color as u64));
            }
        }
    }
    let hits: BTreeSet<_> = predicted.intersection(&oracle_cells).copied().collect();
    let missed: BTreeSet<_> = oracle_cells.difference(predicted).copied().collect();
    let spurious: BTreeSet<_> = predicted.difference(&oracle_cells).copied().collect();
    PredictionDiff {
        oracle_cells,
        hits,
        missed,
        spurious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with(cells: &[(u32, u32)]) -> AttributionProbe {
        use cdpc_obs::Probe;
        let mut p = AttributionProbe::new(2, 8, 2, 1);
        p.on_phase_start(0, 1);
        for &(array, color) in cells {
            p.on_classified_miss(0, 0x1000, array, color, MissClassId::Conflict, 50);
        }
        p.on_phase_end(0, 0x2000);
        p
    }

    #[test]
    fn exact_prediction_scores_perfectly() {
        let probe = probe_with(&[(0, 3), (1, 5)]);
        let predicted: BTreeSet<_> = [(0, 3), (1, 5)].into();
        let diff = diff_prediction(&predicted, &probe);
        assert_eq!(diff.oracle_cells.len(), 2);
        assert!(diff.sound());
        assert_eq!(diff.recall(), 1.0);
        assert_eq!(diff.precision(), 1.0);
    }

    #[test]
    fn over_approximation_costs_precision_not_recall() {
        let probe = probe_with(&[(0, 3)]);
        let predicted: BTreeSet<_> = [(0, 3), (0, 4), (1, 0)].into();
        let diff = diff_prediction(&predicted, &probe);
        assert!(diff.sound());
        assert_eq!(diff.recall(), 1.0);
        assert!((diff.precision() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(diff.spurious.len(), 2);
    }

    #[test]
    fn a_missed_cell_breaks_soundness() {
        let probe = probe_with(&[(0, 3), (1, 5)]);
        let predicted: BTreeSet<_> = [(0, 3)].into();
        let diff = diff_prediction(&predicted, &probe);
        assert!(!diff.sound());
        assert_eq!(diff.missed.iter().copied().collect::<Vec<_>>(), [(1, 5)]);
        assert!((diff.recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn other_row_misses_land_on_the_trailing_row() {
        // Array id 999 exceeds the declared 2 arrays → "(other)" row 2.
        let probe = probe_with(&[(999, 7)]);
        let predicted: BTreeSet<_> = [(2, 7)].into();
        let diff = diff_prediction(&predicted, &probe);
        assert!(diff.sound());
        assert_eq!(diff.precision(), 1.0);
    }

    #[test]
    fn empty_oracle_is_vacuously_sound() {
        let probe = probe_with(&[]);
        let diff = diff_prediction(&BTreeSet::new(), &probe);
        assert!(diff.sound());
        assert_eq!(diff.recall(), 1.0);
        assert_eq!(diff.precision(), 1.0);
    }
}
