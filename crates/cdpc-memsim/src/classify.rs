//! Miss classification: cold / capacity / conflict / true sharing / false
//! sharing.
//!
//! The paper's Figure 2 separates *replacement* misses (capacity +
//! conflict — the misses CDPC attacks) from *communication* misses (true +
//! false sharing, per the classification of Dubois et al.). We reproduce
//! that taxonomy:
//!
//! * **Cold** — the processor has never referenced the line. (The paper's
//!   methodology discards cold misses by measuring steady-state phases;
//!   the machine layer does the same but the class is still counted.)
//! * **Conflict** — the line was evicted by a mapping collision: the miss
//!   would have *hit* in a fully-associative cache of the same capacity
//!   ([`ShadowCache`]).
//! * **Capacity** — the fully-associative shadow cache would have missed
//!   too.
//! * **True sharing** — the line was invalidated by another processor's
//!   write and the missing processor accesses a sub-block that was actually
//!   written ([`SharingTracker`]).
//! * **False sharing** — invalidated by another processor's write, but the
//!   sub-block accessed at the miss was *not* written by anyone.
//!
//! One approximation relative to Dubois: we classify a coherence miss by
//! the sub-block accessed *at the miss* rather than over the line's whole
//! subsequent lifetime, and sub-blocks are L1-line sized (32 B) rather than
//! words, because the trace generator emits references at L1-line
//! granularity. This coarsening slightly over-counts true sharing; the
//! compiler's alignment pass makes both kinds of sharing small in every
//! workload (as in the paper), so the distortion does not affect any
//! conclusion.

use cdpc_core::fastmap::FxMap64;

use crate::lru::LruSet;

/// Classification of an L2 (external cache) miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MissClass {
    /// First reference to the line by this processor.
    Cold,
    /// Would have missed even in a fully-associative cache: the working set
    /// simply exceeds capacity.
    Capacity,
    /// A mapping collision: a same-capacity fully-associative cache would
    /// have hit. These are the misses page mapping policies control.
    Conflict,
    /// Invalidation-caused miss on data actually written by another
    /// processor.
    TrueSharing,
    /// Invalidation-caused miss where the accessed sub-block was untouched.
    FalseSharing,
}

impl MissClass {
    /// Replacement misses — the ones CDPC eliminates.
    pub fn is_replacement(self) -> bool {
        matches!(self, MissClass::Capacity | MissClass::Conflict)
    }

    /// Communication misses — beyond the reach of page mapping.
    pub fn is_communication(self) -> bool {
        matches!(self, MissClass::TrueSharing | MissClass::FalseSharing)
    }

    /// All classes, for report iteration.
    pub const ALL: [MissClass; 5] = [
        MissClass::Cold,
        MissClass::Capacity,
        MissClass::Conflict,
        MissClass::TrueSharing,
        MissClass::FalseSharing,
    ];
}

impl From<MissClass> for cdpc_obs::MissClassId {
    fn from(class: MissClass) -> Self {
        match class {
            MissClass::Cold => cdpc_obs::MissClassId::Cold,
            MissClass::Capacity => cdpc_obs::MissClassId::Capacity,
            MissClass::Conflict => cdpc_obs::MissClassId::Conflict,
            MissClass::TrueSharing => cdpc_obs::MissClassId::TrueSharing,
            MissClass::FalseSharing => cdpc_obs::MissClassId::FalseSharing,
        }
    }
}

impl std::fmt::Display for MissClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MissClass::Cold => "cold",
            MissClass::Capacity => "capacity",
            MissClass::Conflict => "conflict",
            MissClass::TrueSharing => "true-sharing",
            MissClass::FalseSharing => "false-sharing",
        };
        f.write_str(s)
    }
}

/// Per-processor fully-associative LRU shadow cache used to split
/// replacement misses into conflict vs. capacity.
///
/// It holds the same number of lines as the real L2 and is updated on every
/// L2 reference; a real-cache miss that hits here is a conflict miss.
#[derive(Debug, Clone)]
pub struct ShadowCache {
    lines: LruSet,
}

impl ShadowCache {
    /// Creates a shadow cache holding `capacity_lines` lines.
    pub fn new(capacity_lines: usize) -> Self {
        Self {
            lines: LruSet::new(capacity_lines),
        }
    }

    /// Records a reference to `line_addr` and reports whether the
    /// fully-associative cache would have hit.
    pub fn reference(&mut self, line_addr: u64) -> bool {
        self.reference_tracked(line_addr).0
    }

    /// [`reference`](Self::reference), also reporting which line (if any)
    /// the insertion evicted. The parallel engine's speculation check uses
    /// the eviction to reconstruct membership at an earlier point in time.
    pub fn reference_tracked(&mut self, line_addr: u64) -> (bool, Option<u64>) {
        match self.lines.insert(line_addr) {
            crate::lru::LruInsert::Hit => (true, None),
            crate::lru::LruInsert::Inserted => (false, None),
            crate::lru::LruInsert::Evicted(old) => (false, Some(old)),
        }
    }

    /// Removes a line (on coherence invalidation, so a later miss on it is
    /// charged to communication, not to replacement).
    pub fn invalidate(&mut self, line_addr: u64) {
        self.lines.remove(line_addr);
    }

    /// Whether the line is resident in the shadow cache.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.lines.contains(line_addr)
    }
}

/// Word-level (sub-block-level) write tracking for true/false sharing.
///
/// When processor `w` writes a line and invalidates the copies held by other
/// processors, each victim gets a *pending record* seeded with the written
/// sub-block. Further writes by the owner accumulate into all pending
/// records. When a victim re-fetches the line, the sub-block it accesses
/// decides: written by someone else → true sharing; untouched → false
/// sharing.
#[derive(Debug, Clone, Default)]
pub struct SharingTracker {
    /// line address → (victim cpu → mask of sub-blocks written since the
    /// victim lost the line).
    pending: FxMap64<FxMap64<u64>>,
}

impl SharingTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `victim` lost `line_addr` to a write of `sub_block` by
    /// another processor.
    pub fn on_invalidate(&mut self, line_addr: u64, victim: usize, sub_block: u32) {
        debug_assert!(sub_block < 64);
        *self
            .pending
            .entry_or_insert_with(line_addr, FxMap64::new)
            .entry_or_insert_with(victim as u64, || 0) |= 1 << sub_block;
    }

    /// Records a write of `sub_block` by `writer`; accumulates into every
    /// other processor's pending record for the line.
    pub fn on_write(&mut self, line_addr: u64, writer: usize, sub_block: u32) {
        debug_assert!(sub_block < 64);
        if let Some(victims) = self.pending.get_mut(line_addr) {
            for (victim, mask) in victims.iter_mut() {
                if victim != writer as u64 {
                    *mask |= 1 << sub_block;
                }
            }
        }
    }

    /// Returns `true` if `cpu` has a pending invalidation record for the
    /// line — i.e. its next miss on the line is a communication miss.
    pub fn has_pending(&self, line_addr: u64, cpu: usize) -> bool {
        self.pending
            .get(line_addr)
            .is_some_and(|v| v.contains_key(cpu as u64))
    }

    /// Resolves a coherence miss: removes the pending record and classifies
    /// by the accessed sub-block. Returns `None` when the miss was not
    /// invalidation-caused.
    pub fn classify_refetch(
        &mut self,
        line_addr: u64,
        cpu: usize,
        sub_block: u32,
    ) -> Option<MissClass> {
        debug_assert!(sub_block < 64);
        let victims = self.pending.get_mut(line_addr)?;
        let mask = victims.remove(cpu as u64)?;
        if victims.is_empty() {
            self.pending.remove(line_addr);
        }
        Some(if mask & (1 << sub_block) != 0 {
            MissClass::TrueSharing
        } else {
            MissClass::FalseSharing
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_taxonomy() {
        assert!(MissClass::Conflict.is_replacement());
        assert!(MissClass::Capacity.is_replacement());
        assert!(MissClass::TrueSharing.is_communication());
        assert!(MissClass::FalseSharing.is_communication());
        assert!(!MissClass::Cold.is_replacement());
        assert!(!MissClass::Cold.is_communication());
        assert_eq!(MissClass::ALL.len(), 5);
    }

    #[test]
    fn shadow_separates_conflict_from_capacity() {
        let mut s = ShadowCache::new(2);
        assert!(!s.reference(0x000)); // cold in shadow
        assert!(!s.reference(0x100));
        assert!(
            s.reference(0x000),
            "still resident: a real miss here is conflict"
        );
        assert!(!s.reference(0x200)); // evicts 0x100
        assert!(
            !s.reference(0x100),
            "capacity-evicted: a real miss here is capacity"
        );
    }

    #[test]
    fn true_sharing_when_written_subblock_accessed() {
        let mut t = SharingTracker::new();
        t.on_invalidate(0x80, 1, 0); // cpu1 loses line, sub-block 0 written
        assert!(t.has_pending(0x80, 1));
        assert_eq!(t.classify_refetch(0x80, 1, 0), Some(MissClass::TrueSharing));
        assert!(!t.has_pending(0x80, 1));
    }

    #[test]
    fn false_sharing_when_untouched_subblock_accessed() {
        let mut t = SharingTracker::new();
        t.on_invalidate(0x80, 1, 0);
        assert_eq!(
            t.classify_refetch(0x80, 1, 3),
            Some(MissClass::FalseSharing)
        );
    }

    #[test]
    fn owner_writes_accumulate_for_all_victims() {
        let mut t = SharingTracker::new();
        t.on_invalidate(0x80, 1, 0);
        t.on_invalidate(0x80, 2, 0);
        t.on_write(0x80, 0, 3); // owner writes another sub-block
        assert_eq!(t.classify_refetch(0x80, 1, 3), Some(MissClass::TrueSharing));
        assert_eq!(
            t.classify_refetch(0x80, 2, 2),
            Some(MissClass::FalseSharing)
        );
    }

    #[test]
    fn writer_does_not_poison_its_own_record() {
        let mut t = SharingTracker::new();
        t.on_invalidate(0x80, 1, 0);
        // cpu1 later becomes the writer of a different sub-block while its
        // record is pending (e.g. write miss): its own write must not turn
        // its pending record into true sharing.
        t.on_write(0x80, 1, 5);
        assert_eq!(
            t.classify_refetch(0x80, 1, 5),
            Some(MissClass::FalseSharing)
        );
    }

    #[test]
    fn refetch_without_record_is_not_communication() {
        let mut t = SharingTracker::new();
        assert_eq!(t.classify_refetch(0x80, 1, 0), None);
    }

    #[test]
    fn shadow_invalidate_removes_line() {
        let mut s = ShadowCache::new(4);
        s.reference(0x40);
        assert!(s.contains(0x40));
        s.invalidate(0x40);
        assert!(!s.contains(0x40));
    }
}
