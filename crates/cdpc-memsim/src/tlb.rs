//! A fully-associative, LRU translation lookaside buffer.
//!
//! The TLB matters to the paper twice: TLB-fault servicing is the dominant
//! kernel overhead of the workloads (Figure 2), and the R10000-style
//! prefetch instruction is *dropped* when the target page is not mapped in
//! the TLB — which is why applu's large-stride prefetches are ineffective
//! (Section 6.2, footnote 1).

use crate::lru::{LruInsert, LruSet};
use cdpc_vm::addr::Vpn;

/// A per-CPU TLB holding virtual page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: LruSet,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        Self {
            entries: LruSet::new(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// Performs a translation for a demand access: on a miss the entry is
    /// filled (the kernel services the fault). Returns `true` on hit.
    pub fn access(&mut self, vpn: Vpn) -> bool {
        match self.entries.insert(vpn.0) {
            LruInsert::Hit => {
                self.hits += 1;
                true
            }
            _ => {
                self.misses += 1;
                false
            }
        }
    }

    /// Checks residency without filling — the prefetch path: a prefetch to
    /// an unmapped page is dropped, it does *not* fault the entry in.
    pub fn probe(&self, vpn: Vpn) -> bool {
        self.entries.contains(vpn.0)
    }

    /// Invalidates one entry (page unmapped / recolored).
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        self.entries.remove(vpn.0)
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Demand hit rate (0.0–1.0; 0.0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fills_then_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(Vpn(1)));
        assert!(t.access(Vpn(1)));
        assert_eq!(t.misses(), 1);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = Tlb::new(2);
        t.access(Vpn(1));
        t.access(Vpn(2));
        t.access(Vpn(1)); // 2 becomes LRU
        t.access(Vpn(3)); // evicts 2
        assert!(t.probe(Vpn(1)));
        assert!(!t.probe(Vpn(2)));
        assert!(t.probe(Vpn(3)));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut t = Tlb::new(2);
        assert!(!t.probe(Vpn(9)));
        assert!(!t.access(Vpn(9)), "probe must not have filled the entry");
    }

    #[test]
    fn hit_rate_tracks_accesses() {
        let mut t = Tlb::new(4);
        assert_eq!(t.hit_rate(), 0.0);
        t.access(Vpn(1));
        t.access(Vpn(1));
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidate_removes() {
        let mut t = Tlb::new(2);
        t.access(Vpn(5));
        assert!(t.invalidate(Vpn(5)));
        assert!(!t.probe(Vpn(5)));
        assert!(!t.invalidate(Vpn(5)));
    }
}
