//! A parameterized set-associative, write-back cache with per-line MESI
//! state.
//!
//! The same structure serves as the virtually-indexed L1s (which never leave
//! `Exclusive`/`Modified` from the cache's own point of view — coherence is
//! maintained at the L2 level and pushed down as invalidations) and as the
//! physically-indexed L2s, where the MESI state participates in bus
//! snooping.

use crate::config::CacheConfig;

/// MESI coherence state of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Only copy, dirty.
    Modified,
    /// Only copy, clean.
    Exclusive,
    /// Possibly one of several copies, clean.
    Shared,
}

impl From<Mesi> for cdpc_obs::LineState {
    fn from(s: Mesi) -> Self {
        match s {
            Mesi::Modified => cdpc_obs::LineState::Modified,
            Mesi::Exclusive => cdpc_obs::LineState::Exclusive,
            Mesi::Shared => cdpc_obs::LineState::Shared,
        }
    }
}

impl Mesi {
    /// Whether a write hit in this state needs a bus upgrade first.
    pub fn needs_upgrade_for_write(self) -> bool {
        matches!(self, Mesi::Shared)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: Mesi,
    /// LRU timestamp; larger = more recent.
    stamp: u64,
    valid: bool,
    /// Caller-supplied tag carried with the line and returned on eviction.
    /// The L1s store the physical sub-line here so the memory system needs
    /// no reverse (virtual → physical) map; the L2s leave it zero.
    aux: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        state: Mesi::Exclusive,
        stamp: 0,
        valid: false,
        aux: 0,
    };
}

/// What a lookup found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line resident in the given state.
    Hit(Mesi),
    /// Line not resident.
    Miss,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// `true` if the victim was in `Modified` state and must be written
    /// back.
    pub dirty: bool,
    /// The coherence state the victim held (needed when the line moves to
    /// a victim cache instead of being discarded).
    pub state: Mesi,
    /// The caller-supplied tag stored with the line at fill time (zero for
    /// lines filled through [`Cache::fill`]).
    pub aux: u64,
}

/// A set-associative, write-back cache holding line *addresses* (the
/// simulator never stores data, only metadata).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>, // num_sets * associativity, set-major
    clock: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            ways: vec![Way::EMPTY; cfg.num_sets() * cfg.associativity()],
            clock: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_slice(&self, set: usize) -> &[Way] {
        let a = self.cfg.associativity();
        &self.ways[set * a..(set + 1) * a]
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Way] {
        let a = self.cfg.associativity();
        &mut self.ways[set * a..(set + 1) * a]
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr);
        let a = self.cfg.associativity();
        self.set_slice(set)
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|i| set * a + i)
    }

    /// Looks up `addr`, updating LRU recency on a hit.
    pub fn probe(&mut self, addr: u64) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        match self.find(addr) {
            Some(i) => {
                self.ways[i].stamp = clock;
                Lookup::Hit(self.ways[i].state)
            }
            None => Lookup::Miss,
        }
    }

    /// Looks up `addr` without perturbing LRU state (a snoop, not an
    /// access).
    pub fn peek(&self, addr: u64) -> Lookup {
        match self.find(addr) {
            Some(i) => Lookup::Hit(self.ways[i].state),
            None => Lookup::Miss,
        }
    }

    /// Inserts the line containing `addr` in `state`, evicting the set's LRU
    /// way if necessary.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is already resident — callers must
    /// fill only after a miss.
    pub fn fill(&mut self, addr: u64, state: Mesi) -> Option<Evicted> {
        self.fill_tagged(addr, state, 0)
    }

    /// [`fill`](Self::fill) with a caller-supplied `aux` tag stored
    /// alongside the line and handed back in the eviction record.
    pub fn fill_tagged(&mut self, addr: u64, state: Mesi, aux: u64) -> Option<Evicted> {
        debug_assert!(self.find(addr).is_none(), "fill of resident line {addr:#x}");
        self.clock += 1;
        let clock = self.clock;
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr);
        let line_bytes = self.cfg.line_bytes() as u64;
        let num_sets = self.cfg.num_sets() as u64;
        let slice = self.set_slice_mut(set);
        let victim_idx = match slice.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                // Evict the LRU way.
                let (i, _) = slice
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .expect("associativity >= 1");
                i
            }
        };
        let victim = slice[victim_idx];
        slice[victim_idx] = Way {
            tag,
            state,
            stamp: clock,
            valid: true,
            aux,
        };
        if victim.valid {
            let line_addr = (victim.tag * num_sets + set as u64) * line_bytes;
            Some(Evicted {
                line_addr,
                dirty: victim.state == Mesi::Modified,
                state: victim.state,
                aux: victim.aux,
            })
        } else {
            None
        }
    }

    /// Changes the state of a resident line. Returns `false` if the line is
    /// not resident.
    pub fn set_state(&mut self, addr: u64, state: Mesi) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.ways[i].state = state;
                true
            }
            None => false,
        }
    }

    /// Invalidates a line if resident, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<Mesi> {
        match self.find(addr) {
            Some(i) => {
                self.ways[i].valid = false;
                Some(self.ways[i].state)
            }
            None => None,
        }
    }

    /// Number of valid lines currently resident (O(lines); for tests and
    /// reports).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterates the line addresses of all resident lines with their states
    /// (O(lines); for invariant checking and reports).
    pub fn resident(&self) -> impl Iterator<Item = (u64, Mesi)> + '_ {
        let a = self.cfg.associativity();
        let num_sets = self.cfg.num_sets() as u64;
        let line_bytes = self.cfg.line_bytes() as u64;
        self.ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid)
            .map(move |(i, w)| {
                let set = (i / a) as u64;
                ((w.tag * num_sets + set) * line_bytes, w.state)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(0x100), Lookup::Miss);
        assert_eq!(c.fill(0x100, Mesi::Exclusive), None);
        assert_eq!(c.probe(0x100), Lookup::Hit(Mesi::Exclusive));
        // Same line, different byte.
        assert_eq!(c.probe(0x13f), Lookup::Hit(Mesi::Exclusive));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0: addresses 0, 256, 512 (set stride =
        // 4 sets * 64 B = 256 B).
        c.fill(0, Mesi::Exclusive);
        c.fill(256, Mesi::Exclusive);
        c.probe(0); // make 256 the LRU
        let ev = c.fill(512, Mesi::Exclusive).expect("full set must evict");
        assert_eq!(ev.line_addr, 256);
        assert!(!ev.dirty);
        assert_eq!(c.probe(0), Lookup::Hit(Mesi::Exclusive));
        assert_eq!(c.probe(256), Lookup::Miss);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, Mesi::Modified);
        c.fill(256, Mesi::Exclusive);
        let ev = c.fill(512, Mesi::Exclusive).unwrap();
        assert_eq!(ev.line_addr, 0);
        assert!(ev.dirty, "modified victim must be written back");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig::new(256, 64, 1)); // 4 sets
        c.fill(0, Mesi::Exclusive);
        // 256 maps to the same set in a 256-byte direct-mapped cache.
        let ev = c.fill(256, Mesi::Exclusive).unwrap();
        assert_eq!(ev.line_addr, 0);
    }

    #[test]
    fn set_state_and_upgrade_predicate() {
        let mut c = tiny();
        c.fill(0x40, Mesi::Shared);
        assert!(matches!(c.probe(0x40), Lookup::Hit(Mesi::Shared)));
        assert!(Mesi::Shared.needs_upgrade_for_write());
        assert!(c.set_state(0x40, Mesi::Modified));
        assert!(matches!(c.probe(0x40), Lookup::Hit(Mesi::Modified)));
        assert!(!c.set_state(0x9999, Mesi::Shared));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x80, Mesi::Modified);
        assert_eq!(c.invalidate(0x80), Some(Mesi::Modified));
        assert_eq!(c.probe(0x80), Lookup::Miss);
        assert_eq!(c.invalidate(0x80), None);
    }

    #[test]
    fn peek_does_not_perturb_lru() {
        let mut c = tiny();
        c.fill(0, Mesi::Exclusive);
        c.fill(256, Mesi::Exclusive);
        // peek(0) then fill: victim should be 0 (LRU), since peek didn't
        // refresh it.
        assert_eq!(c.peek(0), Lookup::Hit(Mesi::Exclusive));
        let ev = c.fill(512, Mesi::Exclusive).unwrap();
        assert_eq!(ev.line_addr, 0);
    }

    #[test]
    fn resident_count_tracks_fills() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.fill(0, Mesi::Exclusive);
        c.fill(64, Mesi::Exclusive);
        assert_eq!(c.resident_lines(), 2);
        c.invalidate(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn full_cache_occupancy_never_exceeds_ways() {
        let mut c = tiny();
        for i in 0..64 {
            c.fill(i * 64, Mesi::Exclusive);
        }
        assert_eq!(c.resident_lines(), 8); // 4 sets * 2 ways
    }
}
