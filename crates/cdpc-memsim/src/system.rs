//! The whole memory system: per-CPU cache hierarchies, shared bus, MESI
//! coherence, miss classification, and the prefetch engine.
//!
//! [`MemorySystem`] is driven one reference at a time by the machine run
//! loop (`cdpc-machine`): each call carries the issuing CPU, that CPU's
//! local clock (in cycles), the virtual and physical addresses, and the
//! access kind. The return value reports the latency to charge and how the
//! miss (if any) was classified.
//!
//! ## Model notes
//!
//! * L1 caches are virtually indexed (page mapping invisible), write-back
//!   in spirit, but modeled with *metadata write-through*: a write updates
//!   both the L1 and L2 line states immediately. This avoids simulating
//!   L1→L2 victim traffic (on-chip and free in the paper's machine) while
//!   keeping the bus-visible coherence behaviour exact.
//! * Inclusion is enforced: evicting or invalidating an L2 line invalidates
//!   the corresponding L1 sub-lines.
//! * A miss's latency is `service latency + bus queueing delay`; the data
//!   transfer occupancy overlaps the service latency but serializes the bus
//!   for later requesters, which is how contention appears (as in the
//!   paper, where bus saturation more than doubles tomcatv's MCPI).

use cdpc_core::fastmap::{DenseSet64, FxMap64, FxSet64};
use cdpc_obs::{LineState, NullProbe, PrefetchDropReason, Probe};
use cdpc_vm::addr::{PhysAddr, VirtAddr, Vpn};
use cdpc_vm::RegionMap;

use crate::bus::{Bus, BusUse};
use crate::cache::{Cache, Lookup, Mesi};
use crate::classify::{MissClass, ShadowCache, SharingTracker};
use crate::config::MemConfig;
use crate::prefetch::PrefetchSlots;
use crate::stats::{CpuStats, MemStats};
use crate::tlb::Tlb;
use crate::victim::VictimCache;

/// Index of a processor (0-based).
pub type CpuId = usize;

/// The kind of one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Demand data read.
    Read,
    /// Demand data write.
    Write,
    /// Instruction fetch.
    IFetch,
}

/// Where a demand reference was ultimately serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the on-chip L1.
    L1,
    /// Hit in the external (L2) cache.
    L2,
    /// Satisfied by an in-flight or just-completed prefetch.
    Prefetch,
    /// Fetched from main memory.
    Memory,
    /// Transferred from another processor's cache.
    RemoteCache,
    /// Swapped back from the per-CPU victim cache (extension feature).
    VictimCache,
}

/// Result of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Stall cycles beyond the instruction's base cost.
    pub latency_cycles: u64,
    /// Final service point.
    pub serviced_by: ServicedBy,
    /// Classification when the reference missed the external cache.
    pub miss_class: Option<MissClass>,
    /// Whether the reference took a TLB fault.
    pub tlb_miss: bool,
}

/// Result of issuing a prefetch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// `true` if the prefetch went to the memory system; `false` when it
    /// was dropped (TLB miss, line resident, already in flight).
    pub issued: bool,
    /// Stall cycles charged to the CPU (only when all slots were busy).
    pub stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of CPUs holding the line.
    sharers: u32,
    /// CPU holding the line in `Modified` state, if any.
    dirty_owner: Option<CpuId>,
}

/// One CPU's private slice of the memory system — its L1s, external cache,
/// TLB, shadow cache, prefetch bookkeeping, and statistics — detached from
/// the [`MemorySystem`] so a worker thread can execute *private* references
/// against it while the rest of the system stays with the coordinator.
///
/// Created by [`blank_lane`], exchanged with the live per-CPU state by
/// [`MemorySystem::swap_lane`], and driven by [`Lane::access_private`].
/// While a blank lane is swapped in, the owning `MemorySystem` must not be
/// asked to access that CPU (the engine in `cdpc-machine` guarantees this
/// by executing a CPU's references either on the lane *or* through the
/// coordinator, never both).
#[derive(Debug)]
pub struct Lane(CpuMem);

/// Deferred side effects of privately executed references.
///
/// Everything in here is *commutative*: applying two CPUs' buffers in
/// either order yields the same [`MemorySystem`] state and the same probe
/// counts, which is what makes lane execution order-independent. The
/// buffers are recycled (cleared, never dropped) so steady-state lane
/// execution performs no heap allocation.
#[derive(Debug, Default)]
pub struct LaneFx {
    /// Demand references executed on the lane (feeds `lifetime_refs`).
    refs: u64,
    /// `(pa_l2_line, sub_block)` of private writes, for the sharing
    /// tracker. Private writes only happen on `Modified` lines, and
    /// `SharingTracker::on_write` only ORs sub-block bits into existing
    /// invalidation records, so application order does not matter.
    writes: Vec<(u64, u32)>,
    /// `(cycle, vpn)` of TLB misses, replayed to the probe at the next
    /// synchronization point.
    tlb_events: Vec<(u64, u64)>,
}

impl LaneFx {
    /// Drops buffered effects without applying them (engine abort path).
    pub fn clear(&mut self) {
        self.refs = 0;
        self.writes.clear();
        self.tlb_events.clear();
    }
}

/// Outcome of [`Lane::access_private`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStep {
    /// The reference completed privately. `line` is the external-cache
    /// line it touched and `shadow_miss` whether it inserted into (rather
    /// than just touched) the fully-associative shadow cache — both feed
    /// the engine's conflict journal.
    Executed {
        /// Stall cycles beyond the instruction's base cost.
        latency: u64,
        /// The pa-side external-cache line the reference touched.
        line: u64,
        /// True when the shadow-cache reference missed (insert + possible
        /// eviction, which does not commute with invalidations).
        shadow_miss: bool,
        /// The line the shadow-cache insertion evicted, if any.
        shadow_evicted: Option<u64>,
    },
    /// The reference needs cross-CPU state (coherence, bus, directory,
    /// classification, or prefetch machinery). **Nothing was committed**;
    /// the coordinator must execute the whole reference serially.
    Park,
}

/// Builds one CPU's private state for `cfg` (shared by
/// [`MemorySystem::with_probe`] and [`blank_lane`], so a lane swapped in as
/// a placeholder is structurally identical to the state it replaces).
fn new_cpu_mem(cfg: &MemConfig) -> CpuMem {
    CpuMem {
        l1d: Cache::new(cfg.l1d),
        l1i: Cache::new(cfg.l1i),
        l2: Cache::new(cfg.l2),
        tlb: Tlb::new(cfg.tlb_entries),
        shadow: ShadowCache::new(cfg.l2.num_lines()),
        seen_lines: DenseSet64::new(),
        l1_map: FxMap64::new(),
        inflight: FxMap64::new(),
        pf_filled: FxSet64::new(),
        pf_done: Vec::new(),
        slots: PrefetchSlots::new(cfg.max_outstanding_prefetches),
        stats: CpuStats::default(),
        victim: (cfg.victim_cache_lines > 0).then(|| VictimCache::new(cfg.victim_cache_lines)),
    }
}

/// A detached blank [`Lane`] for `cfg` — the placeholder the engine swaps
/// into a [`MemorySystem`] while the real per-CPU state executes on a
/// worker thread.
pub fn blank_lane(cfg: &MemConfig) -> Lane {
    Lane(new_cpu_mem(cfg))
}

/// Installs an L1 sub-line after an L1 miss was serviced; mirrors the fill
/// side of `MemorySystem::access` exactly (peek-gate, tagged fill, forward
/// pa→va map maintenance). Shared by the serial path and the lane so the
/// two cannot drift.
fn fill_l1_cm(cfg: &MemConfig, c: &mut CpuMem, va_line: u64, pa: u64, is_ifetch: bool) {
    let pa_sub = cfg.l1d.line_of(pa);
    let l1 = if is_ifetch { &mut c.l1i } else { &mut c.l1d };
    if matches!(l1.peek(va_line), Lookup::Hit(_)) {
        return;
    }
    if let Some(evicted) = l1.fill_tagged(va_line, Mesi::Exclusive, pa_sub) {
        // The way's aux tag is the pa the victim was filled under, so
        // the stale forward mapping dies without a reverse lookup.
        c.l1_map.remove(evicted.aux);
    }
    c.l1_map.insert(pa_sub, va_line);
}

impl Lane {
    /// Attempts one demand reference entirely within this lane.
    ///
    /// A reference is *private* exactly when it provably touches no
    /// cross-CPU state — no bus, no directory, no other CPU's caches, no
    /// miss classification, and no prefetch machinery:
    ///
    /// * any reference while a prefetch is in flight parks (the completion
    ///   sweep re-reads the directory);
    /// * an L1 hit is private for reads, and for writes when the backing
    ///   L2 line is already `Modified` (the write changes no line state)
    ///   or transiently absent (the serial path treats that as a no-op);
    /// * an L1 miss that hits the L2 is private for reads in any state and
    ///   for writes on a `Modified` line. Writes on `Shared`/`Exclusive`
    ///   lines park: the upgrade (or the silent E→M transition's
    ///   `on_line_state` event) is globally visible;
    /// * everything else — L2 misses, prefetch instructions — parks.
    ///
    /// On `Park` **nothing** has been committed: classification uses only
    /// non-mutating peeks, so the coordinator replays the whole reference
    /// through [`MemorySystem::access`] and observes exactly the serial
    /// behaviour. On `Executed` the lane state, statistics, and latency are
    /// bit-identical to what the serial path would have produced, with the
    /// commutative leftovers (`lifetime_refs`, sharing-tracker writes, TLB
    /// probe events) buffered in `fx` for
    /// [`MemorySystem::apply_lane_fx`].
    pub fn access_private(
        &mut self,
        cfg: &MemConfig,
        now: u64,
        va: u64,
        pa: u64,
        kind: AccessKind,
        fx: &mut LaneFx,
    ) -> LaneStep {
        let c = &mut self.0;
        if !c.inflight.is_empty() {
            return LaneStep::Park;
        }
        let is_ifetch = kind == AccessKind::IFetch;
        let is_write = kind == AccessKind::Write;
        let va_line = cfg.l1d.line_of(va);
        let pa_l2_line = cfg.l2.line_of(pa);

        // Classification — non-mutating peeks only, so parking commits
        // nothing. (`peek` does not touch LRU; the commit below replays
        // `probe` where the serial path would have.)
        let l1_hit = {
            let l1 = if is_ifetch { &c.l1i } else { &c.l1d };
            matches!(l1.peek(va_line), Lookup::Hit(_))
        };
        let l2_state = match c.l2.peek(pa_l2_line) {
            Lookup::Hit(s) => Some(s),
            Lookup::Miss => None,
        };
        if l1_hit {
            // Reads complete in the L1. Writes touch the backing L2 line's
            // coherence state: private only when it stays `Modified` (or is
            // transiently absent, which the serial path no-ops).
            if is_write && !matches!(l2_state, Some(Mesi::Modified) | None) {
                return LaneStep::Park;
            }
        } else {
            match l2_state {
                Some(Mesi::Modified) => {}
                Some(_) if !is_write => {}
                // S/E writes (upgrade or silent-dirty event) and all L2
                // misses involve global state.
                _ => return LaneStep::Park,
            }
        }

        // Commit — mirrors `MemorySystem::access` for these paths.
        fx.refs += 1;
        if is_ifetch {
            c.stats.ifetch_refs += 1;
        } else {
            c.stats.data_refs += 1;
        }
        let mut latency = 0u64;
        let page = cfg.page_size as u64;
        let vpn = if page.is_power_of_two() {
            Vpn(va >> page.trailing_zeros())
        } else {
            Vpn(va / page)
        };
        if !c.tlb.access(vpn) {
            let penalty = cfg.tlb_miss_cycles();
            c.stats.tlb_misses += 1;
            c.stats.tlb_stall_cycles += penalty;
            latency += penalty;
            fx.tlb_events.push((now, vpn.0));
        }
        let sub = ((pa & (cfg.l2.line_bytes() as u64 - 1)) >> cfg.l1d.line_shift()) as u32;

        if l1_hit {
            let l1 = if is_ifetch { &mut c.l1i } else { &mut c.l1d };
            let _ = l1.probe(va_line); // LRU touch the serial hit performs
            c.stats.l1_hits += 1;
            if is_write && l2_state == Some(Mesi::Modified) {
                // `write_touch_in_state` on a Modified line: no state
                // change, no stall — only the sharing tracker (deferred).
                fx.writes.push((pa_l2_line, sub));
            }
            return LaneStep::Executed {
                latency,
                line: pa_l2_line,
                shadow_miss: false,
                shadow_evicted: None,
            };
        }

        // L1 miss, L2 hit in a state needing no coherence action.
        let _ = c.l2.probe(pa_l2_line); // LRU touch
        let (fa_hit, shadow_evicted) = c.shadow.reference_tracked(pa_l2_line);
        let hit_cycles = cfg.l2_hit_cycles();
        latency += hit_cycles;
        c.stats.l2_hits += 1;
        c.stats.l2_hit_stall_cycles += hit_cycles;
        if !c.pf_filled.is_empty() && c.pf_filled.remove(pa_l2_line) {
            c.stats.prefetch_hits += 1;
        }
        if is_write {
            // Modified (classified above): sharing tracker only, no stall.
            fx.writes.push((pa_l2_line, sub));
        }
        fill_l1_cm(cfg, c, va_line, pa, is_ifetch);
        LaneStep::Executed {
            latency,
            line: pa_l2_line,
            shadow_miss: !fa_hit,
            shadow_evicted,
        }
    }
}

#[derive(Debug, Clone)]
struct CpuMem {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    tlb: Tlb,
    shadow: ShadowCache,
    /// L2-line *indices* (line address / line size) this CPU has ever
    /// held — the cold-miss filter. Grows monotonically with the physical
    /// footprint, so it lives in a dense bitmap rather than a hash set:
    /// one probe per L2 miss must not become a DRAM miss into a
    /// multi-megabyte table.
    seen_lines: DenseSet64,
    /// pa L1-line → va L1-line, for inclusion invalidations. The reverse
    /// direction rides along in each L1 way's `aux` tag, so no second map
    /// is needed on the fill path.
    l1_map: FxMap64<u64>,
    /// pa L2-line → (completion cycle, fill state) of in-flight prefetches.
    inflight: FxMap64<(u64, Mesi)>,
    /// Prefetch-filled lines not yet referenced by a demand access (for
    /// prefetch-hit accounting).
    pf_filled: FxSet64,
    /// Reusable drain buffer for [`MemorySystem::complete_prefetches`], so
    /// the per-reference completion sweep allocates nothing in steady state.
    pf_done: Vec<(u64, u64, Mesi)>,
    slots: PrefetchSlots,
    stats: CpuStats,
    victim: Option<VictimCache>,
}

/// A checkpoint of a [`MemorySystem`]'s mutable state, produced by
/// [`MemorySystem::snapshot`] and consumed by [`MemorySystem::restore`].
///
/// Holds deep copies of the per-CPU memory hierarchies, the bus, the
/// sharing tracker, the coherence directory, and the lifetime reference
/// counter — everything a subsequent access stream can observe. It holds
/// *no* configuration and no probe, so one snapshot (typically behind an
/// `Arc`) can seed any number of systems built from the same config, which
/// is how checkpoint/fork sweeps replay a shared warm-up prefix.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    cpus: Vec<CpuMem>,
    bus: Bus,
    sharing: SharingTracker,
    directory: FxMap64<DirEntry>,
    lifetime_refs: u64,
}

/// The complete multiprocessor memory system.
///
/// Generic over a [`Probe`] receiving fine-grained events (misses, bus
/// transactions, TLB misses, prefetch activity). The default [`NullProbe`]
/// has empty inlined callbacks, so uninstrumented use —
/// [`MemorySystem::new`] — compiles to the same code as before probes
/// existed.
#[derive(Debug)]
pub struct MemorySystem<P: Probe = NullProbe> {
    cfg: MemConfig,
    cpus: Vec<CpuMem>,
    bus: Bus,
    sharing: SharingTracker,
    directory: FxMap64<DirEntry>,
    probe: P,
    /// Virtual-range → array-id tags for miss attribution. Empty (the
    /// default) disables [`Probe::on_classified_miss`] emission entirely,
    /// so untagged systems pay nothing.
    regions: RegionMap,
    /// Page colors of the external cache
    /// (`l2_size / (page_size × associativity)`), for pa → color.
    num_colors: u32,
    /// Demand references plus issued prefetches over the system's whole
    /// life — unlike [`CpuStats`], *not* cleared by
    /// [`reset_stats`](Self::reset_stats). This is the denominator-free
    /// "simulation work done" counter behind wall-clock refs/sec.
    lifetime_refs: u64,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`, with probing disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_cpus` is zero or exceeds 32 (the directory uses a
    /// 32-bit sharer mask; the paper simulates at most 16).
    pub fn new(cfg: MemConfig) -> Self {
        Self::with_probe(cfg, NullProbe)
    }
}

impl<P: Probe> MemorySystem<P> {
    /// Builds the memory system described by `cfg`, delivering events to
    /// `probe`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_cpus` is zero or exceeds 32 (the directory uses a
    /// 32-bit sharer mask; the paper simulates at most 16).
    pub fn with_probe(cfg: MemConfig, probe: P) -> Self {
        assert!(
            cfg.num_cpus >= 1 && cfg.num_cpus <= 32,
            "1..=32 CPUs supported"
        );
        let cpus = (0..cfg.num_cpus).map(|_| new_cpu_mem(&cfg)).collect();
        // `ColorSpace` semantics (l2 / (page × assoc)), but degenerate
        // caches smaller than a page — common in unit tests — get one
        // color instead of a panic.
        let num_colors =
            (cfg.l2.size_bytes() / (cfg.page_size * cfg.l2.associativity())).max(1) as u32;
        Self {
            cfg,
            cpus,
            bus: Bus::new(),
            sharing: SharingTracker::new(),
            directory: FxMap64::new(),
            probe,
            regions: RegionMap::default(),
            num_colors,
            lifetime_refs: 0,
        }
    }

    /// Installs the virtual-range → array-id map that turns anonymous L2
    /// misses into attributed [`Probe::on_classified_miss`] events. The
    /// run loop threads the compiler's layout down through this call;
    /// without it (or with an empty map) no attribution events fire.
    pub fn set_regions(&mut self, regions: RegionMap) {
        self.regions = regions;
    }

    /// The page color of physical address `pa` — the cache bin its page
    /// occupies in the external cache.
    #[inline]
    pub fn color_of_pa(&self, pa: u64) -> u32 {
        (pa / self.cfg.page_size as u64 % self.num_colors as u64) as u32
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// The attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The attached probe, mutably (for draining buffered events).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the system, returning the probe (and its buffers).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Demand references plus issued prefetches over the system's whole
    /// life (never reset).
    pub fn lifetime_refs(&self) -> u64 {
        self.lifetime_refs
    }

    /// A deep copy of every piece of *mutable* simulation state: per-CPU
    /// caches/TLBs/shadow state/statistics, the bus, the sharing tracker,
    /// the coherence directory, and `lifetime_refs`.
    ///
    /// Immutable configuration (`MemConfig`, the region map, the color
    /// count) is deliberately **not** captured — a snapshot only makes
    /// sense restored into a system built from the same configuration, and
    /// leaving config out is what lets checkpoints share it structurally
    /// (callers hold the snapshot behind an `Arc` and clone only mutable
    /// state per fork). See [`restore`](Self::restore).
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            cpus: self.cpus.clone(),
            bus: self.bus.clone(),
            sharing: self.sharing.clone(),
            directory: self.directory.clone(),
            lifetime_refs: self.lifetime_refs,
        }
    }

    /// Restores mutable state captured by [`snapshot`](Self::snapshot),
    /// reusing this system's existing allocations where possible.
    ///
    /// After `restore`, the system behaves exactly as the snapshotted one
    /// did: every subsequent access sequence produces bit-identical stats,
    /// probe events, and bus timings. The probe itself is *not* part of the
    /// snapshot — it is an observer, not simulation state.
    ///
    /// # Panics
    ///
    /// Panics if this system was built with a different CPU count than the
    /// snapshotted one (a config mismatch the caller must prevent).
    pub fn restore(&mut self, snap: &MemSnapshot) {
        assert_eq!(
            self.cpus.len(),
            snap.cpus.len(),
            "snapshot restored into a system with a different CPU count"
        );
        self.cpus.clone_from(&snap.cpus);
        self.bus.clone_from(&snap.bus);
        self.sharing.clone_from(&snap.sharing);
        self.directory.clone_from(&snap.directory);
        self.lifetime_refs = snap.lifetime_refs;
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            cpus: self.cpus.iter().map(|c| c.stats.clone()).collect(),
            bus_occupancy: self.bus.occupancy_cycles(),
            bus_transactions: self.bus.transactions(),
        }
    }

    /// Resets all statistics counters (cache/TLB/directory *state* is
    /// preserved). Used to discard warm-up phases, mirroring the paper's
    /// practice of discarding the first detailed-simulation phases.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cpus {
            c.stats = CpuStats::default();
        }
        self.bus = Bus::new();
    }

    /// Exchanges `cpu`'s private state with `lane` (a constant-time
    /// structure swap; no cache contents are copied). The engine detaches a
    /// CPU by swapping in a [`blank_lane`] placeholder and re-attaches it
    /// by swapping the real lane back. While a placeholder is installed,
    /// the caller must not route references for `cpu` through this system.
    pub fn swap_lane(&mut self, cpu: CpuId, lane: &mut Lane) {
        std::mem::swap(&mut self.cpus[cpu], &mut lane.0);
    }

    /// Applies (and drains) the deferred side effects of `cpu`'s privately
    /// executed references. Every buffered effect is commutative across
    /// CPUs, and the engine applies each CPU's buffer before any reference
    /// that could observe it, so the resulting state is identical to serial
    /// execution.
    pub fn apply_lane_fx(&mut self, cpu: CpuId, fx: &mut LaneFx) {
        self.lifetime_refs += fx.refs;
        fx.refs = 0;
        for &(now, vpn) in &fx.tlb_events {
            self.probe.on_tlb_miss(cpu, now, vpn);
        }
        fx.tlb_events.clear();
        for &(line, sub) in &fx.writes {
            self.sharing.on_write(line, cpu, sub);
        }
        fx.writes.clear();
    }

    /// The directory's sharer mask for a line (dirty owners are always
    /// sharers). The engine uses this to find which CPUs a coherence
    /// action could touch; private execution never modifies the directory,
    /// so at a hazard's execution point this is exactly the serial state.
    pub fn line_holders(&self, pa_l2_line: u64) -> u32 {
        self.directory.get(pa_l2_line).map_or(0, |e| e.sharers)
    }

    /// Whether `cpu`'s fully-associative shadow cache currently holds the
    /// line. Peek-only; the parallel engine reconstructs shadow membership
    /// at a hazard's serial position from this plus its journals.
    pub fn shadow_contains(&self, cpu: CpuId, pa_l2_line: u64) -> bool {
        self.cpus[cpu].shadow.contains(pa_l2_line)
    }

    /// Whether a demand reference by `cpu` to `pa` can touch state outside
    /// this CPU's own hierarchy (bus, directory *mutation*, other caches).
    /// Peek-only; used by the parallel engine to decide if a hazard needs
    /// its victim gate:
    ///
    /// * `Modified`/`Exclusive` hit — reads and writes stay local (an
    ///   `E → M` upgrade is silent);
    /// * `Shared` hit — reads stay local, writes broadcast an upgrade that
    ///   invalidates the other sharers;
    /// * miss — conservatively cross-CPU (the service path may source
    ///   from another cache or invalidate sharers; even an own-victim or
    ///   inflight fill is cheap enough to serialize fully).
    pub fn demand_interacts(&self, cpu: CpuId, pa: PhysAddr, is_write: bool) -> bool {
        match self.cpus[cpu].l2.peek(self.cfg.l2.line_of(pa.0)) {
            Lookup::Hit(Mesi::Modified | Mesi::Exclusive) => false,
            Lookup::Hit(_) => is_write,
            Lookup::Miss => true,
        }
    }

    #[inline]
    fn sub_block_of(&self, pa: u64) -> u32 {
        ((pa & (self.cfg.l2.line_bytes() as u64 - 1)) >> self.cfg.l1d.line_shift()) as u32
    }

    /// The virtual page number of `va`. Pages are practically always a
    /// power of two, turning the division into a shift on the hot path.
    #[inline]
    fn vpn_of(&self, va: u64) -> Vpn {
        let page = self.cfg.page_size as u64;
        if page.is_power_of_two() {
            Vpn(va >> page.trailing_zeros())
        } else {
            Vpn(va / page)
        }
    }

    /// Performs one demand reference by `cpu` at local time `now`.
    ///
    /// `va` decides L1 indexing and the TLB page; `pa` decides L2 indexing,
    /// coherence, and (through the page mapping that produced it) cache
    /// conflicts.
    pub fn access(
        &mut self,
        cpu: CpuId,
        now: u64,
        va: VirtAddr,
        pa: PhysAddr,
        kind: AccessKind,
    ) -> AccessOutcome {
        self.lifetime_refs += 1;
        let is_ifetch = kind == AccessKind::IFetch;
        let is_write = kind == AccessKind::Write;
        if is_ifetch {
            self.cpus[cpu].stats.ifetch_refs += 1;
        } else {
            self.cpus[cpu].stats.data_refs += 1;
        }

        let mut latency = 0u64;

        // TLB.
        let vpn = self.vpn_of(va.0);
        let tlb_miss = !self.cpus[cpu].tlb.access(vpn);
        if tlb_miss {
            let penalty = self.cfg.tlb_miss_cycles();
            self.cpus[cpu].stats.tlb_misses += 1;
            self.cpus[cpu].stats.tlb_stall_cycles += penalty;
            latency += penalty;
            self.probe.on_tlb_miss(cpu, now, vpn.0);
        }
        let now = now + latency;

        // Prefetch-completion sweep, skipped entirely when nothing is in
        // flight (the common case): the sweep is a no-op then, so eliding
        // the call cannot change any state.
        if !self.cpus[cpu].inflight.is_empty() {
            self.complete_prefetches(cpu, now);
        }

        // L1 probe. This runs before the pa-side (L2-line / sub-block)
        // arithmetic so the fast path — a read that hits the L1 — returns
        // without doing it; the arithmetic is pure, so deferring it past
        // the probe is invisible to the simulation.
        let va_line = self.cfg.l1d.line_of(va.0);
        let l1_hit = {
            let c = &mut self.cpus[cpu];
            let l1 = if is_ifetch { &mut c.l1i } else { &mut c.l1d };
            matches!(l1.probe(va_line), Lookup::Hit(_))
        };
        if l1_hit {
            self.cpus[cpu].stats.l1_hits += 1;
            if is_write {
                let pa_l2_line = self.cfg.l2.line_of(pa.0);
                let sub = self.sub_block_of(pa.0);
                latency += self.write_touch(cpu, now, pa_l2_line, sub);
            }
            return AccessOutcome {
                latency_cycles: latency,
                serviced_by: ServicedBy::L1,
                miss_class: None,
                tlb_miss,
            };
        }
        let pa_l2_line = self.cfg.l2.line_of(pa.0);
        let sub = self.sub_block_of(pa.0);

        // L2 probe.
        let l2_state = match self.cpus[cpu].l2.probe(pa_l2_line) {
            Lookup::Hit(s) => Some(s),
            Lookup::Miss => None,
        };
        // The fully-associative shadow cache sees the same reference stream
        // as the L2 (L1 misses only).
        let fa_hit = if is_ifetch {
            // Instruction lines share the L2 but their conflicts are not the
            // paper's focus; still feed the shadow for consistency.
            self.cpus[cpu].shadow.reference(pa_l2_line)
        } else {
            self.cpus[cpu].shadow.reference(pa_l2_line)
        };

        if let Some(state) = l2_state {
            let hit_cycles = self.cfg.l2_hit_cycles();
            latency += hit_cycles;
            self.cpus[cpu].stats.l2_hits += 1;
            self.cpus[cpu].stats.l2_hit_stall_cycles += hit_cycles;
            // The emptiness gate keeps prefetch-hit bookkeeping off the
            // hit path of runs that never prefetch (removal from an empty
            // set is a no-op either way).
            if !self.cpus[cpu].pf_filled.is_empty() && self.cpus[cpu].pf_filled.remove(pa_l2_line) {
                self.cpus[cpu].stats.prefetch_hits += 1;
            }
            if is_write {
                latency += self.write_touch_in_state(cpu, now, pa_l2_line, sub, state);
            }
            self.fill_l1(cpu, va_line, pa.0, is_ifetch);
            return AccessOutcome {
                latency_cycles: latency,
                serviced_by: ServicedBy::L2,
                miss_class: None,
                tlb_miss,
            };
        }

        // In-flight prefetch?
        if let Some(&(completion, _state)) = self.cpus[cpu].inflight.get(pa_l2_line) {
            let wait = completion.saturating_sub(now);
            self.complete_prefetches(cpu, completion.max(now));
            let hit_cycles = self.cfg.l2_hit_cycles();
            latency += wait + hit_cycles;
            {
                let stats = &mut self.cpus[cpu].stats;
                stats.prefetch_hits += 1;
                stats.prefetch_wait_cycles += wait;
                stats.l2_hit_stall_cycles += hit_cycles;
            }
            if is_write {
                latency += self.write_touch(cpu, now + wait, pa_l2_line, sub);
            }
            self.fill_l1(cpu, va_line, pa.0, is_ifetch);
            return AccessOutcome {
                latency_cycles: latency,
                serviced_by: ServicedBy::Prefetch,
                miss_class: None,
                tlb_miss,
            };
        }

        // Victim-cache swap-back (extension feature): the line was evicted
        // recently and is still in the per-CPU victim buffer.
        let vc_state = self.cpus[cpu]
            .victim
            .as_mut()
            .and_then(|vc| vc.take(pa_l2_line));
        if let Some(state) = vc_state {
            let swap_cycles = 2 * self.cfg.l2_hit_cycles();
            latency += swap_cycles;
            {
                let stats = &mut self.cpus[cpu].stats;
                stats.victim_hits += 1;
                stats.l2_hit_stall_cycles += swap_cycles;
            }
            self.fill_l2(cpu, now, pa_l2_line, state);
            if is_write {
                latency += self.write_touch(cpu, now, pa_l2_line, sub);
            }
            self.fill_l1(cpu, va_line, pa.0, is_ifetch);
            return AccessOutcome {
                latency_cycles: latency,
                serviced_by: ServicedBy::VictimCache,
                miss_class: None,
                tlb_miss,
            };
        }

        // Full external-cache miss. Classify first (coherence beats
        // replacement; cold only when the CPU never saw the line).
        let class = if let Some(c) = self.sharing.classify_refetch(pa_l2_line, cpu, sub) {
            c
        } else if !self.cpus[cpu]
            .seen_lines
            .contains(pa_l2_line >> self.cfg.l2.line_shift())
        {
            MissClass::Cold
        } else if fa_hit {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        };
        self.cpus[cpu]
            .seen_lines
            .insert(pa_l2_line >> self.cfg.l2.line_shift());

        let (service_latency, serviced_by, fill_state) =
            self.service_miss(cpu, now, pa_l2_line, sub, is_write);
        latency += service_latency;

        self.fill_l2(cpu, now, pa_l2_line, fill_state);
        if is_write {
            self.sharing.on_write(pa_l2_line, cpu, sub);
        }
        self.fill_l1(cpu, va_line, pa.0, is_ifetch);

        {
            let stats = &mut self.cpus[cpu].stats;
            stats.misses.add(class, 1);
            stats.miss_stall_cycles.add(class, service_latency);
        }
        self.probe
            .on_l2_miss(cpu, now, class.into(), service_latency);
        if !self.regions.is_empty() {
            let array_id = self
                .regions
                .lookup(va)
                .unwrap_or(cdpc_obs::ATTR_OTHER_ARRAY);
            let color = self.color_of_pa(pa.0);
            self.probe
                .on_classified_miss(cpu, now, array_id, color, class.into(), service_latency);
        }

        AccessOutcome {
            latency_cycles: latency,
            serviced_by,
            miss_class: Some(class),
            tlb_miss,
        }
    }

    /// Issues a prefetch for the line containing `va`/`pa`.
    ///
    /// `exclusive` requests ownership (prefetch-for-write). Follows the
    /// R10000 rules: dropped on TLB miss or residency, the fifth outstanding
    /// prefetch stalls.
    pub fn prefetch(
        &mut self,
        cpu: CpuId,
        now: u64,
        va: VirtAddr,
        pa: PhysAddr,
        exclusive: bool,
    ) -> PrefetchOutcome {
        match self.prefetch_screen(cpu, now, va, pa) {
            Some(dropped) => dropped,
            None => self.prefetch_issue(cpu, now, pa, exclusive),
        }
    }

    /// The drop-screening half of [`prefetch`](Self::prefetch): TLB check
    /// (a dropped prefetch on a TLB miss, per the R10000 model) and the
    /// residency check. Returns the final outcome if the prefetch is
    /// dropped, `None` if it should proceed to
    /// [`prefetch_issue`](Self::prefetch_issue).
    ///
    /// Split out for the parallel engine: everything here reads and
    /// writes *only* CPU-local state (TLB peek, this CPU's inflight
    /// completions, caches, and statistics), so a dropped prefetch needs
    /// no cross-CPU serialization — while the issue half touches the bus,
    /// the directory, and possibly other caches. The screen is idempotent
    /// at a fixed `now` and machine state, so the engine may re-run it
    /// when its victim gate defers the issue half.
    pub fn prefetch_screen(
        &mut self,
        cpu: CpuId,
        now: u64,
        va: VirtAddr,
        pa: PhysAddr,
    ) -> Option<PrefetchOutcome> {
        let vpn = self.vpn_of(va.0);
        let pa_l2_line = self.cfg.l2.line_of(pa.0);
        if !self.cpus[cpu].tlb.probe(vpn) {
            self.cpus[cpu].stats.prefetches_dropped_tlb += 1;
            self.probe
                .on_prefetch_dropped(cpu, now, pa_l2_line, PrefetchDropReason::TlbMiss);
            return Some(PrefetchOutcome {
                issued: false,
                stall_cycles: 0,
            });
        }
        self.complete_prefetches(cpu, now);
        let resident = matches!(self.cpus[cpu].l2.peek(pa_l2_line), Lookup::Hit(_))
            || self.cpus[cpu].inflight.contains_key(pa_l2_line)
            || self.cpus[cpu]
                .victim
                .as_ref()
                .is_some_and(|vc| vc.contains(pa_l2_line));
        if resident {
            self.cpus[cpu].stats.prefetches_dropped_resident += 1;
            self.probe
                .on_prefetch_dropped(cpu, now, pa_l2_line, PrefetchDropReason::Resident);
            return Some(PrefetchOutcome {
                issued: false,
                stall_cycles: 0,
            });
        }
        None
    }

    /// The issue half of [`prefetch`](Self::prefetch): reserves a
    /// prefetch slot, services the miss over the bus (with coherence
    /// actions against other caches), and tracks the line as inflight.
    /// Must only be called after [`prefetch_screen`](Self::prefetch_screen)
    /// returned `None` at the same `now` and machine state.
    pub fn prefetch_issue(
        &mut self,
        cpu: CpuId,
        now: u64,
        pa: PhysAddr,
        exclusive: bool,
    ) -> PrefetchOutcome {
        let pa_l2_line = self.cfg.l2.line_of(pa.0);
        self.lifetime_refs += 1;
        let grant = self.cpus[cpu].slots.reserve(now);
        let issue_at = grant.issue_at;
        self.complete_prefetches(cpu, issue_at);
        let sub = self.sub_block_of(pa.0);
        let (service_latency, _serviced_by, fill_state) =
            self.service_miss(cpu, issue_at, pa_l2_line, sub, exclusive);
        let completion = issue_at + service_latency;
        self.cpus[cpu].slots.occupy(completion);
        self.cpus[cpu]
            .inflight
            .insert(pa_l2_line, (completion, fill_state));
        {
            let stats = &mut self.cpus[cpu].stats;
            stats.prefetches_issued += 1;
            stats.prefetch_slot_stall_cycles += grant.stall_cycles;
        }
        self.probe
            .on_prefetch_issued(cpu, issue_at, pa_l2_line, grant.stall_cycles);
        PrefetchOutcome {
            issued: true,
            stall_cycles: grant.stall_cycles,
        }
    }

    /// Invalidates a TLB entry on all CPUs (page unmapped or recolored).
    pub fn shoot_down_tlb(&mut self, vpn: Vpn) {
        for c in &mut self.cpus {
            c.tlb.invalidate(vpn);
        }
    }

    /// Flushes every cached line of one physical page from every
    /// processor's hierarchy (the cache side of a page recoloring or
    /// unmap). Dirty lines are written back over the bus at time `now`.
    pub fn flush_physical_page(&mut self, now: u64, page_base: PhysAddr) {
        let line = self.cfg.l2.line_bytes() as u64;
        let page = self.cfg.page_size as u64;
        debug_assert_eq!(page_base.0 % page, 0, "page base must be aligned");
        for k in 0..(page / line) {
            let line_addr = page_base.0 + k * line;
            for cpu in 0..self.cfg.num_cpus {
                // The copy may live in the L2 proper or (after an eviction)
                // in the victim buffer, which retains directory rights.
                let held = match self.cpus[cpu].l2.peek(line_addr) {
                    Lookup::Hit(state) => Some(state),
                    Lookup::Miss => self.cpus[cpu]
                        .victim
                        .as_mut()
                        .and_then(|vc| vc.take(line_addr)),
                };
                if let Some(state) = held {
                    if state == Mesi::Modified {
                        let occ = self.cfg.bus_occupancy_cycles(line);
                        self.bus_request(now, occ, BusUse::Writeback);
                    }
                    self.drop_line(cpu, line_addr);
                }
            }
            self.directory.remove(line_addr);
        }
        self.probe.on_page_flush(page_base.0, page);
    }

    /// Checks the global coherence invariants; panics with a description on
    /// the first violation. O(cache lines); intended for tests and
    /// debugging, not the simulation fast path.
    ///
    /// Invariants:
    /// 1. every resident L2 line appears in the directory with that CPU's
    ///    sharer bit set;
    /// 2. a `Modified` line is the directory's dirty owner and the only
    ///    sharer;
    /// 3. when two or more CPUs share a line, every copy is `Shared`;
    /// 4. every directory sharer bit corresponds to a resident or
    ///    in-flight-prefetch line.
    ///
    /// # Panics
    ///
    /// Panics when any invariant is violated.
    pub fn validate_coherence(&self) {
        for (cpu, c) in self.cpus.iter().enumerate() {
            let vc_lines = c.victim.as_ref().into_iter().flat_map(|v| v.iter());
            for (line, state) in c.l2.resident().chain(vc_lines) {
                let entry = self.directory.get(line).unwrap_or_else(|| {
                    panic!("cpu{cpu} holds {line:#x} but the directory has no entry")
                });
                assert!(
                    entry.sharers & (1 << cpu) != 0,
                    "cpu{cpu} holds {line:#x} without its sharer bit"
                );
                match state {
                    Mesi::Modified => {
                        assert_eq!(
                            entry.dirty_owner,
                            Some(cpu),
                            "modified {line:#x} in cpu{cpu} but directory owner is {:?}",
                            entry.dirty_owner
                        );
                        assert_eq!(
                            entry.sharers,
                            1 << cpu,
                            "modified {line:#x} has other sharers: {:#x}",
                            entry.sharers
                        );
                    }
                    Mesi::Exclusive => {
                        assert_eq!(
                            entry.sharers,
                            1 << cpu,
                            "exclusive {line:#x} has other sharers: {:#x}",
                            entry.sharers
                        );
                    }
                    Mesi::Shared => {
                        assert_ne!(
                            entry.dirty_owner,
                            Some(cpu),
                            "shared {line:#x} cannot be the dirty owner"
                        );
                    }
                }
            }
        }
        for (line, entry) in self.directory.iter() {
            for cpu in 0..self.cfg.num_cpus {
                if entry.sharers & (1 << cpu) != 0 {
                    let resident = matches!(self.cpus[cpu].l2.peek(line), Lookup::Hit(_));
                    let in_flight = self.cpus[cpu].inflight.contains_key(line);
                    let in_vc = self.cpus[cpu]
                        .victim
                        .as_ref()
                        .is_some_and(|vc| vc.contains(line));
                    assert!(
                        resident || in_flight || in_vc,
                        "directory says cpu{cpu} shares {line:#x} but it holds nothing"
                    );
                }
            }
        }
    }

    // --- internals -------------------------------------------------------

    /// Requests the bus and reports the transaction to the probe.
    fn bus_request(
        &mut self,
        now: u64,
        occupancy_cycles: u64,
        use_: BusUse,
    ) -> crate::bus::BusGrant {
        let grant = self.bus.request(now, occupancy_cycles, use_);
        self.probe
            .on_bus_transaction(now, use_.into(), grant.queue_cycles, grant.occupancy_cycles);
        grant
    }

    /// Handles the coherence side of a write that hits the local hierarchy:
    /// upgrades a `Shared` line, silently dirties an `Exclusive` one, and
    /// feeds the sharing tracker. Returns extra stall cycles.
    fn write_touch(&mut self, cpu: CpuId, now: u64, pa_l2_line: u64, sub: u32) -> u64 {
        let state = match self.cpus[cpu].l2.peek(pa_l2_line) {
            Lookup::Hit(s) => s,
            // L1 hit with the line missing from L2 can only happen
            // transiently around an inclusion invalidation; treat as no-op.
            Lookup::Miss => return 0,
        };
        self.write_touch_in_state(cpu, now, pa_l2_line, sub, state)
    }

    /// [`write_touch`](Self::write_touch) for a caller that has already
    /// probed the L2 and knows the line's state — skips the second probe.
    fn write_touch_in_state(
        &mut self,
        cpu: CpuId,
        now: u64,
        pa_l2_line: u64,
        sub: u32,
        state: Mesi,
    ) -> u64 {
        let mut extra = 0;
        if state.needs_upgrade_for_write() {
            let occ = self.cfg.bus_occupancy_cycles(self.cfg.upgrade_bus_bytes);
            let grant = self.bus_request(now, occ, BusUse::Upgrade);
            extra += grant.total_cycles();
            self.cpus[cpu].stats.upgrade_stall_cycles += grant.total_cycles();
            self.invalidate_other_copies(cpu, pa_l2_line, sub);
            self.cpus[cpu].l2.set_state(pa_l2_line, Mesi::Modified);
            let entry = self
                .directory
                .entry_or_insert_with(pa_l2_line, DirEntry::default);
            entry.sharers = 1 << cpu;
            entry.dirty_owner = Some(cpu);
            self.probe
                .on_line_state(cpu, pa_l2_line, LineState::Modified);
        } else if state == Mesi::Exclusive {
            self.cpus[cpu].l2.set_state(pa_l2_line, Mesi::Modified);
            let entry = self
                .directory
                .entry_or_insert_with(pa_l2_line, DirEntry::default);
            entry.dirty_owner = Some(cpu);
            self.probe
                .on_line_state(cpu, pa_l2_line, LineState::Modified);
        }
        self.sharing.on_write(pa_l2_line, cpu, sub);
        extra
    }

    /// Invalidates every other CPU's copy of a line (write miss or
    /// upgrade), recording sharing-tracker victims.
    fn invalidate_other_copies(&mut self, cpu: CpuId, pa_l2_line: u64, sub: u32) {
        let entry = self.directory.get(pa_l2_line).copied().unwrap_or_default();
        for victim in 0..self.cfg.num_cpus {
            if victim == cpu || entry.sharers & (1 << victim) == 0 {
                continue;
            }
            self.drop_line(victim, pa_l2_line);
            self.sharing.on_invalidate(pa_l2_line, victim, sub);
        }
    }

    /// Removes a line from one CPU's L2, L1s, shadow cache, and in-flight
    /// prefetch set (coherence invalidation).
    fn drop_line(&mut self, cpu: CpuId, pa_l2_line: u64) {
        self.probe
            .on_line_state(cpu, pa_l2_line, LineState::Invalid);
        self.cpus[cpu].l2.invalidate(pa_l2_line);
        self.cpus[cpu].shadow.invalidate(pa_l2_line);
        self.cpus[cpu].inflight.remove(pa_l2_line);
        self.cpus[cpu].pf_filled.remove(pa_l2_line);
        if let Some(vc) = self.cpus[cpu].victim.as_mut() {
            vc.invalidate(pa_l2_line);
        }
        self.invalidate_l1_sublines(cpu, pa_l2_line);
    }

    fn invalidate_l1_sublines(&mut self, cpu: CpuId, pa_l2_line: u64) {
        let l1_line = self.cfg.l1d.line_bytes() as u64;
        let n = self.cfg.l2.line_bytes() as u64 / l1_line;
        for k in 0..n {
            let pa_sub = pa_l2_line + k * l1_line;
            if let Some(va_sub) = self.cpus[cpu].l1_map.remove(pa_sub) {
                self.cpus[cpu].l1d.invalidate(va_sub);
                self.cpus[cpu].l1i.invalidate(va_sub);
            }
        }
    }

    /// Decides where a miss is serviced, performs the coherence actions and
    /// the bus transaction, and returns `(latency, source, fill state)`.
    fn service_miss(
        &mut self,
        cpu: CpuId,
        now: u64,
        pa_l2_line: u64,
        sub: u32,
        for_write: bool,
    ) -> (u64, ServicedBy, Mesi) {
        let entry = self.directory.get(pa_l2_line).copied().unwrap_or_default();
        let others = entry.sharers & !(1u32 << cpu);
        let occ = self
            .cfg
            .bus_occupancy_cycles(self.cfg.l2.line_bytes() as u64);
        let (base, source) = match entry.dirty_owner {
            Some(owner) if owner != cpu => {
                // Cache-to-cache transfer.
                if for_write {
                    self.drop_line(owner, pa_l2_line);
                    self.sharing.on_invalidate(pa_l2_line, owner, sub);
                } else {
                    let downgraded = self.cpus[owner].l2.set_state(pa_l2_line, Mesi::Shared)
                        // The owner's copy may live in its victim cache.
                        || self.cpus[owner]
                            .victim
                            .as_mut()
                            .is_some_and(|vc| vc.set_state(pa_l2_line, Mesi::Shared));
                    if downgraded {
                        self.probe
                            .on_line_state(owner, pa_l2_line, LineState::Shared);
                    }
                }
                (self.cfg.remote_latency_cycles(), ServicedBy::RemoteCache)
            }
            _ => {
                if for_write && others != 0 {
                    self.invalidate_other_copies(cpu, pa_l2_line, sub);
                } else if !for_write && others != 0 {
                    // Snooping read: clean Exclusive copies downgrade to
                    // Shared so a later write by their owner pays an
                    // upgrade.
                    for other in 0..self.cfg.num_cpus {
                        if other == cpu || others & (1 << other) == 0 {
                            continue;
                        }
                        let downgraded = self.cpus[other].l2.set_state(pa_l2_line, Mesi::Shared)
                            || self.cpus[other]
                                .victim
                                .as_mut()
                                .is_some_and(|vc| vc.set_state(pa_l2_line, Mesi::Shared));
                        if downgraded {
                            self.probe
                                .on_line_state(other, pa_l2_line, LineState::Shared);
                        }
                    }
                }
                (self.cfg.mem_latency_cycles(), ServicedBy::Memory)
            }
        };
        let grant = self.bus_request(now, occ, BusUse::Data);
        let latency = base + grant.queue_cycles;

        let entry = self
            .directory
            .entry_or_insert_with(pa_l2_line, DirEntry::default);
        let fill_state = if for_write {
            entry.sharers = 1 << cpu;
            entry.dirty_owner = Some(cpu);
            Mesi::Modified
        } else if entry.sharers & !(1u32 << cpu) != 0 || entry.dirty_owner.is_some() {
            entry.sharers |= 1 << cpu;
            entry.dirty_owner = None;
            Mesi::Shared
        } else {
            entry.sharers |= 1 << cpu;
            entry.dirty_owner = None;
            Mesi::Exclusive
        };
        (latency, source, fill_state)
    }

    /// Installs a line in `cpu`'s L2, handling the victim.
    fn fill_l2(&mut self, cpu: CpuId, now: u64, pa_l2_line: u64, state: Mesi) {
        self.probe.on_line_state(cpu, pa_l2_line, state.into());
        if let Some(evicted) = self.cpus[cpu].l2.fill(pa_l2_line, state) {
            self.handle_l2_eviction_state(cpu, now, evicted.line_addr, evicted.state);
        }
    }

    fn handle_l2_eviction_state(&mut self, cpu: CpuId, now: u64, victim_line: u64, state: Mesi) {
        // A prefetched line displaced before its first demand use is a
        // wasted prefetch, not a future prefetch hit.
        self.cpus[cpu].pf_filled.remove(victim_line);
        // With a victim cache, the line stays on this CPU (directory
        // rights included); only a line falling out of the victim buffer
        // is truly released.
        if self.cpus[cpu].victim.is_some() {
            let pushed_out = self.cpus[cpu]
                .victim
                .as_mut()
                .expect("checked above")
                .insert(victim_line, state);
            self.invalidate_l1_sublines(cpu, victim_line);
            if let Some(out) = pushed_out {
                self.release_line(cpu, now, out.line_addr, out.dirty);
            }
            return;
        }
        self.release_line(cpu, now, victim_line, state == Mesi::Modified);
        self.invalidate_l1_sublines(cpu, victim_line);
    }

    /// Fully releases a line from this CPU: write back if dirty, clear
    /// directory rights.
    fn release_line(&mut self, cpu: CpuId, now: u64, line: u64, dirty: bool) {
        self.probe.on_line_state(cpu, line, LineState::Invalid);
        if dirty {
            let occ = self
                .cfg
                .bus_occupancy_cycles(self.cfg.l2.line_bytes() as u64);
            self.bus_request(now, occ, BusUse::Writeback);
        }
        if let Some(entry) = self.directory.get_mut(line) {
            entry.sharers &= !(1u32 << cpu);
            if entry.dirty_owner == Some(cpu) {
                entry.dirty_owner = None;
            }
            if entry.sharers == 0 {
                self.directory.remove(line);
            }
        }
    }

    fn fill_l1(&mut self, cpu: CpuId, va_line: u64, pa: u64, is_ifetch: bool) {
        fill_l1_cm(&self.cfg, &mut self.cpus[cpu], va_line, pa, is_ifetch);
    }

    /// Applies all prefetch fills whose completion time has passed.
    fn complete_prefetches(&mut self, cpu: CpuId, now: u64) {
        if self.cpus[cpu].inflight.is_empty() {
            return;
        }
        // Drain into the per-CPU scratch buffer (no allocation in steady
        // state) and apply fills ordered by completion time, ties broken by
        // line address — a physical order, not an artifact of map layout.
        let mut done = std::mem::take(&mut self.cpus[cpu].pf_done);
        done.clear();
        done.extend(
            self.cpus[cpu]
                .inflight
                .iter()
                .filter(|&(_, &(c, _))| c <= now)
                .map(|(line, &(c, s))| (c, line, s)),
        );
        done.sort_unstable_by_key(|&(c, line, _)| (c, line));
        for &(completion, line, recorded) in &done {
            self.cpus[cpu].inflight.remove(line);
            // A racing invalidation may have removed the entry's directory
            // rights; only fill if we still appear as a sharer. The fill
            // state is re-derived from the directory: another CPU may have
            // read the line while it was in flight, downgrading an
            // exclusive prefetch's recorded `Modified` to `Shared`.
            let entry = self.directory.get(line).copied();
            let state = match entry {
                Some(e) if e.sharers & (1 << cpu) == 0 => {
                    // Rights were revoked while in flight: report the
                    // discarded claim so shadow trackers stay exact.
                    self.probe.on_line_state(cpu, line, LineState::Invalid);
                    continue;
                }
                Some(e) if e.dirty_owner == Some(cpu) => Mesi::Modified,
                Some(e) if e.sharers == 1 << cpu => match recorded {
                    // Sole sharer but no longer dirty owner: ownership was
                    // stripped while in flight; the copy arrives clean.
                    Mesi::Modified => Mesi::Exclusive,
                    s => s,
                },
                Some(_) => Mesi::Shared,
                None => {
                    self.probe.on_line_state(cpu, line, LineState::Invalid);
                    continue;
                }
            };
            if !matches!(self.cpus[cpu].l2.peek(line), Lookup::Hit(_)) {
                self.fill_l2(cpu, completion, line, state);
                self.cpus[cpu].pf_filled.insert(line);
            }
        }
        done.clear();
        self.cpus[cpu].pf_done = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(cpus: usize) -> MemConfig {
        let mut c = MemConfig::paper_base(cpus);
        // Shrink caches so tests exercise evictions quickly:
        // L1: 256 B (2-way, 32 B lines); L2: 1 KB direct-mapped, 128 B lines.
        c.l1d = crate::config::CacheConfig::new(256, 32, 2);
        c.l1i = crate::config::CacheConfig::new(256, 32, 2);
        c.l2 = crate::config::CacheConfig::new(1024, 128, 1);
        c.tlb_entries = 4;
        c
    }

    fn va(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    fn pa(x: u64) -> PhysAddr {
        PhysAddr(x)
    }

    #[test]
    fn first_access_is_cold_from_memory() {
        let mut m = MemorySystem::new(small_cfg(1));
        let out = m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::Memory);
        assert_eq!(out.miss_class, Some(MissClass::Cold));
        assert!(out.tlb_miss);
        assert!(out.latency_cycles >= m.config().mem_latency_cycles());
    }

    /// Differential check of the engine's core contract: executing every
    /// lane-eligible reference through [`Lane::access_private`] (with parked
    /// references replayed through the serial path) produces bit-identical
    /// latencies, statistics, and coherence state to pure serial execution.
    #[test]
    fn lane_private_execution_matches_serial() {
        // An 8 KB L2 over a 6 KB working set: after warm-up most references
        // hit (private), while writes on shared lines, upgrades, and the
        // remaining misses park — both paths get real coverage. The 4-entry
        // TLB over 6 pages keeps deferred TLB events flowing too.
        let mut cfg = small_cfg(2);
        cfg.l2 = crate::config::CacheConfig::new(8192, 128, 1);
        let mut par = MemorySystem::new(cfg.clone());
        let mut ser = MemorySystem::new(cfg.clone());
        let mut lanes = [blank_lane(&cfg), blank_lane(&cfg)];
        par.swap_lane(0, &mut lanes[0]);
        par.swap_lane(1, &mut lanes[1]);
        let mut fx = LaneFx::default();
        let mut clocks = [0u64; 2];
        let (mut private, mut parked) = (0u64, 0u64);

        // Deterministic xorshift stream: L1 hits, Modified re-writes,
        // upgrades, invalidations, and misses all occur.
        let mut s = 0x9e3779b97f4a7c15u64;
        for i in 0..20_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let cpu = (i & 1) as usize;
            let addr = (s >> 8) % 6144;
            let kind = match s % 10 {
                0..=5 => AccessKind::Read,
                6..=8 => AccessKind::Write,
                _ => AccessKind::IFetch,
            };
            let now = clocks[cpu];
            let step = lanes[cpu].access_private(&cfg, now, addr, addr, kind, &mut fx);
            let lat = match step {
                LaneStep::Executed { latency, .. } => {
                    private += 1;
                    // The test runs in exact serial order, so applying each
                    // reference's effects immediately is the serial schedule.
                    par.apply_lane_fx(cpu, &mut fx);
                    latency
                }
                LaneStep::Park => {
                    parked += 1;
                    // A parked reference may touch the other CPU's caches
                    // (invalidation, downgrade), so both lanes re-attach —
                    // the engine's "victims are parked" invariant.
                    par.swap_lane(0, &mut lanes[0]);
                    par.swap_lane(1, &mut lanes[1]);
                    let out = par.access(cpu, now, va(addr), pa(addr), kind);
                    par.swap_lane(0, &mut lanes[0]);
                    par.swap_lane(1, &mut lanes[1]);
                    out.latency_cycles
                }
            };
            let ser_out = ser.access(cpu, now, va(addr), pa(addr), kind);
            assert_eq!(lat, ser_out.latency_cycles, "ref {i} latency diverged");
            clocks[cpu] += lat + 1;
        }
        assert!(private > 1000, "lane path barely exercised: {private}");
        assert!(parked > 1000, "park path barely exercised: {parked}");

        par.swap_lane(0, &mut lanes[0]);
        par.swap_lane(1, &mut lanes[1]);
        par.validate_coherence();
        assert_eq!(par.lifetime_refs(), ser.lifetime_refs());
        assert_eq!(
            format!("{:?}", par.stats()),
            format!("{:?}", ser.stats()),
            "statistics diverged between lane and serial execution"
        );
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        let out = m.access(0, 1000, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::L1);
        assert_eq!(out.latency_cycles, 0);
    }

    #[test]
    fn l1_conflict_still_hits_l2() {
        let mut m = MemorySystem::new(small_cfg(1));
        // Three VAs mapping to the same L1 set (stride 256 = L1 size /
        // assoc... set stride is 4 sets * 32 B = 128 B; use stride 256 so
        // they share a set in the 2-way L1) but the same 128 B L2 line? No —
        // pick same page, different L2 lines that alias in L1.
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Read);
        m.access(0, 10, va(0x0100), pa(0x0100), AccessKind::Read);
        m.access(0, 20, va(0x0200), pa(0x0200), AccessKind::Read);
        // 0x0000 evicted from 2-way L1 set; L2 (1 KB) still holds it.
        let out = m.access(0, 5000, va(0x0000), pa(0x0000), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::L2);
        assert_eq!(out.miss_class, None);
    }

    #[test]
    fn l2_conflict_miss_classified() {
        let mut m = MemorySystem::new(small_cfg(1));
        // L2 is 1 KB direct-mapped: pa 0x0000 and 0x0400 collide, and the
        // shadow (8 lines) retains both → conflict.
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Read);
        m.access(0, 10, va(0x0400), pa(0x0400), AccessKind::Read);
        let out = m.access(0, 5000, va(0x0000), pa(0x0000), AccessKind::Read);
        assert_eq!(out.miss_class, Some(MissClass::Conflict));
    }

    #[test]
    fn l2_capacity_miss_classified() {
        let mut m = MemorySystem::new(small_cfg(1));
        // Touch 16 distinct L2 lines (cache holds 8): the oldest is gone
        // from the shadow too → capacity.
        for i in 0..16u64 {
            m.access(0, i * 100, va(i * 128), pa(i * 128), AccessKind::Read);
        }
        let out = m.access(0, 100_000, va(0), pa(0), AccessKind::Read);
        assert_eq!(out.miss_class, Some(MissClass::Capacity));
    }

    #[test]
    fn page_color_determines_conflicts() {
        // The whole point of the paper: same VAs, different physical
        // mapping → different conflict behaviour.
        let mut cfg = small_cfg(1);
        cfg.l2 = crate::config::CacheConfig::new(8192, 128, 1); // 2 pages
                                                                // Conflicting mapping: two pages, same color (pa 0 and 8192).
        let mut m = MemorySystem::new(cfg.clone());
        m.access(0, 0, va(0), pa(0), AccessKind::Read);
        m.access(0, 10, va(4096), pa(8192), AccessKind::Read);
        let out = m.access(0, 20, va(0), pa(0), AccessKind::Read);
        // pa 0 and 8192 share set 0 in an 8 KB direct-mapped cache... they
        // differ: 8192 % 8192 = 0 → same set. Conflict.
        assert_eq!(out.miss_class, Some(MissClass::Conflict));

        // Friendly mapping: pa 0 and 4096 (different halves of the cache).
        let mut m = MemorySystem::new(cfg);
        m.access(0, 0, va(0), pa(0), AccessKind::Read);
        m.access(0, 10, va(4096), pa(4096), AccessKind::Read);
        let out = m.access(0, 20, va(0), pa(0), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::L1, "no conflict: still cached");
    }

    #[test]
    fn remote_dirty_line_serviced_cache_to_cache() {
        let mut m = MemorySystem::new(small_cfg(2));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Write);
        let out = m.access(1, 1000, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::RemoteCache);
        // First access by CPU 1 → cold, even though it's communication-ish.
        assert_eq!(out.miss_class, Some(MissClass::Cold));
        assert!(out.latency_cycles >= m.config().remote_latency_cycles());
    }

    #[test]
    fn invalidation_then_refetch_is_true_sharing() {
        let mut m = MemorySystem::new(small_cfg(2));
        // CPU1 reads the line, CPU0 writes sub-block 0, CPU1 re-reads
        // sub-block 0 → true sharing.
        m.access(1, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(0, 100, va(0x1000), pa(0x1000), AccessKind::Write);
        let out = m.access(1, 10_000, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_eq!(out.miss_class, Some(MissClass::TrueSharing));
    }

    #[test]
    fn disjoint_subblocks_are_false_sharing() {
        let mut m = MemorySystem::new(small_cfg(2));
        // CPU1 reads sub-block 1 (offset 32); CPU0 writes sub-block 0;
        // CPU1 re-reads sub-block 1 → false sharing.
        m.access(1, 0, va(0x1020), pa(0x1020), AccessKind::Read);
        m.access(0, 100, va(0x1000), pa(0x1000), AccessKind::Write);
        let out = m.access(1, 10_000, va(0x1020), pa(0x1020), AccessKind::Read);
        assert_eq!(out.miss_class, Some(MissClass::FalseSharing));
    }

    #[test]
    fn write_to_shared_line_pays_upgrade() {
        let mut m = MemorySystem::new(small_cfg(2));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(1, 100, va(0x1000), pa(0x1000), AccessKind::Read);
        // Both now share the line; CPU0 writes → upgrade.
        let before = m.stats().cpus[0].upgrade_stall_cycles;
        m.access(0, 10_000, va(0x1000), pa(0x1000), AccessKind::Write);
        let after = m.stats().cpus[0].upgrade_stall_cycles;
        assert!(after > before, "upgrade must cost bus time");
        let (_, _, upgrades) = m.stats().bus_occupancy;
        assert!(upgrades > 0);
    }

    #[test]
    fn bus_contention_delays_misses() {
        let mut cfg = small_cfg(4);
        cfg.bus_bytes_per_us = 100; // starve the bus
        let mut m = MemorySystem::new(cfg);
        // Four CPUs miss at the same instant; later grants queue.
        let lat: Vec<u64> = (0..4)
            .map(|c| {
                m.access(
                    c,
                    0,
                    va(0x1000 * (c as u64 + 1)),
                    pa(0x1000 * (c as u64 + 1)),
                    AccessKind::Read,
                )
                .latency_cycles
            })
            .collect();
        assert!(lat[3] > lat[0], "queued miss must be slower: {lat:?}");
    }

    #[test]
    fn prefetch_hides_miss_latency() {
        let mut m = MemorySystem::new(small_cfg(1));
        // Map the page in the TLB first (prefetches are dropped otherwise).
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        let pf = m.prefetch(0, 100, va(0x1080), pa(0x1080), false);
        assert!(pf.issued);
        // Access long after the prefetch completed: L2 hit.
        let out = m.access(0, 100_000, va(0x1080), pa(0x1080), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::L2);
        assert_eq!(out.miss_class, None);
    }

    #[test]
    fn late_prefetch_still_saves_partial_latency() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.prefetch(0, 1000, va(0x1080), pa(0x1080), false);
        // Demand access arrives halfway through the prefetch — it waits the
        // remainder, which is less than a full miss.
        let out = m.access(0, 1100, va(0x1080), pa(0x1080), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::Prefetch);
        assert!(out.latency_cycles < m.config().mem_latency_cycles());
        assert!(m.stats().cpus[0].prefetch_wait_cycles > 0);
    }

    #[test]
    fn prefetch_dropped_on_tlb_miss() {
        let mut m = MemorySystem::new(small_cfg(1));
        let pf = m.prefetch(0, 0, va(0x9000), pa(0x9000), false);
        assert!(!pf.issued);
        assert_eq!(m.stats().cpus[0].prefetches_dropped_tlb, 1);
    }

    #[test]
    fn prefetch_dropped_when_resident() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        let pf = m.prefetch(0, 10_000, va(0x1000), pa(0x1000), false);
        assert!(!pf.issued);
        assert_eq!(m.stats().cpus[0].prefetches_dropped_resident, 1);
    }

    #[test]
    fn fifth_outstanding_prefetch_stalls() {
        let mut cfg = small_cfg(1);
        cfg.l2 = crate::config::CacheConfig::new(4096, 128, 1);
        let mut m = MemorySystem::new(cfg);
        // Warm the TLB page.
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Read);
        let mut stalls = 0;
        for i in 1..=5u64 {
            let pf = m.prefetch(0, 500, va(i * 128), pa(i * 128), false);
            assert!(pf.issued);
            stalls += pf.stall_cycles;
        }
        assert!(stalls > 0, "the fifth prefetch must stall");
        assert!(m.stats().cpus[0].prefetch_slot_stall_cycles > 0);
    }

    #[test]
    fn writeback_traffic_appears_on_bus() {
        let mut m = MemorySystem::new(small_cfg(1));
        // Dirty a line, then force its eviction by walking the whole L2
        // plus one conflicting line.
        m.access(0, 0, va(0), pa(0), AccessKind::Write);
        m.access(0, 10, va(0x400), pa(0x400), AccessKind::Read); // same set, 1 KB DM
        let (_, wb, _) = m.stats().bus_occupancy;
        assert!(wb > 0, "dirty eviction must write back");
    }

    #[test]
    fn stats_reset_preserves_cache_state() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.reset_stats();
        assert_eq!(m.stats().cpus[0].data_refs, 0);
        // Still cached: next access is an L1 hit, proving state survived.
        let out = m.access(0, 10, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_eq!(out.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn flush_physical_page_evicts_everywhere() {
        let mut m = MemorySystem::new(small_cfg(2));
        // Both CPUs cache lines of the page at pa 0x1000.
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Write);
        m.access(1, 100, va(0x1080), pa(0x1080), AccessKind::Read);
        let (_, wb_before, _) = m.stats().bus_occupancy;
        m.flush_physical_page(1_000, pa(0x1000));
        // Dirty line written back.
        let (_, wb_after, _) = m.stats().bus_occupancy;
        assert!(wb_after > wb_before, "modified line must be written back");
        // Next accesses miss again (cold was consumed, so they classify as
        // replacement/coherence — the point is they MISS).
        let out0 = m.access(0, 2_000, va(0x1000), pa(0x1000), AccessKind::Read);
        assert_ne!(out0.serviced_by, ServicedBy::L1);
        assert_ne!(out0.serviced_by, ServicedBy::L2);
        let out1 = m.access(1, 3_000, va(0x1080), pa(0x1080), AccessKind::Read);
        assert_ne!(out1.serviced_by, ServicedBy::L1);
        assert_ne!(out1.serviced_by, ServicedBy::L2);
    }

    #[test]
    fn victim_cache_absorbs_direct_mapped_conflicts() {
        let mut cfg = small_cfg(1);
        cfg.victim_cache_lines = 4;
        let mut m = MemorySystem::new(cfg);
        // 1 KB direct-mapped L2: 0x0000 and 0x0400 collide; ping-pong
        // between them. Without a victim cache every access misses; with
        // one, steady state is all swap-backs.
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Read);
        m.access(0, 100, va(0x0400), pa(0x0400), AccessKind::Read);
        let mut t = 10_000;
        for i in 0..10u64 {
            let addr = if i % 2 == 0 { 0x0000 } else { 0x0400 };
            // Distinct L1 lines so the L1 never absorbs the ping-pong.
            let offset = 32 * (i % 4);
            let out = m.access(0, t, va(addr + offset), pa(addr + offset), AccessKind::Read);
            t += 1_000;
            assert_ne!(
                out.serviced_by,
                ServicedBy::Memory,
                "iteration {i}: the victim cache must absorb the conflict"
            );
        }
        assert!(m.stats().cpus[0].victim_hits > 0);
        m.validate_coherence();
    }

    #[test]
    fn victim_cache_lines_stay_coherent() {
        let mut cfg = small_cfg(2);
        cfg.victim_cache_lines = 4;
        let mut m = MemorySystem::new(cfg);
        // CPU0 dirties a line, then conflicts it out into its victim cache.
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Write);
        m.access(0, 100, va(0x0400), pa(0x0400), AccessKind::Read);
        m.validate_coherence();
        // CPU1 writes the line: CPU0's victim copy must be invalidated.
        m.access(1, 10_000, va(0x0000), pa(0x0000), AccessKind::Write);
        m.validate_coherence();
        // CPU0's next read must fetch fresh data, not a stale victim copy.
        let out = m.access(0, 20_000, va(0x0000), pa(0x0000), AccessKind::Read);
        assert_ne!(out.serviced_by, ServicedBy::VictimCache, "stale copy used");
        m.validate_coherence();
    }

    #[test]
    fn counting_probe_sees_misses_bus_and_prefetches() {
        let mut m = MemorySystem::with_probe(small_cfg(2), cdpc_obs::CountingProbe::new());
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(1, 100, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(0, 10_000, va(0x1000), pa(0x1000), AccessKind::Write); // upgrade
        m.prefetch(0, 20_000, va(0x1080), pa(0x1080), false);
        m.prefetch(0, 30_000, va(0x9000), pa(0x9000), false); // TLB drop
        let stats = m.stats().aggregate();
        let p = m.probe();
        assert_eq!(p.l2_misses, stats.misses.total());
        assert_eq!(p.tlb_misses, stats.tlb_misses);
        assert_eq!(p.prefetches_issued, stats.prefetches_issued);
        assert_eq!(p.prefetches_dropped, stats.prefetches_dropped_tlb);
        assert_eq!(p.bus_transactions, m.stats().bus_transactions);
        assert!(p.event_count() > 0);
    }

    #[derive(Default)]
    struct ClassifiedLog {
        events: Vec<(usize, u32, u32, cdpc_obs::MissClassId, u64)>,
        l2_misses: u64,
    }

    impl Probe for ClassifiedLog {
        fn on_l2_miss(&mut self, _cpu: usize, _cycle: u64, _class: cdpc_obs::MissClassId, _s: u64) {
            self.l2_misses += 1;
        }

        fn on_classified_miss(
            &mut self,
            cpu: usize,
            _cycle: u64,
            array_id: u32,
            color: u32,
            class: cdpc_obs::MissClassId,
            latency: u64,
        ) {
            self.events.push((cpu, array_id, color, class, latency));
        }
    }

    #[test]
    fn classified_misses_carry_array_and_color() {
        // Full-size paper config: 1 MB direct-mapped L2, 4 KB pages =>
        // 256 colors, so pa/4096 % 256 is the color.
        let mut m = MemorySystem::with_probe(MemConfig::paper_base(1), ClassifiedLog::default());
        m.set_regions(RegionMap::new(vec![
            cdpc_vm::Region {
                start: 0x1000,
                end: 0x2000,
                id: 0,
            },
            cdpc_vm::Region {
                start: 0x8000,
                end: 0x9000,
                id: 1,
            },
        ]));
        m.access(0, 0, va(0x1000), pa(0x3000), AccessKind::Read); // array 0, color 3
        m.access(0, 1_000, va(0x8080), pa(0x5080), AccessKind::Read); // array 1, color 5
        m.access(0, 2_000, va(0x4000), pa(0x7000), AccessKind::Read); // untagged
        let p = m.probe();
        assert_eq!(p.events.len() as u64, p.l2_misses, "one event per miss");
        assert_eq!(p.events[0].1, 0);
        assert_eq!(p.events[0].2, 3);
        assert_eq!(p.events[0].3, cdpc_obs::MissClassId::Cold);
        assert!(p.events[0].4 > 0, "cold miss has a service latency");
        assert_eq!(p.events[1].1, 1);
        assert_eq!(p.events[1].2, 5);
        assert_eq!(p.events[2].1, cdpc_obs::ATTR_OTHER_ARRAY);
        assert_eq!(p.events[2].2, 7);
    }

    #[test]
    fn no_region_map_means_no_classified_events() {
        let mut m = MemorySystem::with_probe(small_cfg(1), ClassifiedLog::default());
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        assert!(m.probe().l2_misses > 0);
        assert!(m.probe().events.is_empty());
    }

    #[test]
    fn lifetime_refs_survive_stats_reset() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.prefetch(0, 100, va(0x1080), pa(0x1080), false);
        m.reset_stats();
        m.access(0, 1000, va(0x2000), pa(0x2000), AccessKind::Read);
        assert_eq!(m.lifetime_refs(), 3, "1 ref + 1 issued prefetch + 1 ref");
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        // Warm a 2-CPU system with a mixed access pattern, snapshot it,
        // then run the same tail twice — once on the original, once on a
        // fresh system seeded from the snapshot. Stats, lifetime refs, and
        // per-access outcomes must match exactly.
        let tail = |m: &mut MemorySystem| {
            let mut outs = Vec::new();
            for i in 0..64u64 {
                let a = 0x1000 + (i % 7) * 0x480;
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                outs.push(m.access((i % 2) as usize, 10_000 + i * 13, va(a), pa(a), kind));
            }
            outs
        };
        let mut warm = MemorySystem::new(small_cfg(2));
        for i in 0..48u64 {
            let a = 0x2000 + (i % 11) * 0x100;
            warm.access((i % 2) as usize, i * 17, va(a), pa(a), AccessKind::Read);
        }
        warm.prefetch(1, 900, va(0x7000), pa(0x7000), false);
        let snap = snapshot_of(&warm);

        let mut forked = MemorySystem::new(small_cfg(2));
        // Dirty the fork first so restore provably overwrites, not merges.
        forked.access(0, 0, va(0x9000), pa(0x9000), AccessKind::Write);
        forked.restore(&snap);
        assert_eq!(forked.lifetime_refs(), warm.lifetime_refs());
        assert_eq!(forked.stats(), warm.stats());

        let straight = tail(&mut warm);
        let replayed = tail(&mut forked);
        assert_eq!(straight, replayed, "per-access outcomes diverged");
        assert_eq!(forked.stats(), warm.stats(), "stats diverged after tail");
        assert_eq!(forked.lifetime_refs(), warm.lifetime_refs());
    }

    fn snapshot_of(m: &MemorySystem) -> MemSnapshot {
        // Round-trip through a clone to make sure the snapshot itself is
        // self-contained (no hidden aliasing into the source system).
        m.snapshot().clone()
    }

    #[test]
    #[should_panic(expected = "different CPU count")]
    fn restore_rejects_topology_mismatch() {
        let warm = MemorySystem::new(small_cfg(2));
        let snap = warm.snapshot();
        let mut other = MemorySystem::new(small_cfg(4));
        other.restore(&snap);
    }

    #[test]
    fn tlb_shootdown_forces_refault() {
        let mut m = MemorySystem::new(small_cfg(1));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.shoot_down_tlb(Vpn(1));
        let out = m.access(0, 100, va(0x1000), pa(0x1000), AccessKind::Read);
        assert!(out.tlb_miss);
    }

    #[test]
    #[should_panic(expected = "has other sharers")]
    fn validate_coherence_catches_injected_bogus_sharer() {
        let mut m = MemorySystem::new(small_cfg(2));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Write);
        // Corrupt the directory: pretend CPU1 also shares the Modified line.
        let line = m.cfg.l2.line_of(0x1000);
        m.directory.get_mut(line).expect("entry exists").sharers |= 0b10;
        m.validate_coherence();
    }

    #[test]
    #[should_panic(expected = "directory owner")]
    fn validate_coherence_catches_injected_lost_owner() {
        let mut m = MemorySystem::new(small_cfg(2));
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Write);
        // Corrupt the directory: drop the dirty owner while the L2 copy
        // stays Modified.
        let line = m.cfg.l2.line_of(0x1000);
        m.directory.get_mut(line).expect("entry exists").dirty_owner = None;
        m.validate_coherence();
    }

    #[test]
    fn flush_reaches_victim_cache_copies() {
        let mut cfg = small_cfg(1);
        cfg.victim_cache_lines = 4;
        let mut m = MemorySystem::new(cfg);
        // Dirty 0x0000, then conflict it out of the 1 KB direct-mapped L2
        // into the victim buffer (0x0400 maps to the same set).
        m.access(0, 0, va(0x0000), pa(0x0000), AccessKind::Write);
        m.access(0, 100, va(0x0400), pa(0x0400), AccessKind::Read);
        assert!(m.cpus[0].victim.as_ref().expect("enabled").contains(0));
        let (_, wb_before, _) = m.stats().bus_occupancy;
        // Both lines sit in page 0; the flush must reach the victim-held
        // copy too (and write it back — it is Modified).
        m.flush_physical_page(1_000, pa(0x0000));
        let (_, wb_after, _) = m.stats().bus_occupancy;
        assert!(
            wb_after > wb_before,
            "dirty victim copy must be written back"
        );
        m.validate_coherence();
        let out = m.access(0, 2_000, va(0x0000), pa(0x0000), AccessKind::Read);
        assert_ne!(out.serviced_by, ServicedBy::VictimCache, "stale copy used");
        assert_ne!(out.serviced_by, ServicedBy::L2);
    }

    #[derive(Default)]
    struct StateLog {
        events: Vec<(CpuId, u64, cdpc_obs::LineState)>,
        flushes: u64,
    }

    impl Probe for StateLog {
        fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: cdpc_obs::LineState) {
            self.events.push((cpu, line_addr, state));
        }

        fn on_page_flush(&mut self, _page_base: u64, _page_bytes: u64) {
            self.flushes += 1;
        }
    }

    #[test]
    fn line_state_events_track_mesi_transitions() {
        use cdpc_obs::LineState as S;
        let mut m = MemorySystem::with_probe(small_cfg(2), StateLog::default());
        let line = m.cfg.l2.line_of(0x1000);
        // CPU0 read → Exclusive fill; CPU1 read → CPU0 downgrade + Shared
        // fill; CPU0 write → upgrade (CPU1 invalidated, CPU0 Modified).
        m.access(0, 0, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(1, 1_000, va(0x1000), pa(0x1000), AccessKind::Read);
        m.access(0, 10_000, va(0x1000), pa(0x1000), AccessKind::Write);
        let ev = &m.probe().events;
        let pos = |e| {
            ev.iter()
                .position(|&x| x == e)
                .unwrap_or_else(|| panic!("missing {e:?}"))
        };
        let excl = pos((0, line, S::Exclusive));
        let down = pos((0, line, S::Shared));
        let fill1 = pos((1, line, S::Shared));
        let inval = pos((1, line, S::Invalid));
        let upg = pos((0, line, S::Modified));
        assert!(
            excl < down && down < fill1,
            "downgrade precedes shared fill"
        );
        assert!(inval < upg, "invalidation precedes the upgrade to Modified");
        // Flush emits one page event after the per-line drops.
        m.flush_physical_page(20_000, pa(0x1000));
        assert_eq!(m.probe().flushes, 1);
        assert!(m.probe().events.contains(&(0, line, S::Invalid)));
    }
}
