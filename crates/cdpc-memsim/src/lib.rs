//! Trace-driven multiprocessor memory-hierarchy simulator.
//!
//! This crate stands in for the SimOS memory system used by the ASPLOS '96
//! paper *Compiler-Directed Page Coloring for Multiprocessors*. It models,
//! per processor:
//!
//! * a split, virtually-indexed L1 instruction/data cache pair (32 KB 2-way
//!   in the paper's configuration) — page mapping is invisible here;
//! * a large **physically-indexed** external (L2) cache — 1 MB direct-mapped
//!   in the base configuration — where page colors decide conflicts;
//! * a TLB whose misses cost kernel time and cause prefetches to be dropped;
//! * a MIPS R10000-style prefetch unit: up to four outstanding prefetches,
//!   a fifth stalls the processor, prefetched lines fill the L2 only.
//!
//! Shared across processors:
//!
//! * a split-transaction bus with finite bandwidth (1.2 GB/s in the paper)
//!   whose occupancy is accounted per transaction type (data, writeback,
//!   upgrade) and whose contention delays misses;
//! * MESI invalidation coherence over L2 lines, with cache-to-cache
//!   transfers at the paper's 750 ns versus 500 ns from memory.
//!
//! Every L2 miss is classified as **cold**, **capacity**, **conflict**,
//! **true sharing**, or **false sharing** ([`classify::MissClass`]) —
//! conflict vs. capacity by comparing against a same-capacity
//! fully-associative shadow cache, and true vs. false sharing by word-level
//! write tracking in the spirit of Dubois et al. (see [`classify`] for the
//! exact rule and its one documented approximation).
//!
//! The crate is deliberately independent of *why* addresses are what they
//! are: the compiler, workload models, and page-mapping policies live in
//! sibling crates, and the whole-machine run loop lives in `cdpc-machine`.
//!
//! # Example
//!
//! ```
//! use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
//! use cdpc_vm::addr::{PhysAddr, VirtAddr};
//!
//! let mut mem = MemorySystem::new(MemConfig::paper_base(2));
//! // CPU 0 reads a line: cold miss, serviced from memory.
//! let out = mem.access(0, 0, VirtAddr(0x1000), PhysAddr(0x1000), AccessKind::Read);
//! assert!(out.latency_cycles >= mem.config().mem_latency_cycles());
//! ```

pub mod bus;
pub mod cache;
pub mod classify;
pub mod config;
pub mod lru;
pub mod prefetch;
pub mod stats;
pub mod system;
pub mod tlb;
pub mod victim;

pub use classify::MissClass;
pub use config::{CacheConfig, MemConfig};
pub use stats::{CpuStats, MemStats};
pub use system::{
    blank_lane, AccessKind, AccessOutcome, CpuId, Lane, LaneFx, LaneStep, MemSnapshot,
    MemorySystem, PrefetchOutcome, ServicedBy,
};
