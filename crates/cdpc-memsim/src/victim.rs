//! A victim cache: the classic *hardware* answer to conflict misses
//! (Jouppi, ISCA 1990), implemented as an extension comparison point for
//! CDPC.
//!
//! A small fully-associative buffer sits behind each external cache and
//! catches its evictions; a subsequent miss that hits the buffer swaps the
//! line back at a fraction of the memory latency. The paper's Figure 7
//! studies set associativity as the hardware mitigation — a victim cache
//! is the other classic option, and the `victim` experiment shows the same
//! conclusion: hardware absorbs conflict *hot spots* but cannot fix cache
//! *under-utilization*, which is CDPC's real win.

use cdpc_core::fastmap::FxMap64;

use crate::cache::Mesi;
use crate::lru::{LruInsert, LruSet};

/// A small fully-associative victim buffer holding recently evicted lines.
#[derive(Debug, Clone)]
pub struct VictimCache {
    lru: LruSet,
    states: FxMap64<Mesi>,
    hits: u64,
    insertions: u64,
}

/// A dirty line pushed out of the victim cache (must be written back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimEvicted {
    /// Line address.
    pub line_addr: u64,
    /// Whether the line was dirty (`Modified`).
    pub dirty: bool,
}

impl VictimCache {
    /// Creates a victim cache holding `lines` entries.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero (disable by not constructing one).
    pub fn new(lines: usize) -> Self {
        Self {
            lru: LruSet::new(lines),
            states: FxMap64::with_capacity(lines),
            hits: 0,
            insertions: 0,
        }
    }

    /// Inserts an evicted line; returns the entry pushed out, if any.
    pub fn insert(&mut self, line_addr: u64, state: Mesi) -> Option<VictimEvicted> {
        self.insertions += 1;
        self.states.insert(line_addr, state);
        match self.lru.insert(line_addr) {
            LruInsert::Evicted(old) => {
                let old_state = self.states.remove(old).unwrap_or(Mesi::Exclusive);
                Some(VictimEvicted {
                    line_addr: old,
                    dirty: old_state == Mesi::Modified,
                })
            }
            _ => None,
        }
    }

    /// Removes and returns a line on a victim hit (the swap back into the
    /// main cache).
    pub fn take(&mut self, line_addr: u64) -> Option<Mesi> {
        if self.lru.remove(line_addr) {
            self.hits += 1;
            self.states.remove(line_addr)
        } else {
            None
        }
    }

    /// Coherence invalidation: drop the line without counting a hit.
    /// Returns the state if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<Mesi> {
        if self.lru.remove(line_addr) {
            self.states.remove(line_addr)
        } else {
            None
        }
    }

    /// Whether the line is buffered.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.lru.contains(line_addr)
    }

    /// Changes the coherence state of a buffered line (bus snoop).
    /// Returns `false` when the line is absent.
    pub fn set_state(&mut self, line_addr: u64, state: Mesi) -> bool {
        match self.states.get_mut(line_addr) {
            Some(s) => {
                *s = state;
                true
            }
            None => false,
        }
    }

    /// Iterates `(line address, state)` of buffered lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Mesi)> + '_ {
        self.states.iter().map(|(l, &s)| (l, s))
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Swap-backs served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total insertions so far.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut vc = VictimCache::new(2);
        assert!(vc.insert(0x100, Mesi::Modified).is_none());
        assert!(vc.contains(0x100));
        assert_eq!(vc.take(0x100), Some(Mesi::Modified));
        assert!(!vc.contains(0x100));
        assert_eq!(vc.hits(), 1);
    }

    #[test]
    fn capacity_evicts_lru_with_dirtiness() {
        let mut vc = VictimCache::new(2);
        vc.insert(0x100, Mesi::Modified);
        vc.insert(0x200, Mesi::Exclusive);
        let out = vc.insert(0x300, Mesi::Shared).expect("full buffer evicts");
        assert_eq!(out.line_addr, 0x100);
        assert!(out.dirty);
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn invalidate_does_not_count_as_hit() {
        let mut vc = VictimCache::new(2);
        vc.insert(0x100, Mesi::Shared);
        assert_eq!(vc.invalidate(0x100), Some(Mesi::Shared));
        assert_eq!(vc.hits(), 0);
        assert_eq!(vc.invalidate(0x100), None);
    }

    #[test]
    fn reinsertion_refreshes_state() {
        let mut vc = VictimCache::new(2);
        vc.insert(0x100, Mesi::Exclusive);
        vc.insert(0x100, Mesi::Modified);
        assert_eq!(vc.len(), 1);
        assert_eq!(vc.take(0x100), Some(Mesi::Modified));
    }
}
