//! The shared split-transaction memory bus.
//!
//! The bus is the scarce resource of the paper's machine: with 16 CPUs,
//! five of the ten benchmarks occupy it 50–95% of the time, and CDPC's
//! second-order benefit is freeing bus bandwidth for latency-tolerance
//! schemes. The model is a single server with deterministic service times:
//! a transaction arriving at time `t` begins at `max(t, busy_until)` and
//! occupies the bus for `bytes / bandwidth`. Occupancy is accounted per
//! transaction type so the Figure 2 bus-utilization breakdown can be
//! regenerated.

/// Categories of bus occupancy reported in the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusUse {
    /// Demand/prefetch data transfers (request + reply).
    Data,
    /// Write-backs of dirty victim lines.
    Writeback,
    /// Ownership upgrades from `Shared` to `Modified` (no data).
    Upgrade,
}

impl BusUse {
    /// Stable lowercase label (matches the probe/export vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            BusUse::Data => "data",
            BusUse::Writeback => "writeback",
            BusUse::Upgrade => "upgrade",
        }
    }
}

impl From<BusUse> for cdpc_obs::BusKind {
    fn from(use_: BusUse) -> Self {
        match use_ {
            BusUse::Data => cdpc_obs::BusKind::Data,
            BusUse::Writeback => cdpc_obs::BusKind::Writeback,
            BusUse::Upgrade => cdpc_obs::BusKind::Upgrade,
        }
    }
}

/// Outcome of queueing one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycles the transaction waited behind earlier traffic.
    pub queue_cycles: u64,
    /// Cycles the bus was occupied by this transaction.
    pub occupancy_cycles: u64,
}

impl BusGrant {
    /// Queue delay plus occupancy: the contribution of the bus to the
    /// requester's latency.
    pub fn total_cycles(&self) -> u64 {
        self.queue_cycles + self.occupancy_cycles
    }
}

/// A single shared bus with deterministic service and FIFO queueing.
#[derive(Debug, Clone, Default)]
pub struct Bus {
    busy_until: u64,
    data_cycles: u64,
    writeback_cycles: u64,
    upgrade_cycles: u64,
    transactions: u64,
    last_activity: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the bus at time `now` for a transaction occupying
    /// `occupancy_cycles`.
    pub fn request(&mut self, now: u64, occupancy_cycles: u64, use_: BusUse) -> BusGrant {
        let start = self.busy_until.max(now);
        let queue = start - now;
        self.busy_until = start + occupancy_cycles;
        self.last_activity = self.busy_until;
        match use_ {
            BusUse::Data => self.data_cycles += occupancy_cycles,
            BusUse::Writeback => self.writeback_cycles += occupancy_cycles,
            BusUse::Upgrade => self.upgrade_cycles += occupancy_cycles,
        }
        self.transactions += 1;
        BusGrant {
            queue_cycles: queue,
            occupancy_cycles,
        }
    }

    /// Total cycles of occupancy by category `(data, writeback, upgrade)`.
    pub fn occupancy_cycles(&self) -> (u64, u64, u64) {
        (self.data_cycles, self.writeback_cycles, self.upgrade_cycles)
    }

    /// Total transactions served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Bus utilization over `elapsed_cycles` of wall-clock simulation
    /// (0.0–1.0; 0.0 when no time has elapsed).
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let busy = self.data_cycles + self.writeback_cycles + self.upgrade_cycles;
        (busy as f64 / elapsed_cycles as f64).min(1.0)
    }

    /// The time at which the bus next becomes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = Bus::new();
        let g = b.request(100, 40, BusUse::Data);
        assert_eq!(g.queue_cycles, 0);
        assert_eq!(g.occupancy_cycles, 40);
        assert_eq!(g.total_cycles(), 40);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut b = Bus::new();
        b.request(0, 40, BusUse::Data);
        let g = b.request(10, 40, BusUse::Data);
        assert_eq!(g.queue_cycles, 30, "second request waits for the first");
        assert_eq!(b.busy_until(), 80);
    }

    #[test]
    fn late_request_sees_idle_bus() {
        let mut b = Bus::new();
        b.request(0, 40, BusUse::Data);
        let g = b.request(1000, 40, BusUse::Writeback);
        assert_eq!(g.queue_cycles, 0);
    }

    #[test]
    fn occupancy_accounted_by_category() {
        let mut b = Bus::new();
        b.request(0, 40, BusUse::Data);
        b.request(0, 10, BusUse::Writeback);
        b.request(0, 2, BusUse::Upgrade);
        assert_eq!(b.occupancy_cycles(), (40, 10, 2));
        assert_eq!(b.transactions(), 3);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let mut b = Bus::new();
        b.request(0, 50, BusUse::Data);
        assert!((b.utilization(100) - 0.5).abs() < 1e-9);
        assert_eq!(b.utilization(0), 0.0);
        // Saturated bus caps at 1.0.
        b.request(0, 1000, BusUse::Data);
        assert_eq!(b.utilization(100), 1.0);
    }
}
