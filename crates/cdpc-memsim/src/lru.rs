//! A fixed-capacity LRU set keyed by `u64`, used by the fully-associative
//! shadow cache that separates conflict misses from capacity misses.
//!
//! Implemented as a slab-allocated doubly-linked list plus a hash map, so
//! `touch`/`insert`/`remove` are all O(1). The shadow cache for the paper's
//! 1 MB L2 holds 8192 lines and is touched on every L2 access, so constant
//! factors matter.

use cdpc_core::fastmap::FxMap64;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU set of `u64` keys.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    map: FxMap64<u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
}

/// Result of inserting a key into an [`LruSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruInsert {
    /// The key was already present (and has been moved to MRU).
    Hit,
    /// The key was inserted without eviction.
    Inserted,
    /// The key was inserted and the returned LRU key was evicted.
    Evicted(u64),
}

impl LruSet {
    /// Creates an empty set that holds at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            capacity,
            map: FxMap64::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if `key` is resident (without touching recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Touches `key` if resident, making it most-recently-used.
    /// Returns `true` on hit.
    pub fn touch(&mut self, key: u64) -> bool {
        match self.map.get(key) {
            Some(&idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Inserts `key` as most-recently-used, evicting the LRU key if full.
    pub fn insert(&mut self, key: u64) -> LruInsert {
        if self.touch(key) {
            return LruInsert::Hit;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let old_key = self.nodes[lru as usize].key;
            self.unlink(lru);
            self.map.remove(old_key);
            self.free.push(lru);
            evicted = Some(old_key);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].key = key;
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        match evicted {
            Some(k) => LruInsert::Evicted(k),
            None => LruInsert::Inserted,
        }
    }

    /// Removes `key`, returning `true` if it was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Iterates keys from most- to least-recently-used.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            cursor: self.head,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let node = self.nodes[idx as usize];
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else if self.head == idx {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        } else if self.tail == idx {
            self.tail = node.prev;
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Iterator over an [`LruSet`] from MRU to LRU; see [`LruSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a LruSet,
    cursor: u32,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cursor == NIL {
            return None;
        }
        let node = self.set.nodes[self.cursor as usize];
        self.cursor = node.next;
        Some(node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_hit() {
        let mut l = LruSet::new(2);
        assert_eq!(l.insert(1), LruInsert::Inserted);
        assert_eq!(l.insert(2), LruInsert::Inserted);
        assert_eq!(l.insert(1), LruInsert::Hit);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn eviction_removes_least_recent() {
        let mut l = LruSet::new(2);
        l.insert(1);
        l.insert(2);
        l.touch(1); // 2 becomes LRU
        assert_eq!(l.insert(3), LruInsert::Evicted(2));
        assert!(l.contains(1));
        assert!(l.contains(3));
        assert!(!l.contains(2));
    }

    #[test]
    fn iteration_is_mru_to_lru() {
        let mut l = LruSet::new(3);
        l.insert(1);
        l.insert(2);
        l.insert(3);
        l.touch(1);
        let order: Vec<u64> = l.iter().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut l = LruSet::new(2);
        l.insert(1);
        l.insert(2);
        assert!(l.remove(1));
        assert!(!l.remove(1));
        assert_eq!(l.insert(3), LruInsert::Inserted);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut l = LruSet::new(2);
        for round in 0..100u64 {
            l.insert(round);
        }
        // Capacity bounded regardless of churn.
        assert_eq!(l.len(), 2);
        assert!(l.nodes.len() <= 3, "slab should recycle nodes");
    }

    #[test]
    fn capacity_one_behaves() {
        let mut l = LruSet::new(1);
        assert_eq!(l.insert(5), LruInsert::Inserted);
        assert_eq!(l.insert(6), LruInsert::Evicted(5));
        assert_eq!(l.insert(6), LruInsert::Hit);
        let order: Vec<u64> = l.iter().collect();
        assert_eq!(order, vec![6]);
    }

    #[test]
    fn mirrors_a_naive_model() {
        // Randomized differential test against a Vec-based LRU.
        let mut fast = LruSet::new(8);
        let mut slow: Vec<u64> = Vec::new(); // front = MRU
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 24;
            let hit_fast = matches!(fast.insert(key), LruInsert::Hit);
            let hit_slow = slow.iter().position(|&k| k == key).map(|i| {
                slow.remove(i);
            });
            slow.insert(0, key);
            if slow.len() > 8 {
                slow.pop();
            }
            assert_eq!(hit_fast, hit_slow.is_some(), "hit mismatch for {key}");
            assert_eq!(fast.iter().collect::<Vec<_>>(), slow, "order mismatch");
        }
    }
}
