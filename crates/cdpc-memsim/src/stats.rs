//! Per-processor and machine-wide memory statistics.
//!
//! These counters back the paper's Figure 2 memory-system-behavior graph:
//! MCPI (memory cycles per instruction) split by miss class, plus L1/L2 hit
//! counts, TLB behavior, and prefetch effectiveness.

use crate::classify::MissClass;

/// Counters for one processor's memory behavior.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpuStats {
    /// Demand data references issued.
    pub data_refs: u64,
    /// Instruction fetch references issued.
    pub ifetch_refs: u64,
    /// L1 hits (data + instruction).
    pub l1_hits: u64,
    /// L1 misses that hit in the external cache.
    pub l2_hits: u64,
    /// L1 misses satisfied by an in-flight or completed prefetch.
    pub prefetch_hits: u64,
    /// External-cache misses by class.
    pub misses: MissCounts,
    /// Stall cycles charged to L2 hits (the paper's "on-chip" stall: L1
    /// misses that hit in the external cache).
    pub l2_hit_stall_cycles: u64,
    /// Stall cycles charged to external-cache misses, by class.
    pub miss_stall_cycles: MissCounts,
    /// Stall cycles waiting for an in-flight prefetch to complete.
    pub prefetch_wait_cycles: u64,
    /// Stall cycles because all prefetch slots were busy (the 5th
    /// outstanding prefetch stalls the CPU).
    pub prefetch_slot_stall_cycles: u64,
    /// Cycles spent in upgrade (ownership) transactions.
    pub upgrade_stall_cycles: u64,
    /// TLB misses on demand accesses.
    pub tlb_misses: u64,
    /// Cycles spent servicing TLB faults (kernel time).
    pub tlb_stall_cycles: u64,
    /// Prefetches issued to the memory system.
    pub prefetches_issued: u64,
    /// Prefetches dropped because the page was not in the TLB.
    pub prefetches_dropped_tlb: u64,
    /// Prefetches dropped because the line was already cached or in flight.
    pub prefetches_dropped_resident: u64,
    /// External-cache misses absorbed by the victim cache (zero when the
    /// victim cache is disabled).
    pub victim_hits: u64,
}

/// A count per miss class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissCounts {
    counts: [u64; 5],
}

impl MissCounts {
    fn idx(class: MissClass) -> usize {
        match class {
            MissClass::Cold => 0,
            MissClass::Capacity => 1,
            MissClass::Conflict => 2,
            MissClass::TrueSharing => 3,
            MissClass::FalseSharing => 4,
        }
    }

    /// Adds `n` to the count for `class`.
    pub fn add(&mut self, class: MissClass, n: u64) {
        self.counts[Self::idx(class)] += n;
    }

    /// The count for `class`.
    pub fn get(&self, class: MissClass) -> u64 {
        self.counts[Self::idx(class)]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of replacement (capacity + conflict) classes.
    pub fn replacement(&self) -> u64 {
        self.get(MissClass::Capacity) + self.get(MissClass::Conflict)
    }

    /// Sum of communication (true + false sharing) classes.
    pub fn communication(&self) -> u64 {
        self.get(MissClass::TrueSharing) + self.get(MissClass::FalseSharing)
    }

    /// Adds another set of counts element-wise.
    pub fn merge(&mut self, other: &MissCounts) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }
}

impl CpuStats {
    /// Total memory stall cycles (everything except TLB kernel time, which
    /// the paper reports under kernel overhead).
    pub fn memory_stall_cycles(&self) -> u64 {
        self.l2_hit_stall_cycles
            + self.miss_stall_cycles.total()
            + self.prefetch_wait_cycles
            + self.prefetch_slot_stall_cycles
            + self.upgrade_stall_cycles
    }

    /// External-cache miss rate over all demand references.
    pub fn l2_miss_rate(&self) -> f64 {
        let refs = self.data_refs + self.ifetch_refs;
        if refs == 0 {
            0.0
        } else {
            self.misses.total() as f64 / refs as f64
        }
    }

    /// Merges another processor's counters into this one (for aggregate
    /// reports).
    pub fn merge(&mut self, other: &CpuStats) {
        self.data_refs += other.data_refs;
        self.ifetch_refs += other.ifetch_refs;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.misses.merge(&other.misses);
        self.l2_hit_stall_cycles += other.l2_hit_stall_cycles;
        self.miss_stall_cycles.merge(&other.miss_stall_cycles);
        self.prefetch_wait_cycles += other.prefetch_wait_cycles;
        self.prefetch_slot_stall_cycles += other.prefetch_slot_stall_cycles;
        self.upgrade_stall_cycles += other.upgrade_stall_cycles;
        self.tlb_misses += other.tlb_misses;
        self.tlb_stall_cycles += other.tlb_stall_cycles;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_dropped_tlb += other.prefetches_dropped_tlb;
        self.prefetches_dropped_resident += other.prefetches_dropped_resident;
        self.victim_hits += other.victim_hits;
    }
}

/// Machine-wide view: per-CPU stats plus shared-bus occupancy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// One entry per processor.
    pub cpus: Vec<CpuStats>,
    /// Bus occupancy cycles: (data, writeback, upgrade).
    pub bus_occupancy: (u64, u64, u64),
    /// Total bus transactions.
    pub bus_transactions: u64,
}

impl MemStats {
    /// Sums all per-CPU counters.
    pub fn aggregate(&self) -> CpuStats {
        let mut total = CpuStats::default();
        for c in &self.cpus {
            total.merge(c);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_counts_roundtrip() {
        let mut m = MissCounts::default();
        m.add(MissClass::Conflict, 3);
        m.add(MissClass::Capacity, 2);
        m.add(MissClass::TrueSharing, 1);
        assert_eq!(m.get(MissClass::Conflict), 3);
        assert_eq!(m.total(), 6);
        assert_eq!(m.replacement(), 5);
        assert_eq!(m.communication(), 1);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = MissCounts::default();
        a.add(MissClass::Cold, 1);
        let mut b = MissCounts::default();
        b.add(MissClass::Cold, 2);
        b.add(MissClass::FalseSharing, 4);
        a.merge(&b);
        assert_eq!(a.get(MissClass::Cold), 3);
        assert_eq!(a.get(MissClass::FalseSharing), 4);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn stall_totals_and_miss_rate() {
        let mut s = CpuStats::default();
        s.data_refs = 100;
        s.l2_hit_stall_cycles = 10;
        s.miss_stall_cycles.add(MissClass::Conflict, 40);
        s.upgrade_stall_cycles = 5;
        s.misses.add(MissClass::Conflict, 2);
        assert_eq!(s.memory_stall_cycles(), 55);
        assert!((s.l2_miss_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn aggregate_sums_cpus() {
        let mut a = CpuStats::default();
        a.data_refs = 5;
        let mut b = CpuStats::default();
        b.data_refs = 7;
        let stats = MemStats {
            cpus: vec![a, b],
            bus_occupancy: (0, 0, 0),
            bus_transactions: 0,
        };
        assert_eq!(stats.aggregate().data_refs, 12);
    }

    #[test]
    fn empty_stats_have_zero_miss_rate() {
        assert_eq!(CpuStats::default().l2_miss_rate(), 0.0);
    }
}
