//! Memory-system configuration, with the paper's machine presets.

/// Geometry of one cache: total size, line size, and associativity.
///
/// The shift/mask fields are derived from the three inputs at construction
/// so the per-reference index math (`set_of`, `tag_of`, `line_of`) compiles
/// to shifts and masks instead of 64-bit divisions — these run on every
/// simulated cache probe, which is the simulator's hottest loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: usize,
    line_bytes: usize,
    associativity: usize,
    /// `log2(line_bytes)`; lines are asserted to be powers of two.
    line_shift: u32,
    /// `size_bytes / (line_bytes * associativity)`, cached.
    num_sets: usize,
    /// `log2(num_sets)` when the set count is a power of two (always true
    /// for power-of-two associativity, the only shapes the presets use).
    set_shift: u32,
    /// Whether `num_sets` is a power of two, enabling the shift/mask path.
    sets_pow2: bool,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two, the line divides the size, and
    /// the set count is at least one.
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(associativity >= 1, "associativity must be at least 1");
        assert!(
            size_bytes >= line_bytes * associativity,
            "cache must hold at least one set"
        );
        assert_eq!(
            size_bytes % (line_bytes * associativity),
            0,
            "cache size must be a multiple of line*assoc"
        );
        let num_sets = size_bytes / (line_bytes * associativity);
        Self {
            size_bytes,
            line_bytes,
            associativity,
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            set_shift: num_sets.trailing_zeros(),
            sets_pow2: num_sets.is_power_of_two(),
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// `log2(line_bytes)` — the shift that extracts a line number from an
    /// address.
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// The set index for `addr`.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        let line = addr >> self.line_shift;
        if self.sets_pow2 {
            (line as usize) & (self.num_sets - 1)
        } else {
            (line % self.num_sets as u64) as usize
        }
    }

    /// The tag for `addr` (line address divided by set count).
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        let line = addr >> self.line_shift;
        if self.sets_pow2 {
            line >> self.set_shift
        } else {
            line / self.num_sets as u64
        }
    }

    /// Returns a geometry scaled down by `factor` (size divided, line and
    /// associativity preserved). Used by the experiment harness to shrink
    /// machines and data sets together.
    ///
    /// # Panics
    ///
    /// Panics if the scaled cache would not hold one set.
    #[must_use]
    pub fn scaled_down(&self, factor: usize) -> Self {
        assert!(
            factor.is_power_of_two(),
            "scale factor must be a power of two"
        );
        Self::new(
            self.size_bytes / factor,
            self.line_bytes,
            self.associativity,
        )
    }
}

/// Full memory-system configuration for one machine.
///
/// All latencies are stored in nanoseconds (as the paper quotes them) and
/// converted to CPU cycles via [`MemConfig::ns_to_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of processors.
    pub num_cpus: usize,
    /// CPU clock in MHz (paper: 400 MHz single-issue R4400).
    pub cpu_mhz: u64,
    /// Per-CPU L1 data cache (paper: 32 KB, 2-way, virtually indexed).
    pub l1d: CacheConfig,
    /// Per-CPU L1 instruction cache (paper: 32 KB, 2-way).
    pub l1i: CacheConfig,
    /// Per-CPU external cache (paper: 1 MB direct-mapped, 128 B lines,
    /// physically indexed).
    pub l2: CacheConfig,
    /// TLB entries per CPU (fully associative).
    pub tlb_entries: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Sustained bus fetch bandwidth in bytes per microsecond
    /// (paper: 1.2 GB/s = 1200 B/µs).
    pub bus_bytes_per_us: u64,
    /// Minimum latency of a miss serviced from memory (paper: 500 ns).
    pub mem_latency_ns: u64,
    /// Minimum latency of a miss serviced cache-to-cache (paper: 750 ns).
    pub remote_latency_ns: u64,
    /// Latency of an L1 miss that hits in the external cache.
    pub l2_hit_ns: u64,
    /// Kernel time to service a TLB fault.
    pub tlb_miss_ns: u64,
    /// Bus occupancy of an upgrade (invalidation) transaction, in bytes of
    /// equivalent bandwidth (address + command, no data).
    pub upgrade_bus_bytes: u64,
    /// Maximum outstanding prefetches (paper: 4; a 5th stalls the CPU).
    pub max_outstanding_prefetches: usize,
    /// Lines in an optional per-CPU victim cache behind the external cache
    /// (0 disables; an extension comparison point, not in the paper).
    pub victim_cache_lines: usize,
}

impl MemConfig {
    /// The paper's base SimOS configuration: 400 MHz CPUs, 32 KB 2-way split
    /// L1s (32 B lines), 1 MB direct-mapped L2 with 128 B lines, 1.2 GB/s
    /// bus, 500/750 ns miss latencies.
    pub fn paper_base(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            cpu_mhz: 400,
            l1d: CacheConfig::new(32 << 10, 32, 2),
            l1i: CacheConfig::new(32 << 10, 32, 2),
            l2: CacheConfig::new(1 << 20, 128, 1),
            tlb_entries: 64,
            page_size: 4096,
            bus_bytes_per_us: 1200,
            mem_latency_ns: 500,
            remote_latency_ns: 750,
            l2_hit_ns: 50,
            tlb_miss_ns: 800,
            upgrade_bus_bytes: 16,
            max_outstanding_prefetches: 4,
            victim_cache_lines: 0,
        }
    }

    /// The paper's two-way set-associative variant (1 MB 2-way L2).
    pub fn paper_2way(num_cpus: usize) -> Self {
        let mut c = Self::paper_base(num_cpus);
        c.l2 = CacheConfig::new(1 << 20, 128, 2);
        c
    }

    /// The paper's large-cache variant (4 MB direct-mapped L2).
    pub fn paper_4mb(num_cpus: usize) -> Self {
        let mut c = Self::paper_base(num_cpus);
        c.l2 = CacheConfig::new(4 << 20, 128, 1);
        c
    }

    /// The AlphaServer 8400 validation machine: 350 MHz CPUs with 4 MB
    /// direct-mapped external caches.
    pub fn alphaserver(num_cpus: usize) -> Self {
        let mut c = Self::paper_base(num_cpus);
        c.cpu_mhz = 350;
        c.l2 = CacheConfig::new(4 << 20, 128, 1);
        c
    }

    /// Converts nanoseconds to CPU cycles (rounding up; a latency never
    /// rounds to zero cycles unless it is zero).
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns * self.cpu_mhz).div_ceil(1000)
    }

    /// Memory-service latency in cycles.
    pub fn mem_latency_cycles(&self) -> u64 {
        self.ns_to_cycles(self.mem_latency_ns)
    }

    /// Cache-to-cache service latency in cycles.
    pub fn remote_latency_cycles(&self) -> u64 {
        self.ns_to_cycles(self.remote_latency_ns)
    }

    /// L2-hit latency in cycles.
    pub fn l2_hit_cycles(&self) -> u64 {
        self.ns_to_cycles(self.l2_hit_ns)
    }

    /// TLB-fault service time in cycles.
    pub fn tlb_miss_cycles(&self) -> u64 {
        self.ns_to_cycles(self.tlb_miss_ns)
    }

    /// Bus occupancy, in cycles, of transferring `bytes`.
    pub fn bus_occupancy_cycles(&self, bytes: u64) -> u64 {
        // bytes / (bytes_per_us) µs → ns → cycles.
        self.ns_to_cycles((bytes * 1000).div_ceil(self.bus_bytes_per_us))
    }

    /// Scales the L2 cache down by `factor` (used together with scaled
    /// workloads to keep data:cache ratios while shrinking simulations).
    #[must_use]
    pub fn with_scaled_l2(mut self, factor: usize) -> Self {
        self.l2 = self.l2.scaled_down(factor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_matches_section_3_2() {
        let c = MemConfig::paper_base(16);
        assert_eq!(c.cpu_mhz, 400);
        assert_eq!(c.l2.size_bytes(), 1 << 20);
        assert_eq!(c.l2.associativity(), 1);
        assert_eq!(c.l2.line_bytes(), 128);
        assert_eq!(c.l1d.size_bytes(), 32 << 10);
        assert_eq!(c.l1d.associativity(), 2);
        assert_eq!(c.mem_latency_ns, 500);
        assert_eq!(c.remote_latency_ns, 750);
        assert_eq!(c.bus_bytes_per_us, 1200);
        assert_eq!(c.max_outstanding_prefetches, 4);
    }

    #[test]
    fn latency_conversions() {
        let c = MemConfig::paper_base(1);
        // 500 ns at 400 MHz = 200 cycles; 750 ns = 300 cycles.
        assert_eq!(c.mem_latency_cycles(), 200);
        assert_eq!(c.remote_latency_cycles(), 300);
        // One 128 B line at 1200 B/µs: 107 ns → 43 cycles (rounded up).
        assert_eq!(c.bus_occupancy_cycles(128), 43);
    }

    #[test]
    fn cache_geometry_derivations() {
        let l2 = CacheConfig::new(1 << 20, 128, 1);
        assert_eq!(l2.num_sets(), 8192);
        assert_eq!(l2.num_lines(), 8192);
        let two_way = CacheConfig::new(1 << 20, 128, 2);
        assert_eq!(two_way.num_sets(), 4096);
        assert_eq!(two_way.num_lines(), 8192);
    }

    #[test]
    fn set_and_tag_partition_the_address() {
        let c = CacheConfig::new(1024, 64, 2); // 8 sets
        let addr = 0x1234u64;
        assert_eq!(c.line_of(addr), 0x1200);
        assert_eq!(c.set_of(addr), ((0x1234 / 64) % 8) as usize);
        // Two addresses in the same line share set and tag.
        assert_eq!(c.set_of(0x1234), c.set_of(0x1239));
        assert_eq!(c.tag_of(0x1234), c.tag_of(0x1239));
        // Addresses one cache-size apart share a set but differ in tag.
        assert_eq!(c.set_of(addr), c.set_of(addr + 1024));
        assert_ne!(c.tag_of(addr), c.tag_of(addr + 1024));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_sizes() {
        CacheConfig::new(1000, 64, 1);
    }

    #[test]
    fn scaling_preserves_line_and_assoc() {
        let c = MemConfig::paper_base(4).with_scaled_l2(16);
        assert_eq!(c.l2.size_bytes(), 64 << 10);
        assert_eq!(c.l2.line_bytes(), 128);
        assert_eq!(c.l2.associativity(), 1);
    }
}
