//! The MIPS R10000-style prefetch unit modeled by the paper's SimOS CPUs.
//!
//! Semantics (paper §6.2): up to four prefetches may be outstanding; issuing
//! a fifth stalls the processor until a slot frees; prefetches to pages not
//! mapped in the TLB are silently dropped; prefetched lines are inserted
//! into the external cache but not the on-chip cache.
//!
//! This module models only the *slots*; the memory side (TLB probe,
//! residency check, bus transaction, lazy fill) lives in
//! [`system`](crate::system).

/// The outstanding-prefetch slots of one processor.
#[derive(Debug, Clone)]
pub struct PrefetchSlots {
    completions: Vec<u64>,
    max: usize,
}

/// Result of reserving a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotGrant {
    /// Cycles the processor stalled waiting for a free slot (zero when a
    /// slot was available).
    pub stall_cycles: u64,
    /// The time at which the slot became available (issue time of the
    /// prefetch).
    pub issue_at: u64,
}

impl PrefetchSlots {
    /// Creates a unit with `max` outstanding slots.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "at least one prefetch slot is required");
        Self {
            completions: Vec::with_capacity(max),
            max,
        }
    }

    /// Drops completed prefetches as of `now`.
    pub fn expire(&mut self, now: u64) {
        self.completions.retain(|&c| c > now);
    }

    /// Number of prefetches still in flight at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.expire(now);
        self.completions.len()
    }

    /// Reserves a slot at `now`, stalling until one frees if all `max` are
    /// busy. The caller must then record the prefetch's completion time via
    /// [`occupy`](Self::occupy).
    pub fn reserve(&mut self, now: u64) -> SlotGrant {
        self.expire(now);
        if self.completions.len() < self.max {
            return SlotGrant {
                stall_cycles: 0,
                issue_at: now,
            };
        }
        // All slots busy: the CPU stalls until the earliest completes.
        let earliest = *self
            .completions
            .iter()
            .min()
            .expect("slots full implies non-empty");
        self.expire(earliest);
        SlotGrant {
            stall_cycles: earliest - now,
            issue_at: earliest,
        }
    }

    /// Records an issued prefetch completing at `completion`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if all slots are somehow still busy — callers
    /// must reserve first.
    pub fn occupy(&mut self, completion: u64) {
        debug_assert!(self.completions.len() < self.max, "occupy without reserve");
        self.completions.push(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_grant_until_full() {
        let mut p = PrefetchSlots::new(4);
        for i in 0..4 {
            let g = p.reserve(100);
            assert_eq!(g.stall_cycles, 0);
            p.occupy(200 + i);
        }
        assert_eq!(p.outstanding(100), 4);
    }

    #[test]
    fn fifth_prefetch_stalls_until_earliest_completes() {
        let mut p = PrefetchSlots::new(4);
        for c in [150, 200, 250, 300] {
            p.reserve(100);
            p.occupy(c);
        }
        let g = p.reserve(120);
        assert_eq!(g.stall_cycles, 30, "stall until the 150-cycle completion");
        assert_eq!(g.issue_at, 150);
    }

    #[test]
    fn completed_prefetches_free_slots() {
        let mut p = PrefetchSlots::new(2);
        p.reserve(0);
        p.occupy(50);
        p.reserve(0);
        p.occupy(60);
        assert_eq!(p.outstanding(55), 1);
        let g = p.reserve(55);
        assert_eq!(g.stall_cycles, 0);
    }

    #[test]
    fn completion_exactly_now_counts_as_done() {
        let mut p = PrefetchSlots::new(1);
        p.reserve(0);
        p.occupy(50);
        // At t=50 the prefetch has completed (retain keeps only c > now).
        assert_eq!(p.outstanding(50), 0);
    }
}
