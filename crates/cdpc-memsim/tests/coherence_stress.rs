//! Randomized coherence stress: drive the memory system with random
//! multiprocessor access/prefetch streams and check the MESI/directory
//! invariants after every step.

use proptest::prelude::*;

use cdpc_memsim::{AccessKind, CacheConfig, MemConfig, MemorySystem};
use cdpc_vm::addr::{PhysAddr, VirtAddr};

fn tiny_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(256, 32, 2);
    m.l1i = CacheConfig::new(256, 32, 2);
    m.l2 = CacheConfig::new(1024, 128, 1); // 8 lines: constant churn
    m.tlb_entries = 4;
    m
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(usize, u64),
    Write(usize, u64),
    Prefetch(usize, u64, bool),
}

fn arb_op(cpus: usize) -> impl Strategy<Value = Op> {
    // Addresses over 4 pages so TLB and page behavior are exercised.
    let addr = 0u64..(4 * 4096);
    (0..cpus, addr, 0u8..4).prop_map(|(cpu, a, kind)| match kind {
        0 => Op::Read(cpu, a),
        1 => Op::Write(cpu, a),
        2 => Op::Prefetch(cpu, a, false),
        _ => Op::Prefetch(cpu, a, true),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The coherence invariants hold after every operation of any random
    /// 2- and 4-CPU interleaving.
    #[test]
    fn invariants_hold_under_random_traffic(
        cpus in prop::sample::select(vec![2usize, 4]),
        victim_lines in prop::sample::select(vec![0usize, 4]),
        ops in prop::collection::vec(arb_op(4), 1..300),
    ) {
        let mut cfg = tiny_cfg(cpus);
        cfg.victim_cache_lines = victim_lines;
        let mut mem = MemorySystem::new(cfg);
        let mut t = 0u64;
        for op in ops {
            t += 37;
            match op {
                Op::Read(cpu, a) => {
                    let cpu = cpu % cpus;
                    mem.access(cpu, t, VirtAddr(a), PhysAddr(a), AccessKind::Read);
                }
                Op::Write(cpu, a) => {
                    let cpu = cpu % cpus;
                    mem.access(cpu, t, VirtAddr(a), PhysAddr(a), AccessKind::Write);
                }
                Op::Prefetch(cpu, a, excl) => {
                    let cpu = cpu % cpus;
                    mem.prefetch(cpu, t, VirtAddr(a), PhysAddr(a), excl);
                }
            }
            mem.validate_coherence();
        }
    }

    /// Write visibility: after CPU A writes a line and CPU B reads it, a
    /// write by B requires no new data fetch from memory (the directory
    /// remembers B's copy) and the sharer count adjusts.
    #[test]
    fn producer_consumer_round_trips(addr in (0u64..2048).prop_map(|a| a * 2)) {
        let mut mem = MemorySystem::new(tiny_cfg(2));
        mem.access(0, 0, VirtAddr(addr), PhysAddr(addr), AccessKind::Write);
        mem.validate_coherence();
        mem.access(1, 100, VirtAddr(addr), PhysAddr(addr), AccessKind::Read);
        mem.validate_coherence();
        mem.access(1, 200, VirtAddr(addr), PhysAddr(addr), AccessKind::Write);
        mem.validate_coherence();
        // CPU0's copy must be gone after CPU1's write.
        let out = mem.access(0, 300, VirtAddr(addr), PhysAddr(addr), AccessKind::Read);
        prop_assert!(out.miss_class.is_some(), "CPU0 must re-fetch after invalidation");
        mem.validate_coherence();
    }
}
