//! Randomized coherence stress: drive the memory system with random
//! multiprocessor access/prefetch streams and check the MESI/directory
//! invariants after every step.
//!
//! Traffic is drawn from a seeded [`SplitMix64`], one seed per case, so
//! failures reproduce exactly by seed number.

use cdpc_memsim::{AccessKind, CacheConfig, MemConfig, MemorySystem};
use cdpc_obs::SplitMix64;
use cdpc_vm::addr::{PhysAddr, VirtAddr};

fn tiny_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l1d = CacheConfig::new(256, 32, 2);
    m.l1i = CacheConfig::new(256, 32, 2);
    m.l2 = CacheConfig::new(1024, 128, 1); // 8 lines: constant churn
    m.tlb_entries = 4;
    m
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(usize, u64),
    Write(usize, u64),
    Prefetch(usize, u64, bool),
}

/// A random operation over 4 CPUs. Addresses span 4 pages so TLB and
/// page behavior are exercised.
fn random_op(rng: &mut SplitMix64) -> Op {
    let cpu = rng.index(4);
    let a = rng.below(4 * 4096);
    match rng.below(4) {
        0 => Op::Read(cpu, a),
        1 => Op::Write(cpu, a),
        2 => Op::Prefetch(cpu, a, false),
        _ => Op::Prefetch(cpu, a, true),
    }
}

/// The coherence invariants hold after every operation of any random
/// 2- and 4-CPU interleaving.
#[test]
fn invariants_hold_under_random_traffic() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let cpus = if rng.chance(1, 2) { 2 } else { 4 };
        let victim_lines = if rng.chance(1, 2) { 0 } else { 4 };
        let num_ops = rng.range(1, 299);
        let mut cfg = tiny_cfg(cpus);
        cfg.victim_cache_lines = victim_lines;
        let mut mem = MemorySystem::new(cfg);
        let mut t = 0u64;
        for _ in 0..num_ops {
            t += 37;
            match random_op(&mut rng) {
                Op::Read(cpu, a) => {
                    let cpu = cpu % cpus;
                    mem.access(cpu, t, VirtAddr(a), PhysAddr(a), AccessKind::Read);
                }
                Op::Write(cpu, a) => {
                    let cpu = cpu % cpus;
                    mem.access(cpu, t, VirtAddr(a), PhysAddr(a), AccessKind::Write);
                }
                Op::Prefetch(cpu, a, excl) => {
                    let cpu = cpu % cpus;
                    mem.prefetch(cpu, t, VirtAddr(a), PhysAddr(a), excl);
                }
            }
            mem.validate_coherence();
        }
    }
}

/// Write visibility: after CPU A writes a line and CPU B reads it, a
/// write by B requires no new data fetch from memory (the directory
/// remembers B's copy) and the sharer count adjusts.
#[test]
fn producer_consumer_round_trips() {
    let mut rng = SplitMix64::new(0xC0FE);
    for _ in 0..64 {
        let addr = rng.below(2048) * 2;
        let mut mem = MemorySystem::new(tiny_cfg(2));
        mem.access(0, 0, VirtAddr(addr), PhysAddr(addr), AccessKind::Write);
        mem.validate_coherence();
        mem.access(1, 100, VirtAddr(addr), PhysAddr(addr), AccessKind::Read);
        mem.validate_coherence();
        mem.access(1, 200, VirtAddr(addr), PhysAddr(addr), AccessKind::Write);
        mem.validate_coherence();
        // CPU0's copy must be gone after CPU1's write.
        let out = mem.access(0, 300, VirtAddr(addr), PhysAddr(addr), AccessKind::Read);
        assert!(
            out.miss_class.is_some(),
            "addr {addr:#x}: CPU0 must re-fetch after invalidation"
        );
        mem.validate_coherence();
    }
}
