//! Differential testing of the set-associative cache against an oracle.
//!
//! The oracle is the textbook definition: a cache is `num_sets`
//! independent fully-associative LRU caches of `associativity` entries,
//! selected by the set-index bits. Any divergence between the production
//! cache and the oracle on a random access stream is a bug.
//!
//! Streams are drawn from a seeded [`SplitMix64`], one seed per case, so
//! failures reproduce exactly by seed number with no external test
//! framework.

use cdpc_memsim::cache::{Cache, Lookup, Mesi};
use cdpc_memsim::config::CacheConfig;
use cdpc_obs::SplitMix64;

/// The oracle: per-set vectors ordered MRU-first.
struct OracleCache {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>, // line addresses, MRU first
}

impl OracleCache {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets()],
        }
    }

    /// Returns `true` on hit; on miss inserts and returns the victim line.
    fn access(&mut self, addr: u64) -> (bool, Option<u64>) {
        let line = self.cfg.line_of(addr);
        let set = &mut self.sets[self.cfg.set_of(addr)];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            return (true, None);
        }
        set.insert(0, line);
        let victim = if set.len() > self.cfg.associativity() {
            set.pop()
        } else {
            None
        };
        (false, victim)
    }
}

/// A random geometry: 2–16 sets × 1–4 ways × 64-byte lines.
fn random_config(rng: &mut SplitMix64) -> CacheConfig {
    let line = 64usize;
    let sets = 1usize << (rng.range(0, 3) + 1);
    let assoc = 1usize << rng.range(0, 2);
    CacheConfig::new(sets * assoc * line, line, assoc)
}

/// A random access stream of 1..400 addresses below `addr_bound`.
fn random_stream(rng: &mut SplitMix64, max_len: u64, addr_bound: u64) -> Vec<u64> {
    let len = rng.range(1, max_len);
    (0..len).map(|_| rng.below(addr_bound)).collect()
}

/// Hit/miss decisions and victim choices must match the oracle on any
/// access stream.
#[test]
fn cache_matches_oracle() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let stream = random_stream(&mut rng, 399, 4096);
        let mut cache = Cache::new(cfg);
        let mut oracle = OracleCache::new(cfg);
        for (i, &addr) in stream.iter().enumerate() {
            let real_hit = matches!(cache.probe(addr), Lookup::Hit(_));
            let (oracle_hit, oracle_victim) = oracle.access(addr);
            assert_eq!(
                real_hit, oracle_hit,
                "seed {seed} step {i}: hit mismatch at {addr:#x}"
            );
            if !real_hit {
                let evicted = cache.fill(addr, Mesi::Exclusive).map(|e| e.line_addr);
                assert_eq!(
                    evicted, oracle_victim,
                    "seed {seed} step {i}: victim mismatch at {addr:#x}"
                );
            }
        }
    }
}

/// Residency never exceeds capacity, and invalidation is precise.
#[test]
fn occupancy_and_invalidation() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let stream = random_stream(&mut rng, 199, 4096);
        let mut cache = Cache::new(cfg);
        for &addr in &stream {
            if matches!(cache.probe(addr), Lookup::Miss) {
                cache.fill(addr, Mesi::Exclusive);
            }
            assert!(
                cache.resident_lines() <= cfg.num_lines(),
                "seed {seed}: residency exceeds capacity"
            );
        }
        // Invalidate everything that is resident; the cache must empty.
        for &addr in &stream {
            cache.invalidate(cfg.line_of(addr));
        }
        assert_eq!(cache.resident_lines(), 0, "seed {seed}");
    }
}

/// `peek` never changes subsequent behavior.
#[test]
fn peek_is_pure() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let stream = random_stream(&mut rng, 199, 2048);
        let run = |peek: bool| {
            let mut cache = Cache::new(cfg);
            let mut outcomes = Vec::new();
            for &addr in &stream {
                if peek {
                    let _ = cache.peek(addr ^ 0x40);
                }
                let hit = matches!(cache.probe(addr), Lookup::Hit(_));
                if !hit {
                    cache.fill(addr, Mesi::Exclusive);
                }
                outcomes.push(hit);
            }
            outcomes
        };
        assert_eq!(run(false), run(true), "seed {seed}");
    }
}
