//! Differential testing of the set-associative cache against an oracle.
//!
//! The oracle is the textbook definition: a cache is `num_sets`
//! independent fully-associative LRU caches of `associativity` entries,
//! selected by the set-index bits. Any divergence between the production
//! cache and the oracle on a random access stream is a bug.

use proptest::prelude::*;

use cdpc_memsim::cache::{Cache, Lookup, Mesi};
use cdpc_memsim::config::CacheConfig;

/// The oracle: per-set vectors ordered MRU-first.
struct OracleCache {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>, // line addresses, MRU first
}

impl OracleCache {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets()],
        }
    }

    /// Returns `true` on hit; on miss inserts and returns the victim line.
    fn access(&mut self, addr: u64) -> (bool, Option<u64>) {
        let line = self.cfg.line_of(addr);
        let set = &mut self.sets[self.cfg.set_of(addr)];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            return (true, None);
        }
        set.insert(0, line);
        let victim = if set.len() > self.cfg.associativity() {
            set.pop()
        } else {
            None
        };
        (false, victim)
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..=3, 0u32..=2).prop_map(|(sets_pow, assoc_pow)| {
        let line = 64usize;
        let sets = 1usize << (sets_pow + 1);
        let assoc = 1usize << assoc_pow;
        CacheConfig::new(sets * assoc * line, line, assoc)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hit/miss decisions and victim choices must match the oracle on any
    /// access stream.
    #[test]
    fn cache_matches_oracle(cfg in arb_config(), stream in prop::collection::vec(0u64..4096, 1..400)) {
        let mut cache = Cache::new(cfg);
        let mut oracle = OracleCache::new(cfg);
        for (i, &addr) in stream.iter().enumerate() {
            let real_hit = matches!(cache.probe(addr), Lookup::Hit(_));
            let (oracle_hit, oracle_victim) = oracle.access(addr);
            prop_assert_eq!(real_hit, oracle_hit, "step {}: hit mismatch at {:#x}", i, addr);
            if !real_hit {
                let evicted = cache.fill(addr, Mesi::Exclusive).map(|e| e.line_addr);
                prop_assert_eq!(evicted, oracle_victim, "step {}: victim mismatch at {:#x}", i, addr);
            }
        }
    }

    /// Residency never exceeds capacity, and invalidation is precise.
    #[test]
    fn occupancy_and_invalidation(cfg in arb_config(), stream in prop::collection::vec(0u64..4096, 1..200)) {
        let mut cache = Cache::new(cfg);
        for &addr in &stream {
            if matches!(cache.probe(addr), Lookup::Miss) {
                cache.fill(addr, Mesi::Exclusive);
            }
            prop_assert!(cache.resident_lines() <= cfg.num_lines());
        }
        // Invalidate everything that is resident; the cache must empty.
        for &addr in &stream {
            cache.invalidate(cfg.line_of(addr));
        }
        prop_assert_eq!(cache.resident_lines(), 0);
    }

    /// `peek` never changes subsequent behavior.
    #[test]
    fn peek_is_pure(cfg in arb_config(), stream in prop::collection::vec(0u64..2048, 1..200)) {
        let run = |peek: bool| {
            let mut cache = Cache::new(cfg);
            let mut outcomes = Vec::new();
            for &addr in &stream {
                if peek {
                    let _ = cache.peek(addr ^ 0x40);
                }
                let hit = matches!(cache.probe(addr), Lookup::Hit(_));
                if !hit {
                    cache.fill(addr, Mesi::Exclusive);
                }
                outcomes.push(hit);
            }
            outcomes
        };
        prop_assert_eq!(run(false), run(true));
    }
}
