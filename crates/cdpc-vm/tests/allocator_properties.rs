//! Property tests over the physical allocator and the address space:
//! conservation, uniqueness, and color arithmetic under arbitrary
//! alloc/free interleavings.

use proptest::prelude::*;
use std::collections::HashSet;

use cdpc_vm::addr::{Color, ColorSpace, PageGeometry, Vpn};
use cdpc_vm::phys::PhysicalMemory;
use cdpc_vm::policy::{BinHopping, MappingPolicy, PageColoring};
use cdpc_vm::AddressSpace;

#[derive(Debug, Clone, Copy)]
enum AllocOp {
    Exact(u32),
    Preferring(u32),
    Any,
    FreeOldest,
}

fn arb_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        (0u32..64).prop_map(AllocOp::Exact),
        (0u32..64).prop_map(AllocOp::Preferring),
        Just(AllocOp::Any),
        Just(AllocOp::FreeOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pages are never handed out twice, never lost, and colors always
    /// match `ppn mod num_colors`.
    #[test]
    fn allocator_conserves_pages(
        pages in 1usize..200,
        colors_pow in 0u32..=6,
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let colors = ColorSpace::with_colors(1 << colors_pow);
        let mut pool = PhysicalMemory::new(pages, colors);
        let mut held: Vec<cdpc_vm::addr::Ppn> = Vec::new();
        let mut held_set = HashSet::new();
        for op in ops {
            match op {
                AllocOp::Exact(c) => {
                    let color = Color(c % colors.num_colors());
                    if let Ok(ppn) = pool.alloc_exact(color) {
                        prop_assert_eq!(colors.color_of_ppn(ppn), color, "exact color");
                        prop_assert!(held_set.insert(ppn), "double allocation");
                        held.push(ppn);
                    }
                }
                AllocOp::Preferring(c) => {
                    let color = Color(c % colors.num_colors());
                    if let Ok(ppn) = pool.alloc_preferring(color) {
                        prop_assert!(held_set.insert(ppn), "double allocation");
                        held.push(ppn);
                    } else {
                        prop_assert_eq!(pool.free_pages(), 0, "preferring fails only when empty");
                    }
                }
                AllocOp::Any => {
                    if let Ok(ppn) = pool.alloc_any() {
                        prop_assert!(held_set.insert(ppn), "double allocation");
                        held.push(ppn);
                    } else {
                        prop_assert_eq!(pool.free_pages(), 0);
                    }
                }
                AllocOp::FreeOldest => {
                    if let Some(ppn) = (!held.is_empty()).then(|| held.remove(0)) {
                        held_set.remove(&ppn);
                        pool.free(ppn);
                    }
                }
            }
            prop_assert_eq!(
                pool.free_pages() + held.len(),
                pool.total_pages(),
                "conservation violated"
            );
        }
    }

    /// Under a page-coloring policy, an address space's mappings always
    /// satisfy `color(ppn) == vpn mod num_colors` when memory is ample,
    /// regardless of fault order.
    #[test]
    fn page_coloring_invariant_any_order(order in Just(()).prop_flat_map(|_| {
        prop::collection::vec(0u64..32, 1..32)
    })) {
        let colors = ColorSpace::with_colors(8);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), 256, colors);
        let mut policy = PageColoring::new(colors);
        let mut faulted = HashSet::new();
        for vpn in order {
            if faulted.insert(vpn) {
                vm.fault(Vpn(vpn), &mut policy).unwrap();
            }
        }
        for (vpn, ppn) in vm.mappings() {
            prop_assert_eq!(colors.color_of_ppn(ppn), colors.color_of_vpn(vpn));
        }
    }

    /// Bin hopping's colors depend only on fault *order*, never on the
    /// virtual page numbers involved.
    #[test]
    fn bin_hopping_is_address_blind(
        vpns_a in prop::collection::vec(0u64..1000, 1..40),
        salt in 1u64..1_000,
    ) {
        let colors = ColorSpace::with_colors(16);
        let unique_a: Vec<u64> = {
            let mut seen = HashSet::new();
            vpns_a.into_iter().filter(|v| seen.insert(*v)).collect()
        };
        let vpns_b: Vec<u64> = unique_a.iter().map(|v| v + salt * 1000).collect();
        let colors_of = |vpns: &[u64]| {
            let mut p = BinHopping::new(colors);
            vpns.iter().map(|&v| p.preferred_color(Vpn(v)).unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(colors_of(&unique_a), colors_of(&vpns_b));
    }
}
