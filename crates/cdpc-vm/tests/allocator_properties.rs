//! Property tests over the physical allocator and the address space:
//! conservation, uniqueness, and color arithmetic under arbitrary
//! alloc/free interleavings.
//!
//! Interleavings are drawn from a seeded [`SplitMix64`], one seed per
//! case, so failures reproduce exactly by seed number.

use std::collections::HashSet;

use cdpc_obs::SplitMix64;
use cdpc_vm::addr::{Color, ColorSpace, PageGeometry, Vpn};
use cdpc_vm::phys::PhysicalMemory;
use cdpc_vm::policy::{BinHopping, MappingPolicy, PageColoring};
use cdpc_vm::AddressSpace;

#[derive(Debug, Clone, Copy)]
enum AllocOp {
    Exact(u32),
    Preferring(u32),
    Any,
    FreeOldest,
}

fn random_op(rng: &mut SplitMix64) -> AllocOp {
    match rng.below(4) {
        0 => AllocOp::Exact(rng.below(64) as u32),
        1 => AllocOp::Preferring(rng.below(64) as u32),
        2 => AllocOp::Any,
        _ => AllocOp::FreeOldest,
    }
}

/// Pages are never handed out twice, never lost, and colors always
/// match `ppn mod num_colors`.
#[test]
fn allocator_conserves_pages() {
    for seed in 0..96u64 {
        let mut rng = SplitMix64::new(seed);
        let pages = rng.range(1, 199) as usize;
        let colors_pow = rng.range(0, 6) as u32;
        let num_ops = rng.range(1, 199);
        let colors = ColorSpace::with_colors(1 << colors_pow);
        let mut pool = PhysicalMemory::new(pages, colors);
        let mut held: Vec<cdpc_vm::addr::Ppn> = Vec::new();
        let mut held_set = HashSet::new();
        for _ in 0..num_ops {
            match random_op(&mut rng) {
                AllocOp::Exact(c) => {
                    let color = Color(c % colors.num_colors());
                    if let Ok(ppn) = pool.alloc_exact(color) {
                        assert_eq!(colors.color_of_ppn(ppn), color, "seed {seed}: exact color");
                        assert!(held_set.insert(ppn), "seed {seed}: double allocation");
                        held.push(ppn);
                    }
                }
                AllocOp::Preferring(c) => {
                    let color = Color(c % colors.num_colors());
                    if let Ok(ppn) = pool.alloc_preferring(color) {
                        assert!(held_set.insert(ppn), "seed {seed}: double allocation");
                        held.push(ppn);
                    } else {
                        assert_eq!(
                            pool.free_pages(),
                            0,
                            "seed {seed}: preferring fails only when empty"
                        );
                    }
                }
                AllocOp::Any => {
                    if let Ok(ppn) = pool.alloc_any() {
                        assert!(held_set.insert(ppn), "seed {seed}: double allocation");
                        held.push(ppn);
                    } else {
                        assert_eq!(pool.free_pages(), 0, "seed {seed}");
                    }
                }
                AllocOp::FreeOldest => {
                    if let Some(ppn) = (!held.is_empty()).then(|| held.remove(0)) {
                        held_set.remove(&ppn);
                        pool.free(ppn);
                    }
                }
            }
            assert_eq!(
                pool.free_pages() + held.len(),
                pool.total_pages(),
                "seed {seed}: conservation violated"
            );
        }
    }
}

/// Under a page-coloring policy, an address space's mappings always
/// satisfy `color(ppn) == vpn mod num_colors` when memory is ample,
/// regardless of fault order.
#[test]
fn page_coloring_invariant_any_order() {
    for seed in 0..96u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.range(1, 31);
        let order: Vec<u64> = (0..len).map(|_| rng.below(32)).collect();
        let colors = ColorSpace::with_colors(8);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), 256, colors);
        let mut policy = PageColoring::new(colors);
        let mut faulted = HashSet::new();
        for vpn in order {
            if faulted.insert(vpn) {
                vm.fault(Vpn(vpn), &mut policy).unwrap();
            }
        }
        for (vpn, ppn) in vm.mappings() {
            assert_eq!(
                colors.color_of_ppn(ppn),
                colors.color_of_vpn(vpn),
                "seed {seed}"
            );
        }
    }
}

/// Bin hopping's colors depend only on fault *order*, never on the
/// virtual page numbers involved.
#[test]
fn bin_hopping_is_address_blind() {
    for seed in 0..96u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.range(1, 39);
        let vpns_a: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
        let salt = rng.range(1, 999);
        let colors = ColorSpace::with_colors(16);
        let unique_a: Vec<u64> = {
            let mut seen = HashSet::new();
            vpns_a.into_iter().filter(|v| seen.insert(*v)).collect()
        };
        let vpns_b: Vec<u64> = unique_a.iter().map(|v| v + salt * 1000).collect();
        let colors_of = |vpns: &[u64]| {
            let mut p = BinHopping::new(colors);
            vpns.iter()
                .map(|&v| p.preferred_color(Vpn(v)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(colors_of(&unique_a), colors_of(&vpns_b), "seed {seed}");
    }
}
