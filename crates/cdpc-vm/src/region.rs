//! Virtual-address region tagging: which array owns which byte range.
//!
//! The compiler's layout pass assigns each declared array a contiguous
//! virtual range; a [`RegionMap`] is the runtime mirror of that
//! assignment, letting the memory system answer "whose miss is this?" in
//! a handful of instructions. The map is built once per run (from
//! `cdpc-compiler`'s `DataLayout`) and queried on every classified miss,
//! so lookup is a branchless-ish binary search over a flat sorted table —
//! no per-query allocation, no hashing.
//!
//! Region ids are plain `u32`s so the map can travel below the compiler
//! crates (the memory system and the probe vocabulary use raw integers).

use crate::addr::VirtAddr;

/// One tagged virtual range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Caller-chosen tag (the compiler uses the array index).
    pub id: u32,
}

/// An immutable sorted set of non-overlapping tagged virtual ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionMap {
    /// Regions sorted by `start`; verified non-overlapping at build time.
    regions: Vec<Region>,
}

impl RegionMap {
    /// Builds a map from arbitrary-order regions.
    ///
    /// # Panics
    ///
    /// Panics when a region is empty or two regions overlap — the layout
    /// pass never produces either, so both are construction bugs.
    pub fn new(mut regions: Vec<Region>) -> Self {
        regions.sort_by_key(|r| r.start);
        for r in &regions {
            assert!(r.start < r.end, "empty region {r:?}");
        }
        for pair in regions.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "overlapping regions {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        Self { regions }
    }

    /// The tag of the region containing `va`, or `None` for untagged
    /// addresses (code, runtime pages, gaps).
    #[inline]
    pub fn lookup(&self, va: VirtAddr) -> Option<u32> {
        let a = va.0;
        let idx = self.regions.partition_point(|r| r.start <= a);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        (a < r.end).then_some(r.id)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no regions are tagged.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions, sorted by start address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> RegionMap {
        RegionMap::new(vec![
            Region {
                start: 0x2000,
                end: 0x3000,
                id: 1,
            },
            Region {
                start: 0x1000,
                end: 0x1800,
                id: 0,
            },
        ])
    }

    #[test]
    fn lookup_hits_interior_and_boundaries() {
        let m = map();
        assert_eq!(m.lookup(VirtAddr(0x1000)), Some(0));
        assert_eq!(m.lookup(VirtAddr(0x17ff)), Some(0));
        assert_eq!(m.lookup(VirtAddr(0x1800)), None, "end is exclusive");
        assert_eq!(m.lookup(VirtAddr(0x2fff)), Some(1));
        assert_eq!(m.lookup(VirtAddr(0x0)), None);
        assert_eq!(m.lookup(VirtAddr(0x3000)), None);
    }

    #[test]
    fn regions_are_sorted_after_construction() {
        let m = map();
        assert_eq!(m.regions()[0].id, 0);
        assert_eq!(m.regions()[1].id, 1);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(RegionMap::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_rejected() {
        RegionMap::new(vec![
            Region {
                start: 0x1000,
                end: 0x2001,
                id: 0,
            },
            Region {
                start: 0x2000,
                end: 0x3000,
                id: 1,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_is_rejected() {
        RegionMap::new(vec![Region {
            start: 0x1000,
            end: 0x1000,
            id: 0,
        }]);
    }
}
