use std::error::Error;
use std::fmt;

use crate::addr::Vpn;

/// Errors raised by the virtual-memory substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// No physical page of any color is free.
    OutOfMemory,
    /// Attempted to map a virtual page that is already mapped.
    AlreadyMapped(Vpn),
    /// Attempted to unmap or query a virtual page that is not mapped.
    NotMapped(Vpn),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory => write!(f, "out of physical memory"),
            VmError::AlreadyMapped(vpn) => write!(f, "virtual page {vpn} is already mapped"),
            VmError::NotMapped(vpn) => write!(f, "virtual page {vpn} is not mapped"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        assert_eq!(VmError::OutOfMemory.to_string(), "out of physical memory");
        assert_eq!(
            VmError::AlreadyMapped(Vpn(4)).to_string(),
            "virtual page vpn:4 is already mapped"
        );
        assert_eq!(
            VmError::NotMapped(Vpn(2)).to_string(),
            "virtual page vpn:2 is not mapped"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmError>();
    }
}
