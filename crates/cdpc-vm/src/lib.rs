//! Virtual-memory substrate for the compiler-directed page coloring stack.
//!
//! This crate models the part of an operating system that the ASPLOS '96
//! paper *Compiler-Directed Page Coloring for Multiprocessors* interacts
//! with: the physical page allocator, the virtual-to-physical page tables,
//! and — most importantly — the **page mapping policy** that picks the
//! *color* of the physical page backing each virtual page.
//!
//! Two pages have the same color when they map to the same location in a
//! physically-indexed cache; cache conflicts can only occur between pages of
//! the same color. The number of colors is
//! `cache_size / (page_size * associativity)`.
//!
//! The crate provides the two static policies used by 1990s commercial
//! operating systems, plus the paper's hint-driven extension:
//!
//! * [`policy::PageColoring`] — consecutive virtual pages get consecutive
//!   colors (IRIX, Windows NT).
//! * [`policy::BinHopping`] — colors are assigned in fault order, cycling
//!   through all colors (Digital UNIX).
//! * [`policy::CdpcPolicy`] — an `madvise`-style hint table consulted first,
//!   falling back to a base policy when no hint exists or memory pressure
//!   prevents honoring the hint.
//!
//! It also implements the *user-level* realization of CDPC used on Digital
//! UNIX in the paper ([`touch`]): selectively touching pages in a computed
//! order so that the kernel's own bin-hopping policy produces the desired
//! coloring without any kernel modification.
//!
//! # Example
//!
//! ```
//! use cdpc_vm::addr::{ColorSpace, PageGeometry, Vpn};
//! use cdpc_vm::policy::{MappingPolicy, PageColoring};
//! use cdpc_vm::AddressSpace;
//!
//! // 1 MB direct-mapped cache, 4 KB pages => 256 colors.
//! let colors = ColorSpace::new(1 << 20, 4096, 1);
//! assert_eq!(colors.num_colors(), 256);
//!
//! let mut vm = AddressSpace::new(PageGeometry::new(4096), 1024, colors);
//! let mut policy = PageColoring::new(colors);
//! let ppn = vm.fault(Vpn(7), &mut policy)?;
//! assert_eq!(colors.color_of_ppn(ppn), policy.preferred_color(Vpn(7)).unwrap());
//! # Ok::<(), cdpc_vm::VmError>(())
//! ```

pub mod addr;
pub mod hint_table;
pub mod pagetable;
pub mod phys;
pub mod policy;
pub mod region;
pub mod touch;

mod error;

pub use error::VmError;
pub use region::{Region, RegionMap};

use addr::{ColorSpace, PageGeometry, PhysAddr, Ppn, VirtAddr, Vpn};
use pagetable::PageTable;
use phys::PhysicalMemory;
use policy::MappingPolicy;

/// A single application's virtual address space together with the physical
/// memory that backs it.
///
/// This is the integration point used by the machine simulator: every
/// first-touch of a virtual page raises a fault, the fault consults the
/// mapping policy for a preferred color, and the physical allocator tries to
/// honor that color.
///
/// `Clone` performs a deep copy (page table, physical allocator state, and
/// fault counters) — warm-run checkpoints rely on it to snapshot and replay
/// the VM exactly.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    geometry: PageGeometry,
    colors: ColorSpace,
    page_table: PageTable,
    phys: PhysicalMemory,
    stats: FaultStats,
}

/// Counters describing how page faults were served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total page faults served.
    pub faults: u64,
    /// Faults for which the policy expressed a color preference.
    pub preferred: u64,
    /// Faults where the preferred color was honored exactly.
    pub honored: u64,
    /// Faults that fell back to a different color (memory pressure).
    pub fallback: u64,
}

impl FaultStats {
    /// Fraction of color-preferring faults that were honored, or 1.0 when no
    /// fault expressed a preference.
    pub fn honor_rate(&self) -> f64 {
        if self.preferred == 0 {
            1.0
        } else {
            self.honored as f64 / self.preferred as f64
        }
    }
}

impl AddressSpace {
    /// Creates an address space backed by `phys_pages` physical pages.
    ///
    /// # Panics
    ///
    /// Panics if `phys_pages` is zero.
    pub fn new(geometry: PageGeometry, phys_pages: usize, colors: ColorSpace) -> Self {
        assert!(
            phys_pages > 0,
            "physical memory must hold at least one page"
        );
        Self {
            geometry,
            colors,
            page_table: PageTable::new(),
            phys: PhysicalMemory::new(phys_pages, colors),
            stats: FaultStats::default(),
        }
    }

    /// The page geometry (page size) of this address space.
    pub fn geometry(&self) -> PageGeometry {
        self.geometry
    }

    /// The color space used to classify physical pages.
    pub fn colors(&self) -> ColorSpace {
        self.colors
    }

    /// Translates a virtual address, returning `None` if the page is unmapped.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let vpn = self.geometry.vpn_of(va);
        let offset = self.geometry.offset_of(va);
        self.page_table
            .lookup(vpn)
            .map(|ppn| self.geometry.phys_addr(ppn, offset))
    }

    /// Translates a virtual page number, returning `None` if unmapped.
    pub fn translate_page(&self, vpn: Vpn) -> Option<Ppn> {
        self.page_table.lookup(vpn)
    }

    /// Returns `true` if the virtual page is currently mapped.
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.page_table.lookup(vpn).is_some()
    }

    /// Serves a page fault on `vpn` using `policy` to pick the preferred
    /// color.
    ///
    /// The preference is a *hint*: when no page of that color is free the
    /// allocator falls back to the nearest color with free pages, exactly as
    /// an OS under memory pressure would.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when no physical page is free at all
    /// and [`VmError::AlreadyMapped`] when the page is already mapped.
    pub fn fault<P: MappingPolicy + ?Sized>(
        &mut self,
        vpn: Vpn,
        policy: &mut P,
    ) -> Result<Ppn, VmError> {
        if self.page_table.lookup(vpn).is_some() {
            return Err(VmError::AlreadyMapped(vpn));
        }
        self.stats.faults += 1;
        let preferred = policy.preferred_color(vpn);
        let ppn = match preferred {
            Some(color) => {
                self.stats.preferred += 1;
                let ppn = self.phys.alloc_preferring(color)?;
                if self.colors.color_of_ppn(ppn) == color {
                    self.stats.honored += 1;
                } else {
                    self.stats.fallback += 1;
                }
                ppn
            }
            None => self.phys.alloc_any()?,
        };
        self.page_table.map(vpn, ppn)?;
        policy.note_mapped(vpn, self.colors.color_of_ppn(ppn));
        Ok(ppn)
    }

    /// Unmaps a virtual page and returns its physical page to the free pool.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] if the page was not mapped.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Ppn, VmError> {
        let ppn = self.page_table.unmap(vpn)?;
        self.phys.free(ppn);
        Ok(ppn)
    }

    /// Recolors a mapped page: allocates a new physical page preferring
    /// `color`, moves the mapping, and frees the old page. This is the
    /// mechanism behind *dynamic* page-coloring policies (paper §2.1):
    /// the OS copies the page contents and atomically swaps the
    /// virtual-to-physical mapping. The caller is responsible for the
    /// machine-level consequences (cache invalidation, TLB shootdown,
    /// copy cost).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] if `vpn` has no mapping, or
    /// [`VmError::OutOfMemory`] when no replacement page exists (the
    /// original mapping is left untouched in that case).
    pub fn recolor(&mut self, vpn: Vpn, color: addr::Color) -> Result<(Ppn, Ppn), VmError> {
        let old = self.page_table.lookup(vpn).ok_or(VmError::NotMapped(vpn))?;
        let new = self.phys.alloc_preferring(color)?;
        self.page_table.unmap(vpn).expect("checked above");
        self.page_table.map(vpn, new).expect("just unmapped");
        self.phys.free(old);
        Ok((old, new))
    }

    /// Fault statistics accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Number of physical pages still free.
    pub fn free_pages(&self) -> usize {
        self.phys.free_pages()
    }

    /// Total number of physical pages.
    pub fn total_pages(&self) -> usize {
        self.phys.total_pages()
    }

    /// Iterates over all current `(vpn, ppn)` mappings in ascending `vpn`
    /// order.
    pub fn mappings(&self) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        self.page_table.iter()
    }

    /// The color of the physical page backing `vpn`, if mapped.
    pub fn color_of(&self, vpn: Vpn) -> Option<addr::Color> {
        self.page_table
            .lookup(vpn)
            .map(|ppn| self.colors.color_of_ppn(ppn))
    }

    /// Number of currently mapped virtual pages.
    pub fn mapped_pages(&self) -> usize {
        self.page_table.iter().count()
    }

    /// How many mapped pages are backed by each color — the mapping's
    /// color balance, one bucket per color. A skewed histogram is the
    /// visible signature of a hostile mapping (many same-colored pages →
    /// cache conflicts).
    pub fn color_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.colors.num_colors() as usize];
        for (_, ppn) in self.page_table.iter() {
            hist[self.colors.color_of_ppn(ppn).0 as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::PageColoring;

    fn space() -> (AddressSpace, PageColoring) {
        let colors = ColorSpace::new(1 << 16, 4096, 1); // 16 colors
        let vm = AddressSpace::new(PageGeometry::new(4096), 64, colors);
        let policy = PageColoring::new(colors);
        (vm, policy)
    }

    #[test]
    fn fault_maps_page_and_honors_color() {
        let (mut vm, mut policy) = space();
        let ppn = vm.fault(Vpn(3), &mut policy).unwrap();
        assert_eq!(vm.translate_page(Vpn(3)), Some(ppn));
        assert_eq!(vm.color_of(Vpn(3)).unwrap().0, 3);
        assert_eq!(vm.stats().honored, 1);
    }

    #[test]
    fn double_fault_is_rejected() {
        let (mut vm, mut policy) = space();
        vm.fault(Vpn(0), &mut policy).unwrap();
        assert_eq!(
            vm.fault(Vpn(0), &mut policy),
            Err(VmError::AlreadyMapped(Vpn(0)))
        );
    }

    #[test]
    fn translate_combines_page_and_offset() {
        let (mut vm, mut policy) = space();
        let ppn = vm.fault(Vpn(2), &mut policy).unwrap();
        let va = VirtAddr(2 * 4096 + 123);
        assert_eq!(vm.translate(va), Some(PhysAddr(ppn.0 * 4096 + 123)));
    }

    #[test]
    fn unmap_frees_the_page() {
        let (mut vm, mut policy) = space();
        let free0 = vm.free_pages();
        vm.fault(Vpn(9), &mut policy).unwrap();
        assert_eq!(vm.free_pages(), free0 - 1);
        vm.unmap(Vpn(9)).unwrap();
        assert_eq!(vm.free_pages(), free0);
        assert!(!vm.is_mapped(Vpn(9)));
    }

    #[test]
    fn memory_pressure_falls_back_to_other_colors() {
        // 4 pages, 2 colors: after exhausting color 0, faults preferring
        // color 0 must fall back to color 1.
        let colors = ColorSpace::new(2 * 4096, 4096, 1);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), 4, colors);
        let mut policy = policy::FixedColor::new(addr::Color(0));
        for i in 0..4 {
            vm.fault(Vpn(i), &mut policy).unwrap();
        }
        let stats = vm.stats();
        assert_eq!(stats.faults, 4);
        assert_eq!(stats.honored, 2);
        assert_eq!(stats.fallback, 2);
        assert_eq!(vm.fault(Vpn(99), &mut policy), Err(VmError::OutOfMemory));
    }

    #[test]
    fn honor_rate_reflects_fallbacks() {
        let mut s = FaultStats::default();
        assert_eq!(s.honor_rate(), 1.0);
        s.preferred = 4;
        s.honored = 3;
        assert_eq!(s.honor_rate(), 0.75);
    }

    #[test]
    fn color_histogram_counts_backing_colors() {
        let (mut vm, mut policy) = space();
        assert_eq!(vm.mapped_pages(), 0);
        vm.fault(Vpn(0), &mut policy).unwrap(); // color 0
        vm.fault(Vpn(1), &mut policy).unwrap(); // color 1
        vm.fault(Vpn(16), &mut policy).unwrap(); // wraps to color 0
        let hist = vm.color_histogram();
        assert_eq!(hist.len(), 16);
        assert_eq!(hist[0], 2);
        assert_eq!(hist[1], 1);
        assert_eq!(hist.iter().sum::<u64>(), vm.mapped_pages() as u64);
    }

    #[test]
    fn recolor_moves_page_to_new_color() {
        let (mut vm, mut policy) = space();
        vm.fault(Vpn(3), &mut policy).unwrap(); // color 3 under page coloring
        let (old, new) = vm.recolor(Vpn(3), addr::Color(9)).unwrap();
        assert_ne!(old, new);
        assert_eq!(vm.color_of(Vpn(3)), Some(addr::Color(9)));
        // The old frame is reusable.
        let free_before = vm.free_pages();
        vm.fault(Vpn(40), &mut policy).unwrap();
        assert_eq!(vm.free_pages(), free_before - 1);
    }

    #[test]
    fn recolor_of_unmapped_page_fails() {
        let (mut vm, _) = space();
        assert_eq!(
            vm.recolor(Vpn(5), addr::Color(1)),
            Err(VmError::NotMapped(Vpn(5)))
        );
    }

    #[test]
    fn recolor_under_pressure_keeps_old_mapping() {
        // Fill memory completely; recolor must fail without corrupting the
        // page table.
        let colors = ColorSpace::with_colors(2);
        let mut vm = AddressSpace::new(PageGeometry::new(4096), 2, colors);
        let mut policy = policy::NoPreference;
        vm.fault(Vpn(0), &mut policy).unwrap();
        vm.fault(Vpn(1), &mut policy).unwrap();
        let before = vm.translate_page(Vpn(0)).unwrap();
        assert_eq!(
            vm.recolor(Vpn(0), addr::Color(1)),
            Err(VmError::OutOfMemory)
        );
        assert_eq!(vm.translate_page(Vpn(0)), Some(before));
    }
}
