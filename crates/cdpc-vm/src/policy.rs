//! Page mapping policies.
//!
//! A mapping policy answers one question at each page fault: *which color
//! should the physical page backing this virtual page have?* The answer is a
//! preference — the allocator may fall back under memory pressure.
//!
//! Three policies from the paper are provided:
//!
//! * [`PageColoring`] — consecutive virtual pages → consecutive colors
//!   (IRIX 5.3, Windows NT). Exploits spatial locality: conflicts only occur
//!   between pages whose virtual addresses differ by a multiple of the cache
//!   set size.
//! * [`BinHopping`] — colors assigned in fault order, cycling through all
//!   colors (Digital UNIX). Exploits temporal locality: pages first touched
//!   close in time never conflict. On a multiprocessor, concurrent faults
//!   race for the fault-order counter, making the resulting coloring
//!   non-deterministic; [`BinHopping::with_race_perturbation`] models that.
//! * [`CdpcPolicy`] — consults a compiler-generated
//!   [`hint_table::HintTable`](crate::hint_table::HintTable) first and falls back to a
//!   base policy for unhinted pages.

use crate::addr::{Color, ColorSpace, Vpn};
use crate::hint_table::HintTable;

/// A page-mapping policy: maps page-fault events to preferred page colors.
///
/// Implementations may keep internal state (bin hopping's cursor) which is
/// why `preferred_color` takes `&mut self`.
pub trait MappingPolicy {
    /// The color this policy would like the page backing `vpn` to have, or
    /// `None` to let the allocator pick freely.
    fn preferred_color(&mut self, vpn: Vpn) -> Option<Color>;

    /// Invoked by the address space after the fault completes with the color
    /// that was actually obtained. The default implementation ignores it.
    fn note_mapped(&mut self, vpn: Vpn, actual: Color) {
        let _ = (vpn, actual);
    }

    /// A short human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// `(lookups, hits)` of the policy's hint table, if it has one.
    /// Policies without a hint table (everything except [`CdpcPolicy`])
    /// return `None`. Lets observers meter hint-table traffic through a
    /// `dyn MappingPolicy` without downcasting.
    fn hint_lookup_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// A deep copy of this policy behind a thread-shareable box.
    ///
    /// Checkpoint/fork sweeps (see `cdpc-machine`) capture the policy's
    /// state after the warm-up pass and replay it on every fork, possibly
    /// from a different thread — so the clone must carry all mutable state
    /// (bin hopping's cursor and RNG, hint-lookup counters) and be
    /// `Send + Sync`.
    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync>;
}

/// IRIX-style page coloring: `color = vpn mod num_colors`.
#[derive(Debug, Clone, Copy)]
pub struct PageColoring {
    colors: ColorSpace,
}

impl PageColoring {
    /// Creates a page-coloring policy over the given color space.
    pub fn new(colors: ColorSpace) -> Self {
        Self { colors }
    }
}

impl MappingPolicy for PageColoring {
    fn preferred_color(&mut self, vpn: Vpn) -> Option<Color> {
        Some(self.colors.color_of_vpn(vpn))
    }

    fn name(&self) -> &'static str {
        "page-coloring"
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        Box::new(*self)
    }
}

/// Digital UNIX-style bin hopping: the `i`-th fault gets color
/// `(start + i) mod num_colors`, regardless of which page faulted.
///
/// With `race_window > 0`, each fault's position in the global fault order
/// is perturbed by a deterministic pseudo-random skip of up to
/// `race_window` slots, modelling the kernel race between processors that
/// fault concurrently (the paper notes this "can lead to unpredictable
/// performance").
#[derive(Debug, Clone)]
pub struct BinHopping {
    colors: ColorSpace,
    next: Color,
    race_window: u32,
    rng_state: u64,
}

impl BinHopping {
    /// Creates a deterministic bin-hopping policy starting at color 0.
    pub fn new(colors: ColorSpace) -> Self {
        Self {
            colors,
            next: Color(0),
            race_window: 0,
            rng_state: 0,
        }
    }

    /// Creates a bin-hopping policy whose fault order is perturbed by up to
    /// `race_window` slots per fault, seeded deterministically.
    pub fn with_race_perturbation(colors: ColorSpace, race_window: u32, seed: u64) -> Self {
        Self {
            colors,
            next: Color(0),
            race_window,
            rng_state: seed | 1,
        }
    }

    /// The color the *next* fault will be offered (before perturbation).
    pub fn cursor(&self) -> Color {
        self.next
    }

    fn next_perturbation(&mut self) -> u32 {
        if self.race_window == 0 {
            return 0;
        }
        // xorshift64*: cheap, deterministic, good enough for a jitter model.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as u32 % (self.race_window + 1)
    }
}

impl MappingPolicy for BinHopping {
    fn preferred_color(&mut self, _vpn: Vpn) -> Option<Color> {
        let skip = self.next_perturbation();
        let offered = self.colors.advance(self.next, skip);
        self.next = self.colors.advance(self.next, 1);
        Some(offered)
    }

    fn name(&self) -> &'static str {
        "bin-hopping"
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Compiler-directed page coloring: hints first, base policy otherwise.
///
/// This is the kernel-side half of CDPC — the paper's IRIX implementation
/// stores the `madvise`-provided color table and consults it during page
/// faults, deferring to the native policy for unhinted pages.
#[derive(Debug, Clone)]
pub struct CdpcPolicy<P> {
    hints: HintTable,
    base: P,
}

impl<P: MappingPolicy> CdpcPolicy<P> {
    /// Wraps `base` with a hint table.
    pub fn new(hints: HintTable, base: P) -> Self {
        Self { hints, base }
    }

    /// Read access to the installed hints.
    pub fn hints(&self) -> &HintTable {
        &self.hints
    }

    /// The fallback policy.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// Consumes the wrapper, returning the hint table and base policy.
    pub fn into_parts(self) -> (HintTable, P) {
        (self.hints, self.base)
    }
}

impl<P> MappingPolicy for CdpcPolicy<P>
where
    P: MappingPolicy + Clone + Send + Sync + 'static,
{
    fn preferred_color(&mut self, vpn: Vpn) -> Option<Color> {
        match self.hints.lookup(vpn) {
            Some(color) => Some(color),
            None => self.base.preferred_color(vpn),
        }
    }

    fn name(&self) -> &'static str {
        "cdpc"
    }

    fn hint_lookup_stats(&self) -> Option<(u64, u64)> {
        Some(self.hints.lookup_stats())
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        Box::new(self.clone())
    }
}

/// A policy with no color preference: the allocator's balanced `alloc_any`
/// path decides. Useful as a neutral baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPreference;

impl MappingPolicy for NoPreference {
    fn preferred_color(&mut self, _vpn: Vpn) -> Option<Color> {
        None
    }

    fn name(&self) -> &'static str {
        "no-preference"
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        Box::new(*self)
    }
}

/// Always prefers one fixed color. A pathological policy used in tests and
/// as a worst-case baseline (everything conflicts).
#[derive(Debug, Clone, Copy)]
pub struct FixedColor {
    color: Color,
}

impl FixedColor {
    /// Creates a policy that always asks for `color`.
    pub fn new(color: Color) -> Self {
        Self { color }
    }
}

impl MappingPolicy for FixedColor {
    fn preferred_color(&mut self, _vpn: Vpn) -> Option<Color> {
        Some(self.color)
    }

    fn name(&self) -> &'static str {
        "fixed-color"
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        Box::new(*self)
    }
}

impl<P: MappingPolicy + ?Sized> MappingPolicy for Box<P> {
    fn preferred_color(&mut self, vpn: Vpn) -> Option<Color> {
        (**self).preferred_color(vpn)
    }

    fn note_mapped(&mut self, vpn: Vpn, actual: Color) {
        (**self).note_mapped(vpn, actual);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn hint_lookup_stats(&self) -> Option<(u64, u64)> {
        (**self).hint_lookup_stats()
    }

    fn clone_box(&self) -> Box<dyn MappingPolicy + Send + Sync> {
        (**self).clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors() -> ColorSpace {
        ColorSpace::with_colors(8)
    }

    #[test]
    fn page_coloring_follows_vpn() {
        let mut p = PageColoring::new(colors());
        assert_eq!(p.preferred_color(Vpn(0)), Some(Color(0)));
        assert_eq!(p.preferred_color(Vpn(9)), Some(Color(1)));
        assert_eq!(p.preferred_color(Vpn(15)), Some(Color(7)));
    }

    #[test]
    fn bin_hopping_cycles_in_fault_order() {
        let mut p = BinHopping::new(colors());
        // The virtual page number is irrelevant; only fault order matters.
        let seq: Vec<u32> = (0..10)
            .map(|i| p.preferred_color(Vpn(100 - i)).unwrap().0)
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
    }

    #[test]
    fn bin_hopping_race_perturbs_but_stays_in_range() {
        let mut p = BinHopping::with_race_perturbation(colors(), 3, 42);
        let mut deviated = false;
        for i in 0..64u32 {
            let offered = p.preferred_color(Vpn(i as u64)).unwrap();
            let base = Color(i % 8);
            let skip = colors().distance(base, offered);
            assert!(skip <= 3, "perturbation {skip} exceeds window");
            deviated |= skip != 0;
        }
        assert!(deviated, "race perturbation never fired");
    }

    #[test]
    fn bin_hopping_race_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = BinHopping::with_race_perturbation(colors(), 3, seed);
            (0..32)
                .map(|i| p.preferred_color(Vpn(i)).unwrap().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn cdpc_prefers_hints_and_falls_back() {
        let mut hints = HintTable::new();
        hints.advise(Vpn(5), Color(3));
        let mut p = CdpcPolicy::new(hints, PageColoring::new(colors()));
        assert_eq!(p.preferred_color(Vpn(5)), Some(Color(3)));
        // Unhinted page: defer to page coloring.
        assert_eq!(p.preferred_color(Vpn(9)), Some(Color(1)));
        assert_eq!(p.name(), "cdpc");
    }

    #[test]
    fn boxed_policy_is_usable_as_trait_object() {
        let mut p: Box<dyn MappingPolicy> = Box::new(PageColoring::new(colors()));
        assert_eq!(p.preferred_color(Vpn(2)), Some(Color(2)));
        assert_eq!(p.name(), "page-coloring");
    }

    #[test]
    fn no_preference_declines() {
        assert_eq!(NoPreference.preferred_color(Vpn(1)), None);
    }

    #[test]
    fn clone_box_carries_mutable_state() {
        // Bin hopping's cursor and RNG are the interesting state: a clone
        // taken mid-sequence must continue exactly where the original was,
        // while the original keeps its own stream.
        let mut p = BinHopping::with_race_perturbation(colors(), 3, 42);
        for i in 0..10 {
            p.preferred_color(Vpn(i));
        }
        let mut forked = p.clone_box();
        let from_fork: Vec<_> = (0..16).map(|i| forked.preferred_color(Vpn(i))).collect();
        let from_orig: Vec<_> = (0..16).map(|i| p.preferred_color(Vpn(i))).collect();
        assert_eq!(from_fork, from_orig);
        assert_eq!(forked.name(), "bin-hopping");
    }

    #[test]
    fn clone_box_is_send_sync() {
        fn takes_shareable<T: Send + Sync + ?Sized>(_: &T) {}
        let mut hints = HintTable::new();
        hints.advise(Vpn(5), Color(3));
        let p = CdpcPolicy::new(hints, PageColoring::new(colors()));
        let boxed = p.clone_box();
        takes_shareable(&*boxed);
        // Hint-lookup counters travel with the clone.
        let mut q = p.clone_box();
        q.preferred_color(Vpn(5));
        q.preferred_color(Vpn(9));
        assert_eq!(q.hint_lookup_stats(), Some((2, 1)));
        assert_eq!(p.hint_lookup_stats(), Some((0, 0)));
    }
}
