//! User-level CDPC via selective page touching (the Digital UNIX path).
//!
//! Digital UNIX's bin-hopping policy assigns colors in fault *order*, so a
//! program can obtain any balanced coloring **without kernel modification**
//! by touching its pages in a computed order at start-up. The paper uses
//! this trick to implement both page coloring and CDPC on the AlphaServer.
//!
//! The catch: bin hopping hands out colors cyclically, so an arbitrary
//! vpn→color assignment is only realizable when the desired colors, taken in
//! some page order, form the cyclic sequence `s, s+1, s+2, …` for some start
//! `s`. CDPC's final round-robin color-assignment step guarantees exactly
//! this — which is why the authors could use the touch trick at all.
//!
//! [`touch_order`] computes the order; [`realizable`] checks the
//! precondition and reports the first page that breaks it.

use crate::addr::{Color, ColorSpace, Vpn};

/// Why a desired coloring cannot be realized by touching pages under a
/// bin-hopping kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrealizableColoring {
    /// The page whose desired color breaks the cyclic sequence.
    pub vpn: Vpn,
    /// The color the cyclic sequence requires at that point.
    pub expected: Color,
    /// The color the hint table asked for.
    pub got: Color,
}

impl std::fmt::Display for UnrealizableColoring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coloring not realizable under bin hopping: {} needs {} but cyclic order requires {}",
            self.vpn, self.got, self.expected
        )
    }
}

impl std::error::Error for UnrealizableColoring {}

/// Computes the touch order that makes a bin-hopping kernel produce the
/// desired `(vpn, color)` assignment.
///
/// `assignment` must already be in the coloring order produced by the CDPC
/// algorithm (colors cycling round-robin). The returned vector is the
/// sequence of pages to touch, starting from the page whose desired color
/// matches `kernel_cursor` (the bin-hopping counter's current position).
///
/// # Errors
///
/// Returns [`UnrealizableColoring`] if the desired colors do not form a
/// cyclic round-robin sequence in the given order.
pub fn touch_order(
    assignment: &[(Vpn, Color)],
    colors: ColorSpace,
    kernel_cursor: Color,
) -> Result<Vec<Vpn>, UnrealizableColoring> {
    realizable(assignment, colors)?;
    if assignment.is_empty() {
        return Ok(Vec::new());
    }
    // Rotate so the first touched page's desired color equals the kernel
    // cursor; bin hopping then walks the cycle in lock step. Rotation is
    // only sound when the assignment length is a multiple of the color
    // count (otherwise the wrap point breaks the +1 sequence). When it is
    // not — or no page wants the cursor color — keep the given order and
    // let the caller align the cursor with [`burn_count`] dummy faults.
    let rotatable = assignment
        .len()
        .is_multiple_of(colors.num_colors() as usize);
    let first = if rotatable {
        assignment
            .iter()
            .position(|&(_, c)| c == kernel_cursor)
            .unwrap_or(0)
    } else {
        0
    };
    Ok(assignment[first..]
        .iter()
        .chain(assignment[..first].iter())
        .map(|&(v, _)| v)
        .collect())
}

/// Number of dummy page faults needed to advance the bin-hopping cursor from
/// `kernel_cursor` to the first color in `assignment`.
///
/// Zero when the assignment is empty or already aligned.
pub fn burn_count(assignment: &[(Vpn, Color)], colors: ColorSpace, kernel_cursor: Color) -> u32 {
    match assignment.first() {
        Some(&(_, first)) => colors.distance(kernel_cursor, first),
        None => 0,
    }
}

/// Checks that the colors of `assignment`, in order, form a cyclic
/// round-robin sequence (each color is its predecessor plus one, modulo the
/// color count).
///
/// # Errors
///
/// Returns the first violating page.
pub fn realizable(
    assignment: &[(Vpn, Color)],
    colors: ColorSpace,
) -> Result<(), UnrealizableColoring> {
    for window in assignment.windows(2) {
        let (_, prev) = window[0];
        let (vpn, got) = window[1];
        let expected = colors.advance(prev, 1);
        if got != expected {
            return Err(UnrealizableColoring { vpn, expected, got });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs() -> ColorSpace {
        ColorSpace::with_colors(4)
    }

    fn rr(vpns: &[u64], start: u32) -> Vec<(Vpn, Color)> {
        vpns.iter()
            .enumerate()
            .map(|(i, &v)| (Vpn(v), Color((start + i as u32) % 4)))
            .collect()
    }

    #[test]
    fn round_robin_assignment_is_realizable() {
        assert_eq!(realizable(&rr(&[9, 3, 7, 1, 5], 2), cs()), Ok(()));
    }

    #[test]
    fn broken_sequence_is_reported() {
        let mut a = rr(&[0, 1, 2], 0);
        a[2].1 = Color(3); // should be 2
        let err = realizable(&a, cs()).unwrap_err();
        assert_eq!(err.vpn, Vpn(2));
        assert_eq!(err.expected, Color(2));
        assert_eq!(err.got, Color(3));
    }

    #[test]
    fn touch_order_rotates_to_kernel_cursor() {
        // Desired colors 2,3,0,1 — cursor at 0 → start touching at the page
        // that wants color 0.
        let a = rr(&[10, 11, 12, 13], 2);
        let order = touch_order(&a, cs(), Color(0)).unwrap();
        assert_eq!(order, vec![Vpn(12), Vpn(13), Vpn(10), Vpn(11)]);
    }

    #[test]
    fn touch_order_replays_through_bin_hopping() {
        use crate::policy::{BinHopping, MappingPolicy};
        // Length 8 = 2 full color cycles: rotation applies, no burn needed.
        let a = rr(&[4, 9, 2, 7, 0, 5, 11, 13], 1);
        let order = touch_order(&a, cs(), Color(0)).unwrap();
        let mut bh = BinHopping::new(cs());
        let mut got = std::collections::BTreeMap::new();
        for vpn in order {
            got.insert(vpn, bh.preferred_color(vpn).unwrap());
        }
        for (vpn, want) in a {
            assert_eq!(got[&vpn], want, "page {vpn} got the wrong color");
        }
    }

    #[test]
    fn unaligned_length_uses_burn_faults_instead_of_rotation() {
        use crate::policy::{BinHopping, MappingPolicy};
        let a = rr(&[4, 9, 2, 7, 0, 5], 1); // length 6, 4 colors
        let order = touch_order(&a, cs(), Color(0)).unwrap();
        // Order is unrotated; burn dummy faults to align the cursor first.
        assert_eq!(order[0], Vpn(4));
        let burns = burn_count(&a, cs(), Color(0));
        assert_eq!(burns, 1);
        let mut bh = BinHopping::new(cs());
        for _ in 0..burns {
            bh.preferred_color(Vpn(u64::MAX)).unwrap(); // dummy page
        }
        let mut got = std::collections::BTreeMap::new();
        for vpn in order {
            got.insert(vpn, bh.preferred_color(vpn).unwrap());
        }
        for (vpn, want) in a {
            assert_eq!(got[&vpn], want, "page {vpn} got the wrong color");
        }
    }

    #[test]
    fn burn_count_measures_cursor_misalignment() {
        let a = rr(&[1, 2], 3);
        assert_eq!(burn_count(&a, cs(), Color(0)), 3);
        assert_eq!(burn_count(&a, cs(), Color(3)), 0);
        assert_eq!(burn_count(&[], cs(), Color(2)), 0);
    }

    #[test]
    fn empty_assignment_is_trivially_fine() {
        assert_eq!(realizable(&[], cs()), Ok(()));
        assert_eq!(touch_order(&[], cs(), Color(1)).unwrap(), Vec::<Vpn>::new());
    }
}
