//! Address, page-number, and color newtypes shared by the whole stack.
//!
//! Every quantity that could be confused with a plain integer — virtual
//! addresses, physical addresses, page numbers, cache colors — gets its own
//! newtype so the compiler keeps us honest about which space a number lives
//! in (the paper's bugs-by-aliasing risk is real: a `u64` that is secretly a
//! *physical* page number indexed into a *virtual* page table is exactly the
//! kind of error these wrappers rule out).

use std::fmt;

/// A byte address in an application's virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A byte address in physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number (`virtual address / page size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical page number (`physical address / page size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

/// A page color: the position a page occupies in a physically-indexed cache.
///
/// Two physical pages conflict in the cache iff they have the same color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(pub u32);

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{}", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{}", self.0)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "color:{}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

impl From<VirtAddr> for u64 {
    fn from(v: VirtAddr) -> Self {
        v.0
    }
}

impl VirtAddr {
    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl Vpn {
    /// Returns the page number advanced by `pages`.
    #[must_use]
    pub fn offset(self, pages: u64) -> Vpn {
        Vpn(self.0 + pages)
    }
}

/// The page size of an address space; always a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageGeometry {
    page_size: usize,
    shift: u32,
}

impl PageGeometry {
    /// Creates a geometry for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two, got {page_size}"
        );
        Self {
            page_size,
            shift: page_size.trailing_zeros(),
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The virtual page containing `va`.
    pub fn vpn_of(&self, va: VirtAddr) -> Vpn {
        Vpn(va.0 >> self.shift)
    }

    /// The physical page containing `pa`.
    pub fn ppn_of(&self, pa: PhysAddr) -> Ppn {
        Ppn(pa.0 >> self.shift)
    }

    /// The offset of `va` within its page.
    pub fn offset_of(&self, va: VirtAddr) -> u64 {
        va.0 & (self.page_size as u64 - 1)
    }

    /// The first byte of virtual page `vpn`.
    pub fn base_of(&self, vpn: Vpn) -> VirtAddr {
        VirtAddr(vpn.0 << self.shift)
    }

    /// Recombines a physical page number and an in-page offset.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `offset` exceeds the page size.
    pub fn phys_addr(&self, ppn: Ppn, offset: u64) -> PhysAddr {
        debug_assert!(offset < self.page_size as u64);
        PhysAddr((ppn.0 << self.shift) | offset)
    }

    /// Number of pages needed to hold `bytes` (rounded up).
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size as u64)
    }
}

/// Derives page colors from a cache configuration.
///
/// The number of colors is `cache_size / (page_size * associativity)`; a
/// physical page's color is its page number modulo the number of colors
/// (physical memory is laid out so that consecutive pages land in
/// consecutive cache bins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColorSpace {
    num_colors: u32,
}

impl ColorSpace {
    /// Creates the color space for a physically-indexed cache.
    ///
    /// # Panics
    ///
    /// Panics if the cache is smaller than `page_size * associativity`, or
    /// if any argument is zero.
    pub fn new(cache_size: usize, page_size: usize, associativity: usize) -> Self {
        assert!(cache_size > 0 && page_size > 0 && associativity > 0);
        let denom = page_size * associativity;
        assert!(
            cache_size >= denom,
            "cache ({cache_size} B) smaller than page*assoc ({denom} B): no coloring possible"
        );
        Self {
            num_colors: (cache_size / denom) as u32,
        }
    }

    /// Creates a color space directly from a color count (for tests and
    /// synthetic configurations).
    ///
    /// # Panics
    ///
    /// Panics if `num_colors` is zero.
    pub fn with_colors(num_colors: u32) -> Self {
        assert!(num_colors > 0, "at least one color is required");
        Self { num_colors }
    }

    /// Total number of distinct colors.
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// The color of a physical page.
    pub fn color_of_ppn(&self, ppn: Ppn) -> Color {
        Color((ppn.0 % self.num_colors as u64) as u32)
    }

    /// The color a *page-coloring* policy assigns to a virtual page
    /// (consecutive virtual pages → consecutive colors).
    pub fn color_of_vpn(&self, vpn: Vpn) -> Color {
        Color((vpn.0 % self.num_colors as u64) as u32)
    }

    /// The color `steps` after `c`, wrapping around.
    pub fn advance(&self, c: Color, steps: u32) -> Color {
        Color((c.0 + steps) % self.num_colors)
    }

    /// Circular distance from color `a` to color `b` going upward.
    pub fn distance(&self, a: Color, b: Color) -> u32 {
        (b.0 + self.num_colors - a.0) % self.num_colors
    }

    /// Iterates over all colors in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Color> {
        (0..self.num_colors).map(Color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_round_trips_addresses() {
        let g = PageGeometry::new(4096);
        let va = VirtAddr(5 * 4096 + 99);
        assert_eq!(g.vpn_of(va), Vpn(5));
        assert_eq!(g.offset_of(va), 99);
        assert_eq!(g.base_of(Vpn(5)), VirtAddr(5 * 4096));
        assert_eq!(g.phys_addr(Ppn(7), 99), PhysAddr(7 * 4096 + 99));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two() {
        PageGeometry::new(3000);
    }

    #[test]
    fn pages_for_rounds_up() {
        let g = PageGeometry::new(4096);
        assert_eq!(g.pages_for(0), 0);
        assert_eq!(g.pages_for(1), 1);
        assert_eq!(g.pages_for(4096), 1);
        assert_eq!(g.pages_for(4097), 2);
    }

    #[test]
    fn paper_color_counts() {
        // "in a system with a 1MB cache and 4KB page size, there are 256
        // colors if the cache is direct-mapped, and 128 if the cache is
        // two-way set-associative."
        assert_eq!(ColorSpace::new(1 << 20, 4096, 1).num_colors(), 256);
        assert_eq!(ColorSpace::new(1 << 20, 4096, 2).num_colors(), 128);
    }

    #[test]
    fn color_arithmetic_wraps() {
        let cs = ColorSpace::with_colors(8);
        assert_eq!(cs.advance(Color(6), 3), Color(1));
        assert_eq!(cs.distance(Color(6), Color(1)), 3);
        assert_eq!(cs.distance(Color(1), Color(6)), 5);
        assert_eq!(cs.color_of_ppn(Ppn(17)), Color(1));
    }

    #[test]
    fn iter_visits_every_color_once() {
        let cs = ColorSpace::with_colors(5);
        let got: Vec<_> = cs.iter().collect();
        assert_eq!(got, vec![Color(0), Color(1), Color(2), Color(3), Color(4)]);
    }
}
