//! Physical page allocator with per-color free lists.
//!
//! Operating systems that implement page-mapping policies keep free physical
//! pages grouped by color so that a fault asking for a particular color is an
//! O(1) pop. Under memory pressure — when the requested color's list is
//! empty — the allocator falls back to the *nearest* color with a free page,
//! mirroring what IRIX and Digital UNIX do when a coloring hint cannot be
//! honored.

use std::collections::VecDeque;

use crate::addr::{Color, ColorSpace, Ppn};
use crate::VmError;

/// The machine's pool of physical pages, indexed by color.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    colors: ColorSpace,
    free_lists: Vec<VecDeque<Ppn>>,
    free: usize,
    total: usize,
    /// Cursor used by [`alloc_any`](Self::alloc_any) so colorless
    /// allocations spread over all colors instead of draining color 0.
    rover: u32,
}

impl PhysicalMemory {
    /// Creates a pool of `num_pages` physical pages numbered `0..num_pages`.
    ///
    /// Pages are distributed to per-color free lists by their page number
    /// (`color = ppn mod num_colors`), matching a physically contiguous
    /// memory layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_pages` is zero.
    pub fn new(num_pages: usize, colors: ColorSpace) -> Self {
        assert!(num_pages > 0, "physical memory must hold at least one page");
        let n = colors.num_colors() as usize;
        let mut free_lists = vec![VecDeque::new(); n];
        for p in 0..num_pages as u64 {
            let ppn = Ppn(p);
            free_lists[colors.color_of_ppn(ppn).0 as usize].push_back(ppn);
        }
        Self {
            colors,
            free_lists,
            free: num_pages,
            total: num_pages,
            rover: 0,
        }
    }

    /// The color space this pool was built with.
    pub fn colors(&self) -> ColorSpace {
        self.colors
    }

    /// Number of pages currently free.
    pub fn free_pages(&self) -> usize {
        self.free
    }

    /// Total pool size in pages.
    pub fn total_pages(&self) -> usize {
        self.total
    }

    /// Number of free pages of a specific color.
    pub fn free_pages_of(&self, color: Color) -> usize {
        self.free_lists[color.0 as usize].len()
    }

    /// Allocates a page of exactly `color`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if no page of that color is free
    /// (even if other colors have free pages).
    pub fn alloc_exact(&mut self, color: Color) -> Result<Ppn, VmError> {
        let list = &mut self.free_lists[color.0 as usize];
        match list.pop_front() {
            Some(ppn) => {
                self.free -= 1;
                Ok(ppn)
            }
            None => Err(VmError::OutOfMemory),
        }
    }

    /// Allocates a page of `color` when possible, otherwise the free page
    /// whose color is circularly nearest to `color`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] only when the entire pool is empty.
    pub fn alloc_preferring(&mut self, color: Color) -> Result<Ppn, VmError> {
        if self.free == 0 {
            return Err(VmError::OutOfMemory);
        }
        let n = self.colors.num_colors();
        for step in 0..n {
            let candidate = self.colors.advance(color, step);
            if let Ok(ppn) = self.alloc_exact(candidate) {
                return Ok(ppn);
            }
        }
        unreachable!("free > 0 but no color had a free page");
    }

    /// Allocates a page of any color, cycling through colors to keep the
    /// pool balanced.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] when the pool is empty.
    pub fn alloc_any(&mut self) -> Result<Ppn, VmError> {
        if self.free == 0 {
            return Err(VmError::OutOfMemory);
        }
        let n = self.colors.num_colors();
        for _ in 0..n {
            let color = Color(self.rover);
            self.rover = (self.rover + 1) % n;
            if let Ok(ppn) = self.alloc_exact(color) {
                return Ok(ppn);
            }
        }
        unreachable!("free > 0 but no color had a free page");
    }

    /// Returns a page to the pool.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the page number is outside the pool. Double
    /// frees are not detected; callers (the page table layer) prevent them.
    pub fn free(&mut self, ppn: Ppn) {
        debug_assert!((ppn.0 as usize) < self.total, "page {ppn} outside the pool");
        let color = self.colors.color_of_ppn(ppn);
        self.free_lists[color.0 as usize].push_back(ppn);
        self.free += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: usize, colors: u32) -> PhysicalMemory {
        PhysicalMemory::new(pages, ColorSpace::with_colors(colors))
    }

    #[test]
    fn pages_distribute_round_robin_over_colors() {
        let p = pool(8, 4);
        for c in 0..4 {
            assert_eq!(p.free_pages_of(Color(c)), 2);
        }
    }

    #[test]
    fn alloc_exact_returns_matching_color() {
        let mut p = pool(8, 4);
        let ppn = p.alloc_exact(Color(2)).unwrap();
        assert_eq!(p.colors().color_of_ppn(ppn), Color(2));
        assert_eq!(p.free_pages(), 7);
    }

    #[test]
    fn alloc_exact_fails_when_color_exhausted() {
        let mut p = pool(4, 4); // one page per color
        p.alloc_exact(Color(1)).unwrap();
        assert_eq!(p.alloc_exact(Color(1)), Err(VmError::OutOfMemory));
        assert_eq!(p.free_pages(), 3);
    }

    #[test]
    fn alloc_preferring_falls_back_to_nearest_color() {
        let mut p = pool(4, 4);
        p.alloc_exact(Color(1)).unwrap();
        let ppn = p.alloc_preferring(Color(1)).unwrap();
        // Nearest free color going upward from 1 is 2.
        assert_eq!(p.colors().color_of_ppn(ppn), Color(2));
    }

    #[test]
    fn alloc_any_balances_colors() {
        let mut p = pool(8, 4);
        let mut seen = [0usize; 4];
        for _ in 0..4 {
            let ppn = p.alloc_any().unwrap();
            seen[p.colors().color_of_ppn(ppn).0 as usize] += 1;
        }
        assert_eq!(seen, [1, 1, 1, 1]);
    }

    #[test]
    fn exhaustion_and_free_round_trip() {
        let mut p = pool(3, 2);
        let a = p.alloc_any().unwrap();
        let b = p.alloc_any().unwrap();
        let c = p.alloc_any().unwrap();
        assert_eq!(p.alloc_any(), Err(VmError::OutOfMemory));
        p.free(b);
        assert_eq!(p.free_pages(), 1);
        let again = p.alloc_preferring(Color(0)).unwrap();
        assert_eq!(again, b);
        // Distinctness of handed-out pages.
        assert!(a != b && b != c && a != c);
    }
}
