//! The `madvise`-style page-coloring hint interface.
//!
//! The paper's IRIX implementation extends `madvise` so an application can
//! hand the kernel a sequence of virtual pages with associated preferred
//! colors in a *single system call*; the kernel stores them in a table that
//! the VM subsystem consults during page faults. This module is that table.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::addr::{Color, Vpn};

/// A table of per-virtual-page color preferences.
///
/// Hints are advisory: pages without hints use the OS's native policy, and
/// hinted colors may be overridden by the allocator under memory pressure.
///
/// The table keeps lookup statistics (total lookups and hits) in interior-
/// mutable counters so [`lookup`](Self::lookup) can stay `&self`; equality
/// and hashing consider only the hints themselves. The counters are relaxed
/// atomics rather than `Cell`s so the table is `Sync` — warm-run checkpoints
/// hold policies (and therefore hint tables) behind `Arc` and fork them from
/// multiple sweep threads; lookups happen only on page faults, so the
/// atomic increment is not on the per-reference hot path.
#[derive(Debug, Default)]
pub struct HintTable {
    hints: BTreeMap<Vpn, Color>,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl Clone for HintTable {
    fn clone(&self) -> Self {
        Self {
            hints: self.hints.clone(),
            lookups: AtomicU64::new(self.lookups.load(Relaxed)),
            hits: AtomicU64::new(self.hits.load(Relaxed)),
        }
    }
}

impl PartialEq for HintTable {
    fn eq(&self, other: &Self) -> bool {
        self.hints == other.hints
    }
}

impl Eq for HintTable {}

impl HintTable {
    /// Creates an empty hint table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the hint for one page.
    pub fn advise(&mut self, vpn: Vpn, color: Color) {
        self.hints.insert(vpn, color);
    }

    /// Installs hints for a contiguous range of pages starting at `start`,
    /// one color per page. This is the paper's single-system-call bulk
    /// interface.
    pub fn advise_range(&mut self, start: Vpn, colors: &[Color]) {
        for (i, &c) in colors.iter().enumerate() {
            self.hints.insert(start.offset(i as u64), c);
        }
    }

    /// Removes the hint for a page, returning it if present.
    pub fn retract(&mut self, vpn: Vpn) -> Option<Color> {
        self.hints.remove(&vpn)
    }

    /// The hint for `vpn`, if any. Counted in
    /// [`lookup_stats`](Self::lookup_stats).
    pub fn lookup(&self, vpn: Vpn) -> Option<Color> {
        self.lookups.fetch_add(1, Relaxed);
        let hint = self.hints.get(&vpn).copied();
        if hint.is_some() {
            self.hits.fetch_add(1, Relaxed);
        }
        hint
    }

    /// `(lookups, hits)` performed so far. A miss means the fault fell back
    /// to the base mapping policy.
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.lookups.load(Relaxed), self.hits.load(Relaxed))
    }

    /// Clears the lookup counters (hints are untouched).
    pub fn reset_lookup_stats(&self) {
        self.lookups.store(0, Relaxed);
        self.hits.store(0, Relaxed);
    }

    /// Number of hinted pages.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Returns `true` if no hints are installed.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// Iterates over hints in ascending virtual-page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Color)> + '_ {
        self.hints.iter().map(|(&v, &c)| (v, c))
    }
}

impl FromIterator<(Vpn, Color)> for HintTable {
    fn from_iter<I: IntoIterator<Item = (Vpn, Color)>>(iter: I) -> Self {
        Self {
            hints: iter.into_iter().collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

impl Extend<(Vpn, Color)> for HintTable {
    fn extend<I: IntoIterator<Item = (Vpn, Color)>>(&mut self, iter: I) {
        self.hints.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advise_and_lookup() {
        let mut t = HintTable::new();
        assert!(t.is_empty());
        t.advise(Vpn(4), Color(2));
        assert_eq!(t.lookup(Vpn(4)), Some(Color(2)));
        assert_eq!(t.lookup(Vpn(5)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn advise_range_assigns_consecutive_pages() {
        let mut t = HintTable::new();
        t.advise_range(Vpn(10), &[Color(0), Color(3), Color(1)]);
        assert_eq!(t.lookup(Vpn(10)), Some(Color(0)));
        assert_eq!(t.lookup(Vpn(11)), Some(Color(3)));
        assert_eq!(t.lookup(Vpn(12)), Some(Color(1)));
    }

    #[test]
    fn re_advising_replaces() {
        let mut t = HintTable::new();
        t.advise(Vpn(1), Color(0));
        t.advise(Vpn(1), Color(7));
        assert_eq!(t.lookup(Vpn(1)), Some(Color(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retract_removes() {
        let mut t = HintTable::new();
        t.advise(Vpn(1), Color(0));
        assert_eq!(t.retract(Vpn(1)), Some(Color(0)));
        assert_eq!(t.retract(Vpn(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lookup_stats_count_hits_and_misses() {
        let mut t = HintTable::new();
        t.advise(Vpn(4), Color(2));
        t.lookup(Vpn(4));
        t.lookup(Vpn(5));
        t.lookup(Vpn(4));
        assert_eq!(t.lookup_stats(), (3, 2));
        t.reset_lookup_stats();
        assert_eq!(t.lookup_stats(), (0, 0));
    }

    #[test]
    fn equality_ignores_lookup_counters() {
        let mut a = HintTable::new();
        let mut b = HintTable::new();
        a.advise(Vpn(1), Color(0));
        b.advise(Vpn(1), Color(0));
        a.lookup(Vpn(1));
        assert_eq!(a, b, "counters must not affect equality");
    }

    #[test]
    fn collect_and_extend() {
        let t: HintTable = vec![(Vpn(2), Color(1)), (Vpn(1), Color(0))]
            .into_iter()
            .collect();
        let order: Vec<u64> = t.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![1, 2]);
        let mut t2 = t.clone();
        t2.extend([(Vpn(3), Color(2))]);
        assert_eq!(t2.len(), 3);
    }
}
