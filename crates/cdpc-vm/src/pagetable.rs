//! A flat single-level page table (virtual page → physical page).
//!
//! The run loop consults the page table on every TLB miss, and the page
//! allocator walks it when recoloring, so `lookup` must be cheap. The old
//! implementation was a `BTreeMap` (a pointer-chasing tree walk per
//! lookup); this one is **flat**: virtual pages below [`DENSE_LIMIT`] live
//! in a plain `Vec` indexed by VPN (one bounds check and one load), and the
//! rare far-away pages — e.g. the synthetic memory-pressure "hog" region
//! placed at `u64::MAX / 2` — live in a sorted overflow vector searched by
//! binary search, so a distant VPN costs O(log n) in the number of *mapped*
//! far pages, never memory proportional to the address itself.
//!
//! The type also enforces the bijection invariant (no virtual page maps
//! twice, no physical page is shared) that the allocator and the cache
//! simulator rely on.

use crate::addr::{Ppn, Vpn};
use crate::VmError;

/// Virtual pages below this bound are stored in the dense vector (2^20
/// pages = 4 GiB of virtual address space at 4 KiB pages; the dense vector
/// itself grows only to the highest mapped VPN, so small address spaces
/// stay small).
const DENSE_LIMIT: u64 = 1 << 20;

/// Virtual→physical page mapping for one address space.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// `dense[vpn] == ppn + 1`, or 0 when unmapped. Indexed directly by
    /// VPN for `vpn < DENSE_LIMIT`; grown on demand to the highest mapped
    /// VPN + 1.
    dense: Vec<u64>,
    /// Sorted `(vpn, ppn)` pairs for `vpn >= DENSE_LIMIT`.
    sparse: Vec<(u64, u64)>,
    /// Count of mapped pages across both regions.
    len: usize,
    /// Debug-only reverse check that no physical page backs two virtual
    /// pages (the allocator can never hand out a page twice).
    #[cfg(debug_assertions)]
    backing: std::collections::HashSet<Ppn>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the physical page backing `vpn`.
    #[inline]
    pub fn lookup(&self, vpn: Vpn) -> Option<Ppn> {
        if vpn.0 < DENSE_LIMIT {
            match self.dense.get(vpn.0 as usize) {
                Some(&slot) if slot != 0 => Some(Ppn(slot - 1)),
                _ => None,
            }
        } else {
            self.sparse
                .binary_search_by_key(&vpn.0, |&(v, _)| v)
                .ok()
                .map(|i| Ppn(self.sparse[i].1))
        }
    }

    /// Installs a mapping.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::AlreadyMapped`] if `vpn` is mapped. Mapping the
    /// same physical page under two virtual pages is a logic error and
    /// panics in debug builds (the allocator can never hand out a page
    /// twice).
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), VmError> {
        debug_assert!(ppn.0 < u64::MAX, "ppn sentinel overflow");
        if vpn.0 < DENSE_LIMIT {
            let idx = vpn.0 as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            if self.dense[idx] != 0 {
                return Err(VmError::AlreadyMapped(vpn));
            }
            self.check_backing(ppn);
            self.dense[idx] = ppn.0 + 1;
        } else {
            match self.sparse.binary_search_by_key(&vpn.0, |&(v, _)| v) {
                Ok(_) => return Err(VmError::AlreadyMapped(vpn)),
                Err(pos) => {
                    self.check_backing(ppn);
                    self.sparse.insert(pos, (vpn.0, ppn.0));
                }
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Removes a mapping, returning the physical page that backed it.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] if `vpn` has no mapping.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Ppn, VmError> {
        let ppn = if vpn.0 < DENSE_LIMIT {
            match self.dense.get_mut(vpn.0 as usize) {
                Some(slot) if *slot != 0 => {
                    let ppn = Ppn(*slot - 1);
                    *slot = 0;
                    ppn
                }
                _ => return Err(VmError::NotMapped(vpn)),
            }
        } else {
            match self.sparse.binary_search_by_key(&vpn.0, |&(v, _)| v) {
                Ok(i) => Ppn(self.sparse.remove(i).1),
                Err(_) => return Err(VmError::NotMapped(vpn)),
            }
        };
        self.len -= 1;
        self.release_backing(ppn);
        Ok(ppn)
    }

    /// Number of installed mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over mappings in ascending virtual page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != 0)
            .map(|(v, &slot)| (Vpn(v as u64), Ppn(slot - 1)));
        let sparse = self.sparse.iter().map(|&(v, p)| (Vpn(v), Ppn(p)));
        // Every sparse VPN is >= DENSE_LIMIT > every dense VPN, so plain
        // chaining preserves ascending order.
        dense.chain(sparse)
    }

    #[cfg(debug_assertions)]
    fn check_backing(&mut self, ppn: Ppn) {
        let fresh = self.backing.insert(ppn);
        debug_assert!(fresh, "physical page {ppn} mapped twice");
    }

    #[cfg(not(debug_assertions))]
    fn check_backing(&mut self, _ppn: Ppn) {}

    #[cfg(debug_assertions)]
    fn release_backing(&mut self, ppn: Ppn) {
        self.backing.remove(&ppn);
    }

    #[cfg(not(debug_assertions))]
    fn release_backing(&mut self, _ppn: Ppn) {}

    /// Bytes of table metadata currently allocated (test hook for the
    /// sparse-region memory bound).
    #[cfg(test)]
    fn allocated_slots(&self) -> usize {
        self.dense.capacity() + self.sparse.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(Vpn(1), Ppn(10)).unwrap();
        assert_eq!(pt.lookup(Vpn(1)), Some(Ppn(10)));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.unmap(Vpn(1)), Ok(Ppn(10)));
        assert!(pt.is_empty());
    }

    #[test]
    fn remap_rejected() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Ppn(10)).unwrap();
        assert_eq!(pt.map(Vpn(1), Ppn(11)), Err(VmError::AlreadyMapped(Vpn(1))));
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap(Vpn(5)), Err(VmError::NotMapped(Vpn(5))));
    }

    #[test]
    fn iteration_is_sorted_by_vpn() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Ppn(1)).unwrap();
        pt.map(Vpn(1), Ppn(2)).unwrap();
        pt.map(Vpn(3), Ppn(3)).unwrap();
        let keys: Vec<u64> = pt.iter().map(|(v, _)| v.0).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn physical_page_can_be_reused_after_unmap() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Ppn(7)).unwrap();
        pt.unmap(Vpn(1)).unwrap();
        pt.map(Vpn(2), Ppn(7)).unwrap();
        assert_eq!(pt.lookup(Vpn(2)), Some(Ppn(7)));
    }

    #[test]
    fn sparse_vpns_roundtrip() {
        let mut pt = PageTable::new();
        let base = u64::MAX / 2;
        for i in 0..100 {
            pt.map(Vpn(base + i), Ppn(1000 + i)).unwrap();
        }
        assert_eq!(pt.len(), 100);
        for i in 0..100 {
            assert_eq!(pt.lookup(Vpn(base + i)), Some(Ppn(1000 + i)));
        }
        assert_eq!(pt.lookup(Vpn(base + 100)), None);
        assert_eq!(pt.lookup(Vpn(base - 1)), None);
        assert_eq!(
            pt.map(Vpn(base), Ppn(5000)),
            Err(VmError::AlreadyMapped(Vpn(base)))
        );
        assert_eq!(pt.unmap(Vpn(base + 50)), Ok(Ppn(1050)));
        assert_eq!(pt.lookup(Vpn(base + 50)), None);
        assert_eq!(pt.len(), 99);
    }

    #[test]
    fn hog_region_does_not_allocate_proportional_memory() {
        // Mapping N pages at u64::MAX / 2 must cost O(N) slots, not
        // O(address): the dense vector must not try to span the VPN.
        let mut pt = PageTable::new();
        let base = u64::MAX / 2;
        for i in 0..4096 {
            pt.map(Vpn(base + i), Ppn(i)).unwrap();
        }
        assert_eq!(pt.len(), 4096);
        assert!(
            pt.allocated_slots() < 4096 * 4,
            "far mappings must stay O(mapped pages), got {} slots",
            pt.allocated_slots()
        );
        assert_eq!(pt.lookup(Vpn(base + 4095)), Some(Ppn(4095)));
    }

    #[test]
    fn dense_and_sparse_regions_interleave_in_iteration() {
        let mut pt = PageTable::new();
        let far = u64::MAX / 2;
        pt.map(Vpn(far + 1), Ppn(1)).unwrap();
        pt.map(Vpn(2), Ppn(2)).unwrap();
        pt.map(Vpn(far), Ppn(3)).unwrap();
        pt.map(Vpn(0), Ppn(4)).unwrap();
        let keys: Vec<u64> = pt.iter().map(|(v, _)| v.0).collect();
        assert_eq!(keys, vec![0, 2, far, far + 1]);
        assert_eq!(pt.len(), 4);
    }

    #[test]
    fn dense_boundary_pages() {
        // Pages straddling DENSE_LIMIT land in different regions but
        // behave identically.
        let mut pt = PageTable::new();
        pt.map(Vpn(DENSE_LIMIT - 1), Ppn(1)).unwrap();
        pt.map(Vpn(DENSE_LIMIT), Ppn(2)).unwrap();
        assert_eq!(pt.lookup(Vpn(DENSE_LIMIT - 1)), Some(Ppn(1)));
        assert_eq!(pt.lookup(Vpn(DENSE_LIMIT)), Some(Ppn(2)));
        let keys: Vec<u64> = pt.iter().map(|(v, _)| v.0).collect();
        assert_eq!(keys, vec![DENSE_LIMIT - 1, DENSE_LIMIT]);
        assert_eq!(pt.unmap(Vpn(DENSE_LIMIT)), Ok(Ppn(2)));
        assert_eq!(pt.unmap(Vpn(DENSE_LIMIT - 1)), Ok(Ppn(1)));
        assert!(pt.is_empty());
    }
}
