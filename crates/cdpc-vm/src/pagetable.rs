//! A simple single-level page table (virtual page → physical page).
//!
//! The simulator only needs lookup, map, unmap, and ordered iteration, so a
//! `BTreeMap` is the whole implementation; the type exists to enforce the
//! bijection invariant (no virtual page maps twice, no physical page is
//! shared) that the allocator and the cache simulator rely on.

use std::collections::{BTreeMap, HashSet};

use crate::addr::{Ppn, Vpn};
use crate::VmError;

/// Virtual→physical page mapping for one address space.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    map: BTreeMap<Vpn, Ppn>,
    backing: HashSet<Ppn>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the physical page backing `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<Ppn> {
        self.map.get(&vpn).copied()
    }

    /// Installs a mapping.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::AlreadyMapped`] if `vpn` is mapped. Mapping the
    /// same physical page under two virtual pages is a logic error and
    /// panics in debug builds (the allocator can never hand out a page
    /// twice).
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), VmError> {
        if self.map.contains_key(&vpn) {
            return Err(VmError::AlreadyMapped(vpn));
        }
        let fresh = self.backing.insert(ppn);
        debug_assert!(fresh, "physical page {ppn} mapped twice");
        self.map.insert(vpn, ppn);
        Ok(())
    }

    /// Removes a mapping, returning the physical page that backed it.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] if `vpn` has no mapping.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Ppn, VmError> {
        match self.map.remove(&vpn) {
            Some(ppn) => {
                self.backing.remove(&ppn);
                Ok(ppn)
            }
            None => Err(VmError::NotMapped(vpn)),
        }
    }

    /// Number of installed mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over mappings in ascending virtual page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(Vpn(1), Ppn(10)).unwrap();
        assert_eq!(pt.lookup(Vpn(1)), Some(Ppn(10)));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.unmap(Vpn(1)), Ok(Ppn(10)));
        assert!(pt.is_empty());
    }

    #[test]
    fn remap_rejected() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Ppn(10)).unwrap();
        assert_eq!(pt.map(Vpn(1), Ppn(11)), Err(VmError::AlreadyMapped(Vpn(1))));
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap(Vpn(5)), Err(VmError::NotMapped(Vpn(5))));
    }

    #[test]
    fn iteration_is_sorted_by_vpn() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Ppn(1)).unwrap();
        pt.map(Vpn(1), Ppn(2)).unwrap();
        pt.map(Vpn(3), Ppn(3)).unwrap();
        let keys: Vec<u64> = pt.iter().map(|(v, _)| v.0).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn physical_page_can_be_reused_after_unmap() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Ppn(7)).unwrap();
        pt.unmap(Vpn(1)).unwrap();
        pt.map(Vpn(2), Ppn(7)).unwrap();
        assert_eq!(pt.lookup(Vpn(2)), Some(Ppn(7)));
    }
}
