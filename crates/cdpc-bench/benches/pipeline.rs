//! End-to-end pipeline benchmarks: compile (parallelize + layout +
//! summarize + prefetch-plan + lower) and full machine simulation of one
//! workload, per policy. These are the costs a user of the library pays.
//!
//! Run with `cargo bench -p cdpc-bench --bench pipeline`. The simulation
//! section also reports the probes-on cost next to probes-off, which is
//! the observability overhead budget (kept under 2% when disabled — the
//! disabled path is `run`, whose probe hooks compile to nothing).

use std::hint::black_box;

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{run, run_observed, run_sweep_memo, PolicyKind, ResultCache, RunConfig};
use cdpc_obs::selfprof::{fmt_duration, time_iters};
use cdpc_obs::CountingProbe;

fn bench_compile() {
    let setup = Setup::with_scale(8);
    for name in ["tomcatv", "su2cor", "turb3d"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        // The uncached path: `compile_bench` itself memoizes per setup,
        // which would reduce this loop to a map lookup.
        let t = time_iters(2, 20, || {
            black_box(setup.compile_bench_uncached(&bench, Preset::Base1MbDm, 8, true, true));
        });
        println!(
            "pipeline/compile/{name:<10} {:>12}",
            fmt_duration(t.secs_per_iter())
        );
    }
}

fn bench_simulation() {
    // Scale 64 keeps each full simulation to a few milliseconds.
    let setup = Setup::with_scale(64);
    let bench = cdpc_workloads::by_name("hydro2d").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 4, false, true);
    for policy in [
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
        PolicyKind::CdpcTouch,
    ] {
        let t = time_iters(2, 20, || {
            let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 4), policy);
            black_box(run(&compiled, &cfg));
        });
        println!(
            "pipeline/simulate_hydro2d_4p/{:<14} {:>12}",
            policy.label(),
            fmt_duration(t.secs_per_iter())
        );
    }
    // Probes-on variant: the instrumented run with a counting probe.
    let t = time_iters(2, 20, || {
        let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 4), PolicyKind::Cdpc);
        let mut probe = CountingProbe::default();
        black_box(run_observed(&compiled, &cfg, &mut probe, None));
    });
    println!(
        "pipeline/simulate_hydro2d_4p/{:<14} {:>12}",
        "cdpc+probes",
        fmt_duration(t.secs_per_iter())
    );
}

fn bench_engine() {
    // Serial run loop vs the epoch-parallel engine on the same workload
    // (tomcatv, 8 simulated CPUs — the headline configuration). On a
    // single-core host the engine rows price its choreography overhead;
    // on a multi-core host they show the intra-run overlap. The reports
    // are bit-identical either way (DESIGN.md section 6h).
    let setup = Setup::with_scale(64);
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 8, false, true);
    for sim_threads in [1usize, 2, 4] {
        let t = time_iters(2, 10, || {
            let mut cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 8), PolicyKind::Cdpc);
            cfg.sim_threads = sim_threads;
            black_box(run(&compiled, &cfg));
        });
        println!(
            "pipeline/run_loop_tomcatv_8p/sim-threads={sim_threads} {:>12}",
            fmt_duration(t.secs_per_iter())
        );
    }
}

fn bench_cached_sweep() {
    // A Figure-6-shaped sweep through the persistent result cache: the
    // cold pass simulates all 18 points and stores them, the warm pass
    // answers every point from disk. The reports are bit-identical; only
    // the wall clock changes (DESIGN.md section 6i).
    let setup = Setup::with_scale(64);
    let mut jobs = Vec::new();
    for name in ["tomcatv", "swim", "hydro2d"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        for cpus in [4usize, 8] {
            for policy in [
                PolicyKind::PageColoring,
                PolicyKind::BinHopping,
                PolicyKind::Cdpc,
            ] {
                jobs.push(setup.job(&bench, Preset::Base1MbDm, cpus, policy, false, true));
            }
        }
    }
    let dir = std::env::temp_dir().join(format!("cdpc-pipeline-cache-{}", std::process::id()));
    // Cold: fresh cache every iteration (delete, simulate, store).
    let t = time_iters(1, 5, || {
        std::fs::remove_dir_all(&dir).ok();
        let cache = ResultCache::new(&dir);
        black_box(run_sweep_memo(&jobs, 1, Some(&cache)));
    });
    println!(
        "pipeline/sweep_fig6/cold-cache   {:>12}",
        fmt_duration(t.secs_per_iter())
    );
    let cold = t.secs_per_iter();
    // Warm: the cache left by the last cold iteration hits on every point.
    let t = time_iters(2, 10, || {
        let cache = ResultCache::new(&dir);
        let (_, stats) = black_box(run_sweep_memo(&jobs, 1, Some(&cache)));
        assert_eq!(stats.misses, 0, "warm pass must hit on every point");
    });
    println!(
        "pipeline/sweep_fig6/warm-cache   {:>12}",
        fmt_duration(t.secs_per_iter())
    );
    println!(
        "pipeline/sweep_fig6/speedup      {:>11.1}x",
        cold / t.secs_per_iter().max(1e-9)
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    bench_compile();
    bench_simulation();
    bench_engine();
    bench_cached_sweep();
}
