//! End-to-end pipeline benchmarks: compile (parallelize + layout +
//! summarize + prefetch-plan + lower) and full machine simulation of one
//! workload, per policy. These are the costs a user of the library pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{run, PolicyKind, RunConfig};

fn bench_compile(c: &mut Criterion) {
    let setup = Setup { scale: 8 };
    let mut group = c.benchmark_group("pipeline/compile");
    for name in ["tomcatv", "su2cor", "turb3d"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(setup.compile_bench(&bench, Preset::Base1MbDm, 8, true, true)))
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    // Scale 64 keeps each full simulation to a few milliseconds.
    let setup = Setup { scale: 64 };
    let bench = cdpc_workloads::by_name("hydro2d").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 4, false, true);
    let mut group = c.benchmark_group("pipeline/simulate_hydro2d_4p");
    group.sample_size(20);
    for policy in [
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
        PolicyKind::CdpcTouch,
    ] {
        group.bench_function(BenchmarkId::from_parameter(policy.label()), |b| {
            b.iter(|| {
                let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 4), policy);
                black_box(run(&compiled, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_simulation);
criterion_main!(benches);
