//! End-to-end pipeline benchmarks: compile (parallelize + layout +
//! summarize + prefetch-plan + lower) and full machine simulation of one
//! workload, per policy. These are the costs a user of the library pays.
//!
//! Run with `cargo bench -p cdpc-bench --bench pipeline`. The simulation
//! section also reports the probes-on cost next to probes-off, which is
//! the observability overhead budget (kept under 2% when disabled — the
//! disabled path is `run`, whose probe hooks compile to nothing).

use std::hint::black_box;

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{run, run_observed, PolicyKind, RunConfig};
use cdpc_obs::selfprof::{fmt_duration, time_iters};
use cdpc_obs::CountingProbe;

fn bench_compile() {
    let setup = Setup::with_scale(8);
    for name in ["tomcatv", "su2cor", "turb3d"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        let t = time_iters(2, 20, || {
            black_box(setup.compile_bench(&bench, Preset::Base1MbDm, 8, true, true));
        });
        println!(
            "pipeline/compile/{name:<10} {:>12}",
            fmt_duration(t.secs_per_iter())
        );
    }
}

fn bench_simulation() {
    // Scale 64 keeps each full simulation to a few milliseconds.
    let setup = Setup::with_scale(64);
    let bench = cdpc_workloads::by_name("hydro2d").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 4, false, true);
    for policy in [
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::Cdpc,
        PolicyKind::CdpcTouch,
    ] {
        let t = time_iters(2, 20, || {
            let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 4), policy);
            black_box(run(&compiled, &cfg));
        });
        println!(
            "pipeline/simulate_hydro2d_4p/{:<14} {:>12}",
            policy.label(),
            fmt_duration(t.secs_per_iter())
        );
    }
    // Probes-on variant: the instrumented run with a counting probe.
    let t = time_iters(2, 20, || {
        let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 4), PolicyKind::Cdpc);
        let mut probe = CountingProbe::default();
        black_box(run_observed(&compiled, &cfg, &mut probe, None));
    });
    println!(
        "pipeline/simulate_hydro2d_4p/{:<14} {:>12}",
        "cdpc+probes",
        fmt_duration(t.secs_per_iter())
    );
}

fn bench_engine() {
    // Serial run loop vs the epoch-parallel engine on the same workload
    // (tomcatv, 8 simulated CPUs — the headline configuration). On a
    // single-core host the engine rows price its choreography overhead;
    // on a multi-core host they show the intra-run overlap. The reports
    // are bit-identical either way (DESIGN.md section 6h).
    let setup = Setup::with_scale(64);
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 8, false, true);
    for sim_threads in [1usize, 2, 4] {
        let t = time_iters(2, 10, || {
            let mut cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, 8), PolicyKind::Cdpc);
            cfg.sim_threads = sim_threads;
            black_box(run(&compiled, &cfg));
        });
        println!(
            "pipeline/run_loop_tomcatv_8p/sim-threads={sim_threads} {:>12}",
            fmt_duration(t.secs_per_iter())
        );
    }
}

fn main() {
    bench_compile();
    bench_simulation();
    bench_engine();
}
