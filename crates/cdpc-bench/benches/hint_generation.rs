//! Micro-benchmarks of the CDPC hint-generation algorithm — the paper's
//! start-up-time cost. The paper claims the technique is "simple to
//! implement" with information "directly derived" from parallelization
//! analysis; these benches quantify the run-time library's cost for real
//! workload shapes and its scaling in pages and processors.
//!
//! Run with `cargo bench -p cdpc-bench --bench hint_generation`.

use std::hint::black_box;

use cdpc_bench::{Preset, Setup};
use cdpc_core::{generate_hints, MachineParams};
use cdpc_obs::selfprof::time_iters;

fn bench_suite_hints() {
    let setup = Setup::with_scale(8);
    for name in ["tomcatv", "swim", "hydro2d", "applu"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 8, false, true);
        let mem = setup.scaled_mem(Preset::Base1MbDm, 8);
        let machine = MachineParams::new(
            8,
            mem.page_size,
            mem.l2.size_bytes(),
            mem.l2.associativity(),
        );
        let t = time_iters(10, 200, || {
            black_box(generate_hints(black_box(&compiled.summary), black_box(&machine)).unwrap());
        });
        println!(
            "generate_hints/suite/{name:<10} {:>10.2} µs/call",
            t.secs_per_iter() * 1e6
        );
    }
}

fn bench_cpu_scaling() {
    let setup = Setup::with_scale(8);
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    for cpus in [1usize, 4, 16] {
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        let mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
        let machine = MachineParams::new(
            cpus,
            mem.page_size,
            mem.l2.size_bytes(),
            mem.l2.associativity(),
        );
        let t = time_iters(10, 200, || {
            black_box(generate_hints(black_box(&compiled.summary), black_box(&machine)).unwrap());
        });
        println!(
            "generate_hints/cpus/{cpus:<2}       {:>10.2} µs/call",
            t.secs_per_iter() * 1e6
        );
    }
}

fn main() {
    bench_suite_hints();
    bench_cpu_scaling();
}
