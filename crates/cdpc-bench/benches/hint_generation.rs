//! Micro-benchmarks of the CDPC hint-generation algorithm — the paper's
//! start-up-time cost. The paper claims the technique is "simple to
//! implement" with information "directly derived" from parallelization
//! analysis; these benches quantify the run-time library's cost for real
//! workload shapes and its scaling in pages and processors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cdpc_bench::{Preset, Setup};
use cdpc_core::{generate_hints, MachineParams};

fn bench_suite_hints(c: &mut Criterion) {
    let setup = Setup { scale: 8 };
    let mut group = c.benchmark_group("generate_hints/suite");
    for name in ["tomcatv", "swim", "hydro2d", "applu"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, 8, false, true);
        let mem = setup.scaled_mem(Preset::Base1MbDm, 8);
        let machine =
            MachineParams::new(8, mem.page_size, mem.l2.size_bytes(), mem.l2.associativity());
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| generate_hints(black_box(&compiled.summary), black_box(&machine)).unwrap())
        });
    }
    group.finish();
}

fn bench_cpu_scaling(c: &mut Criterion) {
    let setup = Setup { scale: 8 };
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let mut group = c.benchmark_group("generate_hints/cpus");
    for cpus in [1usize, 4, 16] {
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        let mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
        let machine = MachineParams::new(
            cpus,
            mem.page_size,
            mem.l2.size_bytes(),
            mem.l2.associativity(),
        );
        group.bench_function(BenchmarkId::from_parameter(cpus), |b| {
            b.iter(|| generate_hints(black_box(&compiled.summary), black_box(&machine)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite_hints, bench_cpu_scaling);
criterion_main!(benches);
