//! Micro-benchmarks of the streaming trace engine: how fast can the
//! compiler's `OpSpec` generate reference streams? Before the `OpCursor`
//! rewrite this path allocated a fresh `Vec<TraceOp>` per loop iteration;
//! now it streams from a fixed scratch buffer, so the steady state is
//! allocation-free and these numbers measure pure generation work.
//!
//! Run with `cargo bench -p cdpc-bench --bench trace`. The harness is
//! `cdpc_obs::selfprof::time_iters` — warm-up iterations followed by timed
//! ones, mean-of-iterations reporting, no external dependencies.

use std::hint::black_box;

use cdpc_compiler::ir::AccessPattern;
use cdpc_compiler::locality::AccessPrefetch;
use cdpc_compiler::trace::{OpSpec, ResolvedAccess, TraceOp};
use cdpc_obs::selfprof::time_iters;

fn report(name: &str, ops_per_iter: u64, t: cdpc_obs::selfprof::Timing) {
    let ops_per_sec = t.iters_per_sec() * ops_per_iter as f64;
    println!(
        "{name:<28} {:>10.1} ns/op    {:>12.0} ops/s",
        t.secs_per_iter() * 1e9 / ops_per_iter as f64,
        ops_per_sec
    );
}

fn spec_with(accesses: Vec<ResolvedAccess>, iters: u64) -> OpSpec {
    OpSpec {
        lo: 0,
        hi: iters,
        total_iters: iters,
        accesses,
        work_per_iter: 100,
        code_base: 0x100_000,
        code_bytes: 256,
        granularity: 32,
        l2_line: 128,
        seed: 42,
    }
}

fn acc(pattern: AccessPattern, is_write: bool, prefetch: AccessPrefetch) -> ResolvedAccess {
    ResolvedAccess {
        base: 0x10_000,
        bytes: 64 << 10,
        pattern,
        is_write,
        prefetch,
    }
}

/// Drains a rewound cursor, folding ops into a checksum the optimizer
/// cannot remove. The cursor's scratch buffer is already warm, so the
/// timed region performs zero heap allocations.
fn drain_ops(spec: &OpSpec, name: &str) {
    let ops_per_drain = spec.ops().count() as u64;
    let mut cursor = spec.ops();
    cursor.by_ref().for_each(drop); // warm the scratch buffer
    let timing = time_iters(3, 50, || {
        cursor.rewind();
        let mut sum = 0u64;
        for op in cursor.by_ref() {
            sum = sum.wrapping_add(match op {
                TraceOp::Instr(n) => n,
                TraceOp::Load(a) | TraceOp::Store(a) | TraceOp::IFetch(a) => a.0,
                TraceOp::Prefetch { addr, .. } => addr.0,
            });
        }
        black_box(sum);
    });
    report(name, ops_per_drain, timing);
}

/// A partitioned write sweep: the cheapest common pattern.
fn bench_partitioned() {
    let spec = spec_with(
        vec![acc(
            AccessPattern::Partitioned { unit_bytes: 256 },
            true,
            AccessPrefetch::OFF,
        )],
        512,
    );
    drain_ops(&spec, "trace/partitioned");
}

/// A stencil read with software-pipelined prefetches: the op-richest
/// regular pattern (prologue issue + steady-state lookahead).
fn bench_stencil_prefetch() {
    let spec = spec_with(
        vec![acc(
            AccessPattern::Stencil {
                unit_bytes: 256,
                halo_units: 1,
                wraparound: true,
            },
            false,
            AccessPrefetch {
                enabled: true,
                lookahead: 2,
            },
        )],
        512,
    );
    drain_ops(&spec, "trace/stencil+prefetch");
}

/// All four generators at once — the mix the zero-allocation test pins.
fn bench_mixed() {
    let spec = spec_with(
        vec![
            acc(
                AccessPattern::Stencil {
                    unit_bytes: 256,
                    halo_units: 1,
                    wraparound: true,
                },
                false,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 2,
                },
            ),
            acc(
                AccessPattern::Partitioned { unit_bytes: 256 },
                true,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 0,
                },
            ),
            acc(AccessPattern::WholeArray, false, AccessPrefetch::OFF),
            acc(
                AccessPattern::Irregular {
                    touches_per_iter: 4,
                },
                true,
                AccessPrefetch::OFF,
            ),
        ],
        256,
    );
    drain_ops(&spec, "trace/mixed4");
}

fn main() {
    bench_partitioned();
    bench_stencil_prefetch();
    bench_mixed();
}
