//! Micro-benchmarks of the memory-hierarchy simulator itself: how fast can
//! it retire references? This bounds the wall-clock cost of every
//! experiment (the paper's equivalent concern: full-detail simulation of
//! SPEC95fp "would take more than one year").
//!
//! Run with `cargo bench -p cdpc-bench --bench memsim`. The harness is
//! `cdpc_obs::selfprof::time_iters` — warm-up iterations followed by timed
//! ones, mean-of-iterations reporting, no external dependencies.

use std::hint::black_box;

use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
use cdpc_obs::selfprof::time_iters;
use cdpc_vm::addr::{PhysAddr, VirtAddr};

fn small_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = cdpc_memsim::CacheConfig::new(128 << 10, 128, 1);
    m.l1d = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m
}

fn report(name: &str, refs_per_iter: u64, t: cdpc_obs::selfprof::Timing) {
    let refs_per_sec = t.iters_per_sec() * refs_per_iter as f64;
    println!(
        "{name:<28} {:>10.1} ns/ref   {:>12.0} refs/s",
        t.secs_per_iter() * 1e9 / refs_per_iter as f64,
        refs_per_sec
    );
}

/// Sequential streaming: mostly L1/L2 hits after the first lap.
fn bench_stream_hits() {
    const REFS: u64 = 10_000;
    let mut mem = MemorySystem::new(small_cfg(1));
    // Warm one line.
    mem.access(0, 0, VirtAddr(0), PhysAddr(0), AccessKind::Read);
    let mut t = 1000u64;
    let timing = time_iters(3, 20, || {
        for _ in 0..REFS {
            t += 1;
            black_box(mem.access(0, t, VirtAddr(8), PhysAddr(8), AccessKind::Read));
        }
    });
    report("memsim/stream/l1_hits", REFS, timing);

    let mut mem = MemorySystem::new(small_cfg(1));
    let mut t = 0u64;
    let timing = time_iters(3, 20, || {
        for i in 0..REFS {
            t += 10;
            let a = (i * 32) % (64 << 10);
            black_box(mem.access(0, t, VirtAddr(a), PhysAddr(a), AccessKind::Read));
        }
    });
    report("memsim/stream/l2_walk", REFS, timing);
}

/// Worst case: every reference misses and goes over the contended bus.
fn bench_miss_storm() {
    const REFS: u64 = 2_000;
    for cpus in [1usize, 4, 16] {
        let mut mem = MemorySystem::new(small_cfg(cpus));
        let mut t = 0u64;
        let mut addr = 0u64;
        let timing = time_iters(3, 20, || {
            for _ in 0..REFS {
                t += 50;
                addr += 128; // new line every time: guaranteed miss
                let cpu = (addr / 128) as usize % cpus;
                black_box(mem.access(cpu, t, VirtAddr(addr), PhysAddr(addr), AccessKind::Read));
            }
        });
        report(&format!("memsim/miss_storm/{cpus}p"), REFS, timing);
    }
}

/// Prefetch issue path, including slot management.
fn bench_prefetch() {
    const OPS: u64 = 2_000;
    let mut mem = MemorySystem::new(small_cfg(1));
    // Map the TLB entry by touching the page first.
    mem.access(0, 0, VirtAddr(0), PhysAddr(0), AccessKind::Read);
    let mut t = 1_000u64;
    let mut addr = 0u64;
    let timing = time_iters(3, 20, || {
        for _ in 0..OPS {
            t += 300;
            addr = (addr + 128) % 4096; // stay in the mapped page
            black_box(mem.prefetch(0, t, VirtAddr(addr), PhysAddr(addr), false));
        }
    });
    report("memsim/prefetch/issue", OPS, timing);
}

fn main() {
    bench_stream_hits();
    bench_miss_storm();
    bench_prefetch();
}
