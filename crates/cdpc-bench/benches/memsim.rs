//! Micro-benchmarks of the memory-hierarchy simulator itself: how fast can
//! it retire references? This bounds the wall-clock cost of every
//! experiment (the paper's equivalent concern: full-detail simulation of
//! SPEC95fp "would take more than one year").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
use cdpc_vm::addr::{PhysAddr, VirtAddr};

fn small_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = cdpc_memsim::CacheConfig::new(128 << 10, 128, 1);
    m.l1d = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m
}

/// Sequential streaming: mostly L1/L2 hits after the first lap.
fn bench_stream_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim/stream");
    const REFS: u64 = 10_000;
    group.throughput(Throughput::Elements(REFS));
    group.bench_function("l1_hits", |b| {
        let mut mem = MemorySystem::new(small_cfg(1));
        // Warm one line.
        mem.access(0, 0, VirtAddr(0), PhysAddr(0), AccessKind::Read);
        let mut t = 1000u64;
        b.iter(|| {
            for _ in 0..REFS {
                t += 1;
                black_box(mem.access(0, t, VirtAddr(8), PhysAddr(8), AccessKind::Read));
            }
        })
    });
    group.bench_function("l2_walk", |b| {
        let mut mem = MemorySystem::new(small_cfg(1));
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..REFS {
                t += 10;
                let a = (i * 32) % (64 << 10);
                black_box(mem.access(0, t, VirtAddr(a), PhysAddr(a), AccessKind::Read));
            }
        })
    });
    group.finish();
}

/// Worst case: every reference misses and goes over the contended bus.
fn bench_miss_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim/miss_storm");
    const REFS: u64 = 2_000;
    group.throughput(Throughput::Elements(REFS));
    for cpus in [1usize, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(cpus), |b| {
            let mut mem = MemorySystem::new(small_cfg(cpus));
            let mut t = 0u64;
            let mut addr = 0u64;
            b.iter(|| {
                for _ in 0..REFS {
                    t += 50;
                    addr += 128; // new line every time: guaranteed miss
                    let cpu = (addr / 128) as usize % cpus;
                    black_box(mem.access(
                        cpu,
                        t,
                        VirtAddr(addr),
                        PhysAddr(addr),
                        AccessKind::Read,
                    ));
                }
            })
        });
    }
    group.finish();
}

/// Prefetch issue path, including slot management.
fn bench_prefetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim/prefetch");
    const OPS: u64 = 2_000;
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("issue", |b| {
        let mut mem = MemorySystem::new(small_cfg(1));
        // Map the TLB entry by touching the page first.
        mem.access(0, 0, VirtAddr(0), PhysAddr(0), AccessKind::Read);
        let mut t = 1_000u64;
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..OPS {
                t += 300;
                addr = (addr + 128) % 4096; // stay in the mapped page
                black_box(mem.prefetch(0, t, VirtAddr(addr), PhysAddr(addr), false));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_hits, bench_miss_storm, bench_prefetch);
criterion_main!(benches);
