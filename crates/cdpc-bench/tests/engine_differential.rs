//! Differential proof that the epoch-parallel engine is **bit-identical**
//! to the serial min-clock-batching scheduler.
//!
//! Every test runs the same compiled workload twice — once with
//! `sim_threads = 1` (the serial scheduler, the audited reference) and
//! once through the engine — and demands *exact* equality of everything
//! observable: the full [`RunReport`] (every counter, stall class, bus
//! figure, and per-CPU stat), rendered JSON exports, attribution tensors,
//! and interval series. Not "close": identical, across the whole SPEC95fp
//! suite, CPU counts from 1 to 16, and every probe family.
//!
//! Scale 64 matches the CI convention of `predict_validation.rs`; the
//! data:cache ratios (and therefore the miss mix the engine must get
//! right — cold, capacity, conflict, true/false sharing, upgrades,
//! prefetch interactions) are preserved by construction.

use cdpc_analyze::SanitizerProbe;
use cdpc_bench::{Preset, Setup};
use cdpc_machine::{
    attribution_probe, attribution_to_json, report_to_json, run, run_observed, PolicyKind,
    RunReport,
};
use cdpc_obs::{CountingProbe, NullProbe};
use cdpc_workloads::by_name;

const SCALE: u64 = 64;

/// Builds the (compiled program, serial config) pair for one benchmark.
fn job(
    name: &str,
    cpus: usize,
    policy: PolicyKind,
    prefetch: bool,
) -> (
    std::sync::Arc<cdpc_compiler::CompiledProgram>,
    cdpc_machine::RunConfig,
) {
    let setup = Setup::with_scale(SCALE);
    let bench = by_name(name).expect("workload exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, prefetch, true);
    let cfg = cdpc_machine::RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), policy);
    (compiled, cfg)
}

/// Asserts serial and engine runs of `name` agree exactly, for the given
/// simulated-CPU and sim-thread counts. Compares both the structured
/// report and its rendered JSON (belt and suspenders: JSON catches any
/// field a future `PartialEq` derive might skip).
fn assert_bit_identical(name: &str, cpus: usize, sim_threads: usize, prefetch: bool) {
    let (compiled, mut cfg) = job(name, cpus, PolicyKind::Cdpc, prefetch);
    let serial = run(&compiled, &cfg);
    cfg.sim_threads = sim_threads;
    let engine = run(&compiled, &cfg);
    assert_reports_eq(&serial, &engine, name, cpus, sim_threads);
}

fn assert_reports_eq(serial: &RunReport, engine: &RunReport, name: &str, cpus: usize, st: usize) {
    assert_eq!(
        serial, engine,
        "{name} diverges at {cpus} CPUs with sim_threads={st}"
    );
    assert_eq!(
        report_to_json(serial).to_string_pretty(),
        report_to_json(engine).to_string_pretty(),
        "{name} JSON diverges at {cpus} CPUs with sim_threads={st}"
    );
}

/// The whole SPEC95fp suite at the paper's 8-CPU configuration, engine at
/// 4 sim-threads, prefetching on (the hazard-heavy path).
#[test]
fn full_suite_8p_par4() {
    for bench in cdpc_workloads::all() {
        assert_bit_identical(bench.name, 8, 4, true);
    }
}

/// CPU-count matrix on the headline workload: 1 CPU (engine ineligible —
/// must silently fall back), 4, 8, and 16 CPUs, at 2 and 4 sim-threads,
/// with and without prefetching.
#[test]
fn tomcatv_cpu_matrix() {
    for cpus in [1usize, 4, 8, 16] {
        for sim_threads in [2usize, 4] {
            assert_bit_identical("tomcatv", cpus, sim_threads, false);
            assert_bit_identical("tomcatv", cpus, sim_threads, true);
        }
    }
}

/// More sim-threads than simulated CPUs (workers clamp to the CPU count)
/// and an oversubscribed pool must both stay exact.
#[test]
fn swim_thread_oversubscription() {
    assert_bit_identical("swim", 4, 8, true);
    assert_bit_identical("swim", 8, 16, false);
}

/// Every page-mapping policy the engine supports (dynamic recoloring is
/// excluded by eligibility and must fall back bit-identically).
#[test]
fn hydro2d_policy_matrix() {
    for policy in [
        PolicyKind::Cdpc,
        PolicyKind::PageColoring,
        PolicyKind::BinHopping,
        PolicyKind::CdpcTouch,
        PolicyKind::DynamicRecolor,
    ] {
        let (compiled, mut cfg) = job("hydro2d", 8, policy, true);
        let serial = run(&compiled, &cfg);
        cfg.sim_threads = 4;
        let engine = run(&compiled, &cfg);
        assert_reports_eq(&serial, &engine, "hydro2d", 8, 4);
    }
}

/// The event-counting probe sees exactly the same event stream (counts of
/// accesses, classified misses, faults, flushes, prefetch events, ...).
#[test]
fn counting_probe_identical() {
    for name in ["tomcatv", "applu"] {
        let (compiled, mut cfg) = job(name, 8, PolicyKind::Cdpc, true);
        let mut serial_probe = CountingProbe::default();
        let (serial, _) = run_observed(&compiled, &cfg, &mut serial_probe, None);
        cfg.sim_threads = 4;
        let mut engine_probe = CountingProbe::default();
        let (engine, _) = run_observed(&compiled, &cfg, &mut engine_probe, None);
        assert_reports_eq(&serial, &engine, name, 8, 4);
        assert_eq!(serial_probe, engine_probe, "{name} probe counters diverge");
    }
}

/// The attribution probe — the one batch-sensitive probe — produces an
/// identical `(array × color × cpu × class)` tensor, batch and gap
/// histograms, and occupancy series (compared through its full JSON
/// rendering, which serializes all of them).
#[test]
fn attribution_identical() {
    for name in ["tomcatv", "su2cor"] {
        let (compiled, mut cfg) = job(name, 8, PolicyKind::Cdpc, true);
        let mut serial_probe = attribution_probe(&compiled, &cfg);
        let (serial, _) = run_observed(&compiled, &cfg, &mut serial_probe, None);
        cfg.sim_threads = 4;
        let mut engine_probe = attribution_probe(&compiled, &cfg);
        let (engine, _) = run_observed(&compiled, &cfg, &mut engine_probe, None);
        assert_reports_eq(&serial, &engine, name, 8, 4);
        let names = compiled.array_names();
        assert_eq!(
            attribution_to_json(&serial_probe, &names, &serial).to_string_pretty(),
            attribution_to_json(&engine_probe, &names, &engine).to_string_pretty(),
            "{name} attribution diverges under the engine"
        );
    }
}

/// The fail-fast MESI sanitizer holds under the engine (it would panic on
/// any coherence invariant the hazard serialization broke), and the
/// report still matches the serial run exactly.
#[test]
fn sanitizer_under_engine() {
    let (compiled, mut cfg) = job("tomcatv", 8, PolicyKind::Cdpc, true);
    cfg.validate_coherence = true;
    let mut serial_probe = SanitizerProbe::new(8);
    let (serial, _) = run_observed(&compiled, &cfg, &mut serial_probe, None);
    cfg.sim_threads = 4;
    let mut engine_probe = SanitizerProbe::new(8);
    let (engine, _) = run_observed(&compiled, &cfg, &mut engine_probe, None);
    assert_reports_eq(&serial, &engine, "tomcatv", 8, 4);
}

/// Interval sampling: the measured pass stays serial (the sampler is
/// order-sensitive by nature), but the engine-warmed state feeding it
/// must be exact — the CSV must match byte for byte.
#[test]
fn sampled_series_identical() {
    let (compiled, mut cfg) = job("mgrid", 8, PolicyKind::Cdpc, false);
    let (serial, serial_series) = run_observed(&compiled, &cfg, &mut NullProbe, Some(50_000));
    cfg.sim_threads = 4;
    let (engine, engine_series) = run_observed(&compiled, &cfg, &mut NullProbe, Some(50_000));
    assert_reports_eq(&serial, &engine, "mgrid", 8, 4);
    assert_eq!(
        serial_series.expect("sampling on").to_csv(),
        engine_series.expect("sampling on").to_csv(),
        "interval series diverges under the engine"
    );
}
