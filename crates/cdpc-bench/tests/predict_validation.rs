//! Cross-validation of the static conflict prover against the simulator:
//! the zero-false-negative guarantee on the paper's headline workloads,
//! and the fix-it round trip (a pad the prover proposes must remove the
//! conflict in *both* the prover's equations and the simulation).

use std::collections::BTreeSet;

use cdpc_analyze::{predict_program, FixIt, MachineModel, ProverPolicy};
use cdpc_bench::{Preset, Setup};
use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{diff_prediction, run, run_attributed, PolicyKind, RunConfig};
use cdpc_memsim::{CacheConfig, MemConfig};

const CPUS: usize = 4;
const SCALE: u64 = 64;

/// Prover + attribution oracle for one workload at the CI scale; returns
/// the diff so each test can assert its own angle.
fn validate(name: &str) -> cdpc_machine::PredictionDiff {
    let setup = Setup::with_scale(SCALE);
    let bench = cdpc_workloads::by_name(name).expect("workload exists");
    let program = (bench.build)(setup.workload_scale());
    let mem = setup.scaled_mem(Preset::Base1MbDm, CPUS);
    let mut opts = CompileOptions::new(CPUS).with_l2_cache(mem.l2.size_bytes() as u64);
    opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;

    let (pred, _) = predict_program(
        &program,
        &opts,
        &MachineModel::from_mem(&mem),
        ProverPolicy::PageColoring,
    );
    let compiled = compile(&program, &opts).expect("compiles");
    let (_, probe) = run_attributed(&compiled, &RunConfig::new(mem, PolicyKind::PageColoring));
    diff_prediction(&pred.cells, &probe)
}

#[test]
fn tomcatv_has_zero_false_negatives() {
    let diff = validate("tomcatv");
    assert!(
        !diff.oracle_cells.is_empty(),
        "tomcatv must show conflicts under page coloring at scale 64"
    );
    assert!(diff.sound(), "missed cells: {:?}", diff.missed);
    assert_eq!(diff.recall(), 1.0);
}

#[test]
fn swim_has_zero_false_negatives() {
    let diff = validate("swim");
    assert!(!diff.oracle_cells.is_empty());
    assert!(diff.sound(), "missed cells: {:?}", diff.missed);
    assert_eq!(diff.recall(), 1.0);
}

#[test]
fn su2cor_has_zero_false_negatives() {
    let diff = validate("su2cor");
    assert!(!diff.oracle_cells.is_empty());
    assert!(diff.sound(), "missed cells: {:?}", diff.missed);
    assert_eq!(diff.recall(), 1.0);
}

/// The acceptance round trip: on a program where the prover predicts a
/// conflict and proposes a pad, applying the pad must (a) make the prover
/// prove the program conflict-free and (b) drive the simulator's conflict
/// misses to zero.
#[test]
fn pad_fixit_removes_the_conflict_in_prover_and_simulator() {
    // Two 16 KB arrays on a 2-CPU, 8-color, 32 KB direct-mapped machine:
    // A covers colors {0..3}, B {4..7}, and the code page lands on color 1,
    // colliding with A's second page on CPU 0 (see the prover's unit tests
    // for the page arithmetic). Small L1s keep the data stream reaching
    // the L2 so the collision actually costs misses.
    let mut mem = MemConfig::paper_base(2);
    mem.l2 = CacheConfig::new(32 << 10, 128, 1);
    mem.l1d = CacheConfig::new(4 << 10, 32, 2);
    mem.l1i = CacheConfig::new(4 << 10, 32, 2);
    let machine = MachineModel::from_mem(&mem);
    let opts = CompileOptions::new(2).with_l2_cache(mem.l2.size_bytes() as u64);

    let build = |pad_array: Option<(&str, u64)>| {
        let mut p = Program::new("pad-roundtrip");
        let a = p.array("A", 16 << 10);
        let b = p.array("B", 16 << 10);
        if let Some((name, pages)) = pad_array {
            let idx = p.arrays.iter().position(|d| d.name == name).unwrap();
            p.arrays[idx].bytes += pages * 4096;
        }
        let sweep = |nm: &str, arr| Stmt {
            kind: StmtKind::Parallel,
            nest: LoopNest::new(nm, 16, 500).with_access(Access::write(
                arr,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            )),
        };
        p.phase(Phase {
            name: "steady".into(),
            stmts: vec![sweep("sa", a), sweep("sb", b)],
            count: 4,
        });
        p
    };

    // Before: the prover predicts the conflict and proposes a pad...
    let before = build(None);
    let (pred, report) = predict_program(&before, &opts, &machine, ProverPolicy::PageColoring);
    assert!(!pred.proven_free, "unpadded layout must collide");
    let (array, pad_pages) = report
        .diagnostics
        .iter()
        .flat_map(|d| d.fixits.iter())
        .find_map(|f| match f {
            FixIt::PadArray { array, pad_pages } => Some((array.clone(), *pad_pages)),
            _ => None,
        })
        .expect("prover proposes a verified pad");

    // ...and the simulator confirms: conflict misses land inside the
    // predicted cells (soundness on this microprogram too).
    let compiled = compile(&before, &opts).expect("compiles");
    let cfg = RunConfig::new(mem.clone(), PolicyKind::PageColoring);
    let sim = run(&compiled, &cfg);
    assert!(
        sim.stalls.conflict > 0,
        "the predicted collision must cost simulated conflict misses"
    );
    let (_, probe) = run_attributed(&compiled, &cfg);
    let diff = diff_prediction(&pred.cells, &probe);
    assert!(diff.sound(), "missed cells: {:?}", diff.missed);

    // After: the same pad, applied to the source program, satisfies both
    // the prover and the simulator.
    let after = build(Some((array.as_str(), pad_pages)));
    let (pred2, _) = predict_program(&after, &opts, &machine, ProverPolicy::PageColoring);
    assert!(pred2.proven_free, "prover: pad removes every overload");
    assert_eq!(pred2.cells, BTreeSet::new());
    let compiled2 = compile(&after, &opts).expect("compiles");
    let sim2 = run(&compiled2, &cfg);
    assert_eq!(
        sim2.stalls.conflict, 0,
        "simulator: padded layout has no conflict misses"
    );
}
