//! Differential proof that the memoization layer is **bit-identical** to
//! fresh serial simulation across the whole SPEC95fp suite × CPU counts ×
//! policies.
//!
//! The same job list is executed four ways — plain [`run_sweep`] (the
//! audited baseline), [`run_sweep_memo`] without a cache (in-sweep dedup +
//! checkpoint forking), a cold persistent cache (simulate + store), and a
//! warm persistent cache (every job answered from disk) — and every way
//! must produce *exactly* the same bytes in all three rendered artifacts:
//! the structured [`RunReport`]s, their JSON exports, and a CSV table of
//! every report field the figures consume. Not "close": identical.

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{
    render_report, report_to_json, run_sweep, run_sweep_memo, PolicyKind, ResultCache, RunReport,
    SweepJob,
};

const SCALE: u64 = 64;
const THREADS: usize = 4;

/// Suite × CPU counts × policies, plus renamed-content twins that force
/// the warm-checkpoint fork path, plus the remaining policy families on
/// one workload.
fn suite_jobs(setup: &Setup) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for bench in cdpc_workloads::all() {
        for cpus in [4usize, 8] {
            for policy in [PolicyKind::PageColoring, PolicyKind::Cdpc] {
                jobs.push(setup.job(&bench, Preset::Base1MbDm, cpus, policy, false, true));
            }
        }
    }
    // Same content, different report name: these share a warm key with
    // their originals and must fork from one checkpoint.
    for (i, job) in suite_jobs_fork_seeds(&jobs) {
        let mut renamed = (*jobs[i].compiled).clone();
        renamed.name = format!("{}-renamed", renamed.name);
        jobs.push(SweepJob::new(renamed, job));
    }
    // Policy families not in the main matrix.
    let bench = cdpc_workloads::by_name("hydro2d").expect("exists");
    for policy in [
        PolicyKind::BinHopping,
        PolicyKind::CdpcTouch,
        PolicyKind::DynamicRecolor,
    ] {
        jobs.push(setup.job(&bench, Preset::Base1MbDm, 4, policy, false, true));
    }
    jobs
}

/// Picks two jobs to twin under a new name (first and last of the matrix,
/// so both CPU counts are covered), returning `(index, cfg)` pairs.
fn suite_jobs_fork_seeds(jobs: &[SweepJob]) -> Vec<(usize, cdpc_machine::RunConfig)> {
    vec![
        (0, jobs[0].cfg.clone()),
        (jobs.len() - 1, jobs[jobs.len() - 1].cfg.clone()),
    ]
}

/// One CSV row per report: every scalar field a figure or table reads.
fn to_csv(reports: &[RunReport]) -> String {
    let mut out = String::from(
        "name,policy,cpus,instructions,exec_cycles,elapsed_cycles,combined_cycles,\
         l2_hit,conflict,capacity,cold,true_sharing,false_sharing,prefetch,upgrade,\
         kernel,load_imbalance,sequential,suppressed,synchronization,\
         bus_data,bus_writeback,bus_upgrade,bus_utilization_bits,\
         faults,honored,fallback,recolorings,simulated_refs\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.name,
            r.policy,
            r.num_cpus,
            r.instructions,
            r.exec_cycles,
            r.elapsed_cycles,
            r.combined_cycles,
            r.stalls.l2_hit,
            r.stalls.conflict,
            r.stalls.capacity,
            r.stalls.cold,
            r.stalls.true_sharing,
            r.stalls.false_sharing,
            r.stalls.prefetch,
            r.stalls.upgrade,
            r.overheads.kernel,
            r.overheads.load_imbalance,
            r.overheads.sequential,
            r.overheads.suppressed,
            r.overheads.synchronization,
            r.bus.data_cycles,
            r.bus.writeback_cycles,
            r.bus.upgrade_cycles,
            r.bus.utilization.to_bits(),
            r.fault_stats.faults,
            r.fault_stats.honored,
            r.fault_stats.fallback,
            r.recolorings,
            r.simulated_refs,
        ));
    }
    out
}

/// Renders all three artifacts for a result set.
fn artifacts(reports: &[RunReport]) -> (String, String, String) {
    let text: String = reports.iter().map(render_report).collect();
    let json: String = reports
        .iter()
        .map(|r| report_to_json(r).to_string_pretty())
        .collect();
    (text, json, to_csv(reports))
}

#[test]
fn memoized_sweeps_are_byte_identical_to_fresh_serial_runs() {
    let setup = Setup::with_scale(SCALE);
    let jobs = suite_jobs(&setup);
    let dir = std::env::temp_dir().join(format!("cdpc-memo-diff-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = ResultCache::new(&dir);

    // The audited baseline: plain sweep, no memoization anywhere.
    let baseline = run_sweep(&jobs, THREADS);
    let (base_text, base_json, base_csv) = artifacts(&baseline);

    // Dedup + checkpoint forking, no persistent cache.
    let (forked, forked_stats) = run_sweep_memo(&jobs, THREADS, None);
    assert!(forked_stats.forked >= 2, "the renamed twins must fork");
    assert_eq!(baseline, forked, "forked sweep reports diverge");

    // Cold cache: simulate everything, store everything.
    let (cold, cold_stats) = run_sweep_memo(&jobs, THREADS, Some(&cache));
    assert_eq!(cold_stats.hits, 0, "cache starts empty");
    assert_eq!(cold_stats.misses, jobs.len() as u64);
    assert_eq!(baseline, cold, "cold cached sweep reports diverge");

    // Warm cache: every job answered from disk, zero simulation.
    let (warm, warm_stats) = run_sweep_memo(&jobs, THREADS, Some(&cache));
    assert_eq!(warm_stats.misses, 0, "warm pass must hit on every job");
    assert_eq!(warm_stats.hits, jobs.len() as u64);
    assert_eq!(baseline, warm, "warm cached sweep reports diverge");

    // Byte-identity of every rendered artifact, for every path.
    for (label, reports) in [("forked", &forked), ("cold", &cold), ("warm", &warm)] {
        let (text, json, csv) = artifacts(reports);
        assert_eq!(base_text, text, "{label}: rendered report text diverges");
        assert_eq!(base_json, json, "{label}: JSON export diverges");
        assert_eq!(base_csv, csv, "{label}: CSV table diverges");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The memoized path must also be independent of the worker-thread count,
/// like the plain sweep (the checkpoint groups repartition the work).
#[test]
fn memoized_sweep_is_thread_count_invariant() {
    let setup = Setup::with_scale(SCALE);
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let mut jobs = Vec::new();
    for cpus in [4usize, 8] {
        for policy in [PolicyKind::PageColoring, PolicyKind::Cdpc] {
            jobs.push(setup.job(&bench, Preset::Base1MbDm, cpus, policy, false, true));
        }
    }
    let mut renamed = (*jobs[0].compiled).clone();
    renamed.name = "tomcatv-twin".to_string();
    jobs.push(SweepJob::new(renamed, jobs[0].cfg.clone()));

    let (one, _) = run_sweep_memo(&jobs, 1, None);
    for threads in [2usize, 4, 8] {
        let (many, _) = run_sweep_memo(&jobs, threads, None);
        assert_eq!(one, many, "threads={threads}");
    }
}
