//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper (see `DESIGN.md` section 4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin fig6
//! cargo run --release -p cdpc-bench --bin fig6 -- --scale 4   # bigger machine
//! ```
//!
//! All experiments accept `--scale <power-of-two>` (default 8): data sets,
//! caches, and TLBs shrink together, preserving every data:cache ratio
//! while keeping runs fast (the paper faces the same wall — full-detail
//! SPEC95fp simulation "would take more than one year" — and answers with
//! representative execution windows; we window *and* scale).
//!
//! Every experiment also accepts the observability flags (see
//! [`ObsOptions`]): `--json <path>` exports every run report as JSON,
//! `--trace <path>` writes a Chrome-trace-event timeline loadable in
//! Perfetto, `--series <path>` writes an interval-metrics CSV, and
//! `--sample-interval <cycles>` sets the series' window length.
//! `--attrib <path>` writes a per-array/per-color miss-attribution JSON
//! report plus a self-contained HTML rendering next to it, and `--top`
//! prints the attribution's terminal summary after each run. The
//! dedicated `attrib` binary runs a single benchmark with attribution on.
//!
//! Two analysis flags hook in the `cdpc-analyze` crate: `--lint` runs the
//! static lints on every compiled workload (failing on unallowed `Error`
//! diagnostics), and `--sanitize` shadows every simulation with the
//! fail-fast MESI coherence sanitizer. The standalone `analyze` binary
//! lints the whole workload suite and emits a JSON report.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cdpc_analyze::SanitizerProbe;
use cdpc_compiler::ir::Program;
use cdpc_compiler::{compile, CompileOptions, CompiledProgram};
use cdpc_machine::{
    attribution_probe, attribution_to_html, attribution_to_json, render_attribution_top,
    report_to_json, run_observed, run_sweep_memo, sweep_map, thread_budget, PolicyKind,
    ResultCache, RunConfig, RunReport, SchedulerKind, SweepJob,
};
use cdpc_memsim::{CacheConfig, MemConfig};
use cdpc_obs::{AttributionProbe, IntervalSeries, JsonValue, TraceProbe};
use cdpc_workloads::spec::Scale;
use cdpc_workloads::Benchmark;

/// The machine presets used by the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// 1 MB direct-mapped external cache (base SimOS machine, Figures 2-6).
    Base1MbDm,
    /// 1 MB two-way set-associative external cache (Figure 7 left).
    TwoWay1Mb,
    /// 4 MB direct-mapped external cache (Figure 7 right).
    FourMbDm,
    /// AlphaServer 8400: 350 MHz CPUs, 4 MB direct-mapped (Figure 9,
    /// Table 2).
    Alpha,
}

impl Preset {
    /// The unscaled memory configuration for `cpus` processors.
    pub fn mem(self, cpus: usize) -> MemConfig {
        match self {
            Preset::Base1MbDm => MemConfig::paper_base(cpus),
            Preset::TwoWay1Mb => MemConfig::paper_2way(cpus),
            Preset::FourMbDm => MemConfig::paper_4mb(cpus),
            Preset::Alpha => MemConfig::alphaserver(cpus),
        }
    }
}

/// Window length used for `--series` when `--sample-interval` is absent.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 10_000;

const FLAG_USAGE: &str = "supported flags: --scale N, --full, --threads N (0 = auto), \
                          --sim-threads N (0 = auto), --cache <dir>, --no-cache, \
                          --lint, --sanitize, --predict <path>, --sarif <path>, \
                          --scheduler batch|heap, --json <path>, --trace <path>, \
                          --series <path>, --sample-interval <cycles>, --attrib <path>, --top";

/// Observability outputs requested on the command line, shared by every
/// experiment binary via [`Setup::from_args`].
///
/// One binary invocation may execute many simulation runs (a figure sweeps
/// benchmarks × policies). The JSON file is rewritten after every run with
/// all reports so far (`{"runs": [...]}`); trace and series files are
/// written per run, with a `-N` suffix inserted before the extension for
/// runs after the first.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// `--json <path>`: run reports as one JSON document.
    pub json: Option<PathBuf>,
    /// `--trace <path>`: Chrome-trace-event timeline (load in Perfetto or
    /// `chrome://tracing`).
    pub trace: Option<PathBuf>,
    /// `--series <path>`: interval-metrics CSV time series.
    pub series: Option<PathBuf>,
    /// `--sample-interval <cycles>`: window length for interval sampling
    /// ([`DEFAULT_SAMPLE_INTERVAL`] when only `--series` is given).
    pub sample_interval: Option<u64>,
    /// `--attrib <path>`: per-array/per-color miss-attribution report.
    /// Writes the JSON document at `path` and a self-contained HTML
    /// rendering next to it (same stem, `.html` extension).
    pub attrib: Option<PathBuf>,
    /// `--top`: print a terminal miss-attribution summary (totals by
    /// class, worst `(array, color)` conflict cells, histograms) after
    /// each run. Implies attribution collection even without `--attrib`.
    pub top: bool,
    /// Reports exported so far in this process (backs the JSON document).
    reports: RefCell<Vec<JsonValue>>,
    /// Runs recorded so far in this process (numbers the output files).
    runs: Cell<usize>,
}

impl PartialEq for ObsOptions {
    fn eq(&self, other: &Self) -> bool {
        self.json == other.json
            && self.trace == other.trace
            && self.series == other.series
            && self.sample_interval == other.sample_interval
            && self.attrib == other.attrib
            && self.top == other.top
    }
}

impl Eq for ObsOptions {}

impl ObsOptions {
    /// True when any observability output was requested — the signal for
    /// [`Setup::run_bench`] to switch from `run` to `run_observed`.
    pub fn active(&self) -> bool {
        self.json.is_some() || self.probes_needed()
    }

    /// True when an output needs an in-simulation observer (probe or
    /// sampler). `--json` alone does *not*: the JSON document is rendered
    /// from the finished [`RunReport`]s, so those runs stay eligible for
    /// the memoized sweep and the persistent result cache.
    pub fn probes_needed(&self) -> bool {
        self.trace.is_some()
            || self.series.is_some()
            || self.sample_interval.is_some()
            || self.attribution()
    }

    /// True when miss attribution should be collected (`--attrib` or
    /// `--top`).
    pub fn attribution(&self) -> bool {
        self.attrib.is_some() || self.top
    }

    /// The sampling window to run with, if interval sampling applies.
    pub fn sampling(&self) -> Option<u64> {
        match (self.sample_interval, &self.series) {
            (Some(n), _) => Some(n),
            (None, Some(_)) => Some(DEFAULT_SAMPLE_INTERVAL),
            (None, None) => None,
        }
    }

    /// Records one finished run: extends and rewrites the JSON document,
    /// and writes this run's series CSV, trace, and attribution files.
    /// `attrib` pairs the run's attribution probe with the array names of
    /// the compiled program it observed.
    pub fn record(
        &self,
        report: &RunReport,
        series: Option<&IntervalSeries>,
        trace: Option<&TraceProbe>,
        attrib: Option<(&AttributionProbe, &[String])>,
    ) {
        let idx = self.runs.get();
        self.runs.set(idx + 1);
        if let Some(path) = &self.json {
            self.reports.borrow_mut().push(report_to_json(report));
            let mut doc = JsonValue::object();
            doc.push("runs", JsonValue::Array(self.reports.borrow().clone()));
            write_text(path, &doc.to_string_pretty());
        }
        if let (Some(path), Some(series)) = (&self.series, series) {
            write_text(&numbered(path, idx), &series.to_csv());
        }
        if let (Some(path), Some(trace)) = (&self.trace, trace) {
            write_text(&numbered(path, idx), &trace.to_chrome_trace());
        }
        if let Some((probe, names)) = attrib {
            let doc = attribution_to_json(probe, names, report);
            if self.top {
                print!("{}", render_attribution_top(&doc, 10));
            }
            if let Some(path) = &self.attrib {
                let path = numbered(path, idx);
                write_text(&path, &doc.to_string_pretty());
                write_text(&path.with_extension("html"), &attribution_to_html(&doc));
            }
        }
    }
}

/// `path` for run 0, `stem-N.ext` for later runs.
fn numbered(path: &Path, idx: usize) -> PathBuf {
    if idx == 0 {
        return path.to_path_buf();
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-{idx}.{ext}"),
        None => format!("{stem}-{idx}"),
    };
    path.with_file_name(name)
}

fn write_text(path: &Path, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write `{}`: {e}", path.display()));
}

/// One experiment configuration: scale, observability outputs, and derived
/// machine parameters.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Power-of-two divisor applied to data sets, caches, and TLBs.
    pub scale: u64,
    /// Worker threads for [`run_jobs`](Self::run_jobs) (`--threads N`;
    /// defaults to the host's available parallelism). Reports are
    /// bit-identical for every value.
    pub threads: usize,
    /// Intra-run engine threads (`--sim-threads N`; default 1 = the
    /// serial scheduler). Values above 1 run each simulation through the
    /// epoch-parallel engine, which is bit-identical to the serial path.
    /// Composes with `threads`: [`run_jobs`](Self::run_jobs) divides the
    /// job fan-out by `sim_threads` ([`thread_budget`]) so the two levels
    /// never oversubscribe the host.
    pub sim_threads: usize,
    /// Observability outputs for [`run_bench`](Self::run_bench).
    pub obs: ObsOptions,
    /// `--lint`: run the `cdpc-analyze` static lints on every program
    /// compiled through [`compile_bench`](Self::compile_bench), printing
    /// diagnostics and panicking on unallowed `Error`s.
    pub lint: bool,
    /// `--sanitize`: shadow every simulation with a
    /// [`SanitizerProbe`](cdpc_analyze::SanitizerProbe) (fail-fast MESI
    /// invariant checks) and validate coherence at phase boundaries.
    pub sanitize: bool,
    /// `--scheduler batch|heap`: run-loop interleaving discipline. The
    /// per-op `heap` reference path produces bit-identical reports — this
    /// flag exists for debugging and A/B timing, not for changing results.
    pub scheduler: SchedulerKind,
    /// `--predict <path>`: where the `predict` binary writes its
    /// prediction-vs-simulation JSON report (other binaries parse but
    /// ignore the flag, so one flag vocabulary serves the whole suite).
    pub predict: Option<PathBuf>,
    /// `--sarif <path>`: where analysis binaries export their diagnostics
    /// as a SARIF 2.1.0 log.
    pub sarif: Option<PathBuf>,
    /// `--cache <dir>` (or the `CDPC_CACHE_DIR` environment variable):
    /// root of the persistent content-addressed result cache consulted by
    /// [`run_jobs`](Self::run_jobs) for jobs without observation
    /// side-effects. `--no-cache` clears it. `None` (the default) keeps
    /// everything in-process.
    pub cache: Option<PathBuf>,
    /// Per-setup compilation memo: each `(benchmark, preset, cpus,
    /// prefetch, aligned)` cell compiles once per process and every sweep
    /// point that runs it shares the `Arc`.
    compiled: RefCell<HashMap<String, Arc<CompiledProgram>>>,
}

impl PartialEq for Setup {
    fn eq(&self, other: &Self) -> bool {
        // The compilation memo is a derived cache, not configuration.
        self.scale == other.scale
            && self.threads == other.threads
            && self.sim_threads == other.sim_threads
            && self.obs == other.obs
            && self.lint == other.lint
            && self.sanitize == other.sanitize
            && self.scheduler == other.scheduler
            && self.predict == other.predict
            && self.sarif == other.sarif
            && self.cache == other.cache
    }
}

impl Eq for Setup {}

impl Default for Setup {
    fn default() -> Self {
        Setup::with_scale(8)
    }
}

impl Setup {
    /// A setup at the given scale with no observability outputs.
    pub fn with_scale(scale: u64) -> Self {
        Setup {
            scale,
            threads: cdpc_machine::default_threads(),
            sim_threads: 1,
            obs: ObsOptions::default(),
            lint: false,
            sanitize: false,
            scheduler: SchedulerKind::default(),
            predict: None,
            sarif: None,
            cache: None,
            compiled: RefCell::new(HashMap::new()),
        }
    }

    /// Parses the shared flags (`--scale N`, `--full`, and the
    /// [`ObsOptions`] flags) from command-line arguments; defaults to
    /// scale 8.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or unknown arguments.
    pub fn from_args() -> Self {
        let (setup, positional) = Self::from_args_with_positionals();
        if let Some(first) = positional.first() {
            panic!("unknown argument `{first}` ({FLAG_USAGE})");
        }
        setup
    }

    /// Like [`from_args`](Self::from_args), but collects non-flag
    /// arguments for binaries with positional parameters (e.g. `inspect`).
    pub fn from_args_with_positionals() -> (Self, Vec<String>) {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut setup = Setup {
            // Ambient cache root, overridable by --cache / --no-cache below.
            cache: std::env::var_os("CDPC_CACHE_DIR").map(PathBuf::from),
            ..Setup::default()
        };
        let mut positional = Vec::new();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value ({FLAG_USAGE})"))
                .clone()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let v = value(&args, i, "--scale")
                        .parse::<u64>()
                        .unwrap_or_else(|_| panic!("--scale needs a power-of-two value"));
                    assert!(v.is_power_of_two(), "--scale must be a power of two");
                    setup.scale = v;
                    i += 2;
                }
                "--full" => {
                    setup.scale = 1;
                    i += 1;
                }
                "--threads" => {
                    let v = value(&args, i, "--threads")
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("--threads needs a thread count (0 = auto)"));
                    // 0 = auto-detect the host's available parallelism.
                    setup.threads = if v == 0 {
                        cdpc_machine::default_threads()
                    } else {
                        v
                    };
                    i += 2;
                }
                "--sim-threads" => {
                    let v = value(&args, i, "--sim-threads")
                        .parse::<usize>()
                        .unwrap_or_else(|_| {
                            panic!("--sim-threads needs a thread count (0 = auto)")
                        });
                    // 0 = auto-detect; thread_budget() still divides the
                    // job fan-out through, so the two levels never
                    // oversubscribe the host.
                    setup.sim_threads = if v == 0 {
                        cdpc_machine::default_threads()
                    } else {
                        v
                    };
                    i += 2;
                }
                "--cache" => {
                    setup.cache = Some(PathBuf::from(value(&args, i, "--cache")));
                    i += 2;
                }
                "--no-cache" => {
                    setup.cache = None;
                    i += 1;
                }
                "--lint" => {
                    setup.lint = true;
                    i += 1;
                }
                "--sanitize" => {
                    setup.sanitize = true;
                    i += 1;
                }
                "--predict" => {
                    setup.predict = Some(PathBuf::from(value(&args, i, "--predict")));
                    i += 2;
                }
                "--sarif" => {
                    setup.sarif = Some(PathBuf::from(value(&args, i, "--sarif")));
                    i += 2;
                }
                "--scheduler" => {
                    setup.scheduler = match value(&args, i, "--scheduler").as_str() {
                        "batch" => SchedulerKind::MinClockBatch,
                        "heap" => SchedulerKind::Heap,
                        other => panic!("--scheduler must be `batch` or `heap`, got `{other}`"),
                    };
                    i += 2;
                }
                "--json" => {
                    setup.obs.json = Some(PathBuf::from(value(&args, i, "--json")));
                    i += 2;
                }
                "--trace" => {
                    setup.obs.trace = Some(PathBuf::from(value(&args, i, "--trace")));
                    i += 2;
                }
                "--series" => {
                    setup.obs.series = Some(PathBuf::from(value(&args, i, "--series")));
                    i += 2;
                }
                "--attrib" => {
                    setup.obs.attrib = Some(PathBuf::from(value(&args, i, "--attrib")));
                    i += 2;
                }
                "--top" => {
                    setup.obs.top = true;
                    i += 1;
                }
                "--sample-interval" => {
                    let v = value(&args, i, "--sample-interval")
                        .parse::<u64>()
                        .unwrap_or_else(|_| panic!("--sample-interval needs a cycle count"));
                    assert!(v > 0, "--sample-interval must be positive");
                    setup.obs.sample_interval = Some(v);
                    i += 2;
                }
                other => {
                    assert!(
                        !other.starts_with("--"),
                        "unknown flag `{other}` ({FLAG_USAGE})"
                    );
                    positional.push(other.to_string());
                    i += 1;
                }
            }
        }
        (setup, positional)
    }

    /// The workload scale.
    pub fn workload_scale(&self) -> Scale {
        Scale::new(self.scale)
    }

    /// Scales a machine preset: L1s, L2, and TLB shrink with the data.
    pub fn scaled_mem(&self, preset: Preset, cpus: usize) -> MemConfig {
        let mut m = preset.mem(cpus);
        if self.scale > 1 {
            let f = self.scale as usize;
            m.l2 = m.l2.scaled_down(f);
            m.l1d = scale_l1(m.l1d, f);
            m.l1i = scale_l1(m.l1i, f);
            m.tlb_entries = (m.tlb_entries / f).max(8);
        }
        m
    }

    /// Compiles one benchmark for a preset.
    ///
    /// Compilation is memoized per `(benchmark, preset, cpus, prefetch,
    /// aligned)` within this setup: a figure sweep that runs the same
    /// workload under every policy and CPU count compiles it once and
    /// shares the `Arc` across all its [`SweepJob`]s.
    pub fn compile_bench(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        prefetch: bool,
        aligned: bool,
    ) -> Arc<CompiledProgram> {
        let key = format!("{}/{preset:?}/{cpus}/{prefetch}/{aligned}", bench.name);
        if let Some(hit) = self.compiled.borrow().get(&key) {
            return Arc::clone(hit);
        }
        let compiled =
            Arc::new(self.compile_bench_uncached(bench, preset, cpus, prefetch, aligned));
        self.compiled
            .borrow_mut()
            .insert(key, Arc::clone(&compiled));
        compiled
    }

    /// [`compile_bench`](Self::compile_bench) without the memo — always
    /// runs the full compiler pipeline. The pipeline benchmark uses this
    /// to price compilation itself rather than a map lookup.
    pub fn compile_bench_uncached(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        prefetch: bool,
        aligned: bool,
    ) -> CompiledProgram {
        let program = (bench.build)(self.workload_scale());
        let mem = self.scaled_mem(preset, cpus);
        let mut opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
        opts.prefetch = prefetch;
        opts.aligned = aligned;
        opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;
        if self.lint {
            let report = lint_program(&program, &opts, &mem);
            if !report.diagnostics.is_empty() {
                eprint!("{}", report.render());
            }
            assert!(
                !report.has_errors(),
                "`{}` failed lints (diagnostics above); annotate the model with \
                 `allow_lint` if the behavior is intended",
                program.name
            );
        }
        compile(&program, &opts).expect("workload models always compile")
    }

    /// Compiles one benchmark into a [`SweepJob`] for
    /// [`run_jobs`](Self::run_jobs). Callers may tweak the returned
    /// `job.cfg` (hint options, hog fraction, victim-cache size, ...)
    /// before queueing it.
    pub fn job(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        policy: PolicyKind,
        prefetch: bool,
        aligned: bool,
    ) -> SweepJob {
        let compiled = self.compile_bench(bench, preset, cpus, prefetch, aligned);
        let mut cfg = RunConfig::new(self.scaled_mem(preset, cpus), policy);
        cfg.validate_coherence = self.sanitize;
        cfg.scheduler = self.scheduler;
        cfg.sim_threads = self.sim_threads;
        SweepJob::new(compiled, cfg)
    }

    /// Runs a batch of jobs across [`Setup::threads`] workers, returning
    /// reports in input order.
    ///
    /// With no observability outputs this is
    /// [`run_sweep_memo`](cdpc_machine::run_sweep_memo): pure simulation
    /// fan-out with content-addressed memoization (in-sweep dedup,
    /// warm-checkpoint forking, and — when [`Setup::cache`] is set — the
    /// persistent result cache), bit-identical to the unmemoized sweep for
    /// any thread count. With a cache attached, the
    /// [`SweepCacheStats`](cdpc_obs::SweepCacheStats) summary is printed
    /// to stderr (stdout stays byte-identical for the golden diffs).
    ///
    /// When [`ObsOptions`] flags are set, execution itself is the product
    /// (traces, series, attribution), so every job bypasses the cache:
    /// each worker runs [`run_observed`](cdpc_machine::run_observed) with
    /// its own probe, and the files are recorded on the calling thread in
    /// input order afterwards — so file contents and numbering are also
    /// independent of the thread count.
    /// With `--sanitize`, every run is additionally shadowed by a
    /// fail-fast [`SanitizerProbe`](cdpc_analyze::SanitizerProbe)
    /// (composed with the trace probe when both are requested), so a MESI
    /// invariant violation aborts the experiment at the offending event.
    pub fn run_jobs(&self, jobs: &[SweepJob]) -> Vec<RunReport> {
        // Combined cap: each engine-backed run brings `sim_threads` host
        // threads of its own, so the job fan-out shrinks to compensate.
        let threads = thread_budget(self.threads, self.sim_threads);
        if !self.obs.probes_needed() && !self.sanitize {
            let cache = self.cache.as_deref().map(ResultCache::new);
            let (reports, stats) = run_sweep_memo(jobs, threads, cache.as_ref());
            if cache.is_some() {
                eprintln!("[cdpc-cache] {}", stats.summary_line());
            }
            // `--json` is report-rendered, not probe-observed, so cached
            // and forked runs export exactly like fresh ones.
            if self.obs.active() {
                for report in &reports {
                    self.obs.record(report, None, None, None);
                }
            }
            return reports;
        }
        let interval = self.obs.sampling();
        let want_trace = self.obs.trace.is_some();
        let want_attrib = self.obs.attribution();
        let sanitize = self.sanitize;
        let results = sweep_map(jobs, threads, |job| {
            let cpus = job.cfg.mem.num_cpus;
            // Compose the requested sinks as a tuple of `Option<Probe>`s:
            // `None` slots are no-ops the optimizer removes, so one code
            // path covers all eight on/off combinations.
            let mut probe = (
                sanitize.then(|| SanitizerProbe::new(cpus)),
                want_trace.then(TraceProbe::new),
                want_attrib.then(|| attribution_probe(&job.compiled, &job.cfg)),
            );
            let (report, series) = run_observed(&job.compiled, &job.cfg, &mut probe, interval);
            (report, series, probe.1, probe.2)
        });
        results
            .into_iter()
            .zip(jobs)
            .map(|((report, series, trace, attrib), job)| {
                if self.obs.active() {
                    let names;
                    let attrib = match &attrib {
                        Some(probe) => {
                            names = job.compiled.array_names();
                            Some((probe, names.as_slice()))
                        }
                        None => None,
                    };
                    self.obs
                        .record(&report, series.as_ref(), trace.as_ref(), attrib);
                }
                report
            })
            .collect()
    }

    /// Compiles and runs one benchmark under one policy (a one-job
    /// [`run_jobs`](Self::run_jobs)).
    pub fn run_bench(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        policy: PolicyKind,
        prefetch: bool,
        aligned: bool,
    ) -> RunReport {
        let job = self.job(bench, preset, cpus, policy, prefetch, aligned);
        self.run_jobs(std::slice::from_ref(&job))
            .pop()
            .expect("one job yields one report")
    }
}

/// Runs the `cdpc-analyze` static lints on a workload model as `opts`
/// would compile it for the `mem` machine — the shared entry point of the
/// `--lint` flag and the `analyze` binary.
pub fn lint_program(
    program: &Program,
    opts: &CompileOptions,
    mem: &MemConfig,
) -> cdpc_analyze::Report {
    cdpc_analyze::analyze_program(program, opts, &cdpc_analyze::MachineModel::from_mem(mem))
}

/// Collects the set of virtual (data) pages each processor touches in the
/// distributed loops of a compiled program — the raw material of the
/// paper's Figures 3 and 5.
pub fn page_access_sets(
    compiled: &CompiledProgram,
    page_size: u64,
) -> Vec<std::collections::BTreeSet<u64>> {
    use cdpc_compiler::trace::TraceOp;
    let mut sets = vec![std::collections::BTreeSet::new(); compiled.num_cpus];
    for phase in &compiled.phases {
        for stmt in &phase.stmts {
            if let cdpc_compiler::CompiledStmt::Parallel { specs } = stmt {
                for (cpu, spec) in specs.iter().enumerate() {
                    for op in spec.ops() {
                        if let TraceOp::Load(va) | TraceOp::Store(va) = op {
                            sets[cpu].insert(va.0 / page_size);
                        }
                    }
                }
            }
        }
    }
    sets
}

/// Renders an ASCII access-pattern plot: one row per CPU, one column per
/// bucket of `positions` (already in the desired order), `#` where the CPU
/// touches any page of the bucket.
pub fn render_access_plot(
    positions: &[u64],
    sets: &[std::collections::BTreeSet<u64>],
    width: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let n = positions.len().max(1);
    let bucket = n.div_ceil(width).max(1);
    for (cpu, touched) in sets.iter().enumerate() {
        let _ = write!(out, "cpu{cpu:<2} |");
        for chunk in positions.chunks(bucket) {
            let hit = chunk.iter().any(|p| touched.contains(p));
            out.push(if hit { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn scale_l1(l1: CacheConfig, f: usize) -> CacheConfig {
    // Keep at least 8 sets so associativity still means something.
    let min = l1.line_bytes() * l1.associativity() * 8;
    CacheConfig::new(
        (l1.size_bytes() / f).max(min),
        l1.line_bytes(),
        l1.associativity(),
    )
}

/// Text-table helpers shared by the experiment binaries.
pub mod table {
    /// Prints a header row followed by a rule.
    pub fn header(cols: &[&str], widths: &[usize]) {
        let mut line = String::new();
        for (c, w) in cols.iter().zip(widths) {
            line.push_str(&format!("{c:>w$} "));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len()));
    }

    /// Formats a ratio to two decimals with an `x` suffix.
    pub fn ratio(r: f64) -> String {
        format!("{r:.2}x")
    }

    /// Formats a fraction as a percentage.
    pub fn pct(f: f64) -> String {
        format!("{:.1}%", f * 100.0)
    }

    /// Formats cycle counts in engineering notation.
    pub fn cycles(c: u64) -> String {
        if c >= 1_000_000_000 {
            format!("{:.2}G", c as f64 / 1e9)
        } else if c >= 1_000_000 {
            format!("{:.2}M", c as f64 / 1e6)
        } else if c >= 1_000 {
            format!("{:.1}k", c as f64 / 1e3)
        } else {
            c.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_machines() {
        assert_eq!(Preset::Base1MbDm.mem(4).l2.size_bytes(), 1 << 20);
        assert_eq!(Preset::TwoWay1Mb.mem(4).l2.associativity(), 2);
        assert_eq!(Preset::FourMbDm.mem(4).l2.size_bytes(), 4 << 20);
        assert_eq!(Preset::Alpha.mem(4).cpu_mhz, 350);
    }

    #[test]
    fn scaling_shrinks_caches_with_floors() {
        let s = Setup::with_scale(8);
        let m = s.scaled_mem(Preset::Base1MbDm, 2);
        assert_eq!(m.l2.size_bytes(), 128 << 10);
        assert_eq!(m.l1d.size_bytes(), 4 << 10);
        assert_eq!(m.tlb_entries, 8);
        // Extreme scale: floors kick in.
        let s = Setup::with_scale(1024);
        let m = s.scaled_mem(Preset::Base1MbDm, 2);
        assert!(m.l1d.size_bytes() >= m.l1d.line_bytes() * m.l1d.associativity() * 8);
    }

    #[test]
    fn run_bench_produces_report() {
        let s = Setup::with_scale(64);
        let bench = cdpc_workloads::by_name("hydro2d").unwrap();
        let r = s.run_bench(&bench, Preset::Base1MbDm, 2, PolicyKind::Cdpc, false, true);
        assert!(r.instructions > 0);
        assert_eq!(r.policy, "cdpc");
    }

    #[test]
    fn sanitized_linted_run_matches_plain() {
        // --lint --sanitize must not perturb the simulation: same report,
        // no sanitizer violation, no lint failure on a real workload.
        let plain = Setup::with_scale(64);
        let mut checked = Setup::with_scale(64);
        checked.lint = true;
        checked.sanitize = true;
        let bench = cdpc_workloads::by_name("swim").unwrap();
        let a = plain.run_bench(&bench, Preset::Base1MbDm, 4, PolicyKind::Cdpc, false, true);
        let b = checked.run_bench(&bench, Preset::Base1MbDm, 4, PolicyKind::Cdpc, false, true);
        assert_eq!(a, b);
    }

    #[test]
    fn obs_sampling_defaults_only_with_series() {
        let mut obs = ObsOptions::default();
        assert!(!obs.active());
        assert_eq!(obs.sampling(), None);
        obs.series = Some(PathBuf::from("series.csv"));
        assert!(obs.active());
        assert_eq!(obs.sampling(), Some(DEFAULT_SAMPLE_INTERVAL));
        obs.sample_interval = Some(2_500);
        assert_eq!(obs.sampling(), Some(2_500));
    }

    #[test]
    fn numbered_suffixes_later_runs() {
        let p = PathBuf::from("/tmp/out.json");
        assert_eq!(numbered(&p, 0), PathBuf::from("/tmp/out.json"));
        assert_eq!(numbered(&p, 2), PathBuf::from("/tmp/out-2.json"));
        let bare = PathBuf::from("trace");
        assert_eq!(numbered(&bare, 1), PathBuf::from("trace-1"));
    }

    #[test]
    fn observed_run_bench_writes_outputs() {
        let dir = std::env::temp_dir().join(format!("cdpc-bench-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Setup::with_scale(64);
        s.obs.json = Some(dir.join("runs.json"));
        s.obs.trace = Some(dir.join("trace.json"));
        s.obs.series = Some(dir.join("series.csv"));
        let bench = cdpc_workloads::by_name("hydro2d").unwrap();
        let plain = Setup::with_scale(64).run_bench(
            &bench,
            Preset::Base1MbDm,
            2,
            PolicyKind::Cdpc,
            false,
            true,
        );
        let observed = s.run_bench(&bench, Preset::Base1MbDm, 2, PolicyKind::Cdpc, false, true);
        assert_eq!(plain, observed, "observability must not change results");
        // Second run: JSON grows, per-run files get a suffix.
        s.run_bench(
            &bench,
            Preset::Base1MbDm,
            2,
            PolicyKind::PageColoring,
            false,
            true,
        );

        let doc = JsonValue::parse(&std::fs::read_to_string(dir.join("runs.json")).unwrap())
            .expect("exported JSON must parse");
        let runs = doc.get("runs").and_then(|r| r.as_array()).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("policy").and_then(|p| p.as_str()), Some("cdpc"));
        let csv = std::fs::read_to_string(dir.join("series.csv")).unwrap();
        assert!(csv.lines().count() > 1, "series has header plus windows");
        let trace =
            JsonValue::parse(&std::fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
        assert!(trace.get("traceEvents").is_some());
        assert!(dir.join("series-1.csv").exists());
        assert!(dir.join("trace-1.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attribution_run_bench_writes_json_and_html() {
        let dir = std::env::temp_dir().join(format!("cdpc-bench-attrib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Setup::with_scale(64);
        s.obs.attrib = Some(dir.join("attrib.json"));
        assert!(s.obs.attribution() && s.obs.active());
        let bench = cdpc_workloads::by_name("tomcatv").unwrap();
        let plain = Setup::with_scale(64).run_bench(
            &bench,
            Preset::Base1MbDm,
            4,
            PolicyKind::Cdpc,
            false,
            true,
        );
        let observed = s.run_bench(&bench, Preset::Base1MbDm, 4, PolicyKind::Cdpc, false, true);
        assert_eq!(plain, observed, "attribution must not change results");

        let doc = JsonValue::parse(&std::fs::read_to_string(dir.join("attrib.json")).unwrap())
            .expect("attribution JSON must parse");
        let attrib = doc.get("attribution").expect("attribution subtree");
        // Cross-check invariant: attributed totals equal the report's
        // aggregate miss counts, class by class.
        let totals = attrib.get("totals").unwrap().get("by_class").unwrap();
        let report_misses = doc.get("report_misses").unwrap();
        for class in [
            "cold",
            "capacity",
            "conflict",
            "true-sharing",
            "false-sharing",
        ] {
            assert_eq!(
                totals.get(class).unwrap().as_u64(),
                report_misses.get(class).unwrap().as_u64(),
                "class `{class}`"
            );
        }
        let html = std::fs::read_to_string(dir.join("attrib.html")).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_formatting() {
        assert_eq!(table::ratio(1.5), "1.50x");
        assert_eq!(table::pct(0.123), "12.3%");
        assert_eq!(table::cycles(1500), "1.5k");
        assert_eq!(table::cycles(2_500_000), "2.50M");
    }
}
