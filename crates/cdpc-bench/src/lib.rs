//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper (see `DESIGN.md` section 4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin fig6
//! cargo run --release -p cdpc-bench --bin fig6 -- --scale 4   # bigger machine
//! ```
//!
//! All experiments accept `--scale <power-of-two>` (default 8): data sets,
//! caches, and TLBs shrink together, preserving every data:cache ratio
//! while keeping runs fast (the paper faces the same wall — full-detail
//! SPEC95fp simulation "would take more than one year" — and answers with
//! representative execution windows; we window *and* scale).

use cdpc_compiler::{compile, CompileOptions, CompiledProgram};
use cdpc_machine::{run, PolicyKind, RunConfig, RunReport};
use cdpc_memsim::{CacheConfig, MemConfig};
use cdpc_workloads::spec::Scale;
use cdpc_workloads::Benchmark;

/// The machine presets used by the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// 1 MB direct-mapped external cache (base SimOS machine, Figures 2-6).
    Base1MbDm,
    /// 1 MB two-way set-associative external cache (Figure 7 left).
    TwoWay1Mb,
    /// 4 MB direct-mapped external cache (Figure 7 right).
    FourMbDm,
    /// AlphaServer 8400: 350 MHz CPUs, 4 MB direct-mapped (Figure 9,
    /// Table 2).
    Alpha,
}

impl Preset {
    /// The unscaled memory configuration for `cpus` processors.
    pub fn mem(self, cpus: usize) -> MemConfig {
        match self {
            Preset::Base1MbDm => MemConfig::paper_base(cpus),
            Preset::TwoWay1Mb => MemConfig::paper_2way(cpus),
            Preset::FourMbDm => MemConfig::paper_4mb(cpus),
            Preset::Alpha => MemConfig::alphaserver(cpus),
        }
    }
}

/// One experiment configuration: scale plus derived machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Setup {
    /// Power-of-two divisor applied to data sets, caches, and TLBs.
    pub scale: u64,
}

impl Default for Setup {
    fn default() -> Self {
        Setup { scale: 8 }
    }
}

impl Setup {
    /// Parses `--scale N` / `--full` from command-line arguments
    /// (defaults to scale 8).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut setup = Setup::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let v = args
                        .get(i + 1)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| panic!("usage: --scale <power-of-two>"));
                    assert!(v.is_power_of_two(), "--scale must be a power of two");
                    setup.scale = v;
                    i += 2;
                }
                "--full" => {
                    setup.scale = 1;
                    i += 1;
                }
                other => panic!("unknown argument `{other}` (supported: --scale N, --full)"),
            }
        }
        setup
    }

    /// The workload scale.
    pub fn workload_scale(&self) -> Scale {
        Scale::new(self.scale)
    }

    /// Scales a machine preset: L1s, L2, and TLB shrink with the data.
    pub fn scaled_mem(&self, preset: Preset, cpus: usize) -> MemConfig {
        let mut m = preset.mem(cpus);
        if self.scale > 1 {
            let f = self.scale as usize;
            m.l2 = m.l2.scaled_down(f);
            m.l1d = scale_l1(m.l1d, f);
            m.l1i = scale_l1(m.l1i, f);
            m.tlb_entries = (m.tlb_entries / f).max(8);
        }
        m
    }

    /// Compiles one benchmark for a preset.
    pub fn compile_bench(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        prefetch: bool,
        aligned: bool,
    ) -> CompiledProgram {
        let program = (bench.build)(self.workload_scale());
        let mem = self.scaled_mem(preset, cpus);
        let mut opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
        opts.prefetch = prefetch;
        opts.aligned = aligned;
        opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;
        compile(&program, &opts).expect("workload models always compile")
    }

    /// Compiles and runs one benchmark under one policy.
    pub fn run_bench(
        &self,
        bench: &Benchmark,
        preset: Preset,
        cpus: usize,
        policy: PolicyKind,
        prefetch: bool,
        aligned: bool,
    ) -> RunReport {
        let compiled = self.compile_bench(bench, preset, cpus, prefetch, aligned);
        let cfg = RunConfig::new(self.scaled_mem(preset, cpus), policy);
        run(&compiled, &cfg)
    }
}

/// Collects the set of virtual (data) pages each processor touches in the
/// distributed loops of a compiled program — the raw material of the
/// paper's Figures 3 and 5.
pub fn page_access_sets(
    compiled: &CompiledProgram,
    page_size: u64,
) -> Vec<std::collections::BTreeSet<u64>> {
    use cdpc_compiler::trace::TraceOp;
    let mut sets = vec![std::collections::BTreeSet::new(); compiled.num_cpus];
    for phase in &compiled.phases {
        for stmt in &phase.stmts {
            if let cdpc_compiler::CompiledStmt::Parallel { specs } = stmt {
                for (cpu, spec) in specs.iter().enumerate() {
                    for op in spec.ops() {
                        if let TraceOp::Load(va) | TraceOp::Store(va) = op {
                            sets[cpu].insert(va.0 / page_size);
                        }
                    }
                }
            }
        }
    }
    sets
}

/// Renders an ASCII access-pattern plot: one row per CPU, one column per
/// bucket of `positions` (already in the desired order), `#` where the CPU
/// touches any page of the bucket.
pub fn render_access_plot(
    positions: &[u64],
    sets: &[std::collections::BTreeSet<u64>],
    width: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let n = positions.len().max(1);
    let bucket = n.div_ceil(width).max(1);
    for (cpu, touched) in sets.iter().enumerate() {
        let _ = write!(out, "cpu{cpu:<2} |");
        for chunk in positions.chunks(bucket) {
            let hit = chunk.iter().any(|p| touched.contains(p));
            out.push(if hit { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn scale_l1(l1: CacheConfig, f: usize) -> CacheConfig {
    // Keep at least 8 sets so associativity still means something.
    let min = l1.line_bytes() * l1.associativity() * 8;
    CacheConfig::new(
        (l1.size_bytes() / f).max(min),
        l1.line_bytes(),
        l1.associativity(),
    )
}

/// Text-table helpers shared by the experiment binaries.
pub mod table {
    /// Prints a header row followed by a rule.
    pub fn header(cols: &[&str], widths: &[usize]) {
        let mut line = String::new();
        for (c, w) in cols.iter().zip(widths) {
            line.push_str(&format!("{c:>w$} "));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len()));
    }

    /// Formats a ratio to two decimals with an `x` suffix.
    pub fn ratio(r: f64) -> String {
        format!("{r:.2}x")
    }

    /// Formats a fraction as a percentage.
    pub fn pct(f: f64) -> String {
        format!("{:.1}%", f * 100.0)
    }

    /// Formats cycle counts in engineering notation.
    pub fn cycles(c: u64) -> String {
        if c >= 1_000_000_000 {
            format!("{:.2}G", c as f64 / 1e9)
        } else if c >= 1_000_000 {
            format!("{:.2}M", c as f64 / 1e6)
        } else if c >= 1_000 {
            format!("{:.1}k", c as f64 / 1e3)
        } else {
            c.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_machines() {
        assert_eq!(Preset::Base1MbDm.mem(4).l2.size_bytes(), 1 << 20);
        assert_eq!(Preset::TwoWay1Mb.mem(4).l2.associativity(), 2);
        assert_eq!(Preset::FourMbDm.mem(4).l2.size_bytes(), 4 << 20);
        assert_eq!(Preset::Alpha.mem(4).cpu_mhz, 350);
    }

    #[test]
    fn scaling_shrinks_caches_with_floors() {
        let s = Setup { scale: 8 };
        let m = s.scaled_mem(Preset::Base1MbDm, 2);
        assert_eq!(m.l2.size_bytes(), 128 << 10);
        assert_eq!(m.l1d.size_bytes(), 4 << 10);
        assert_eq!(m.tlb_entries, 8);
        // Extreme scale: floors kick in.
        let s = Setup { scale: 1024 };
        let m = s.scaled_mem(Preset::Base1MbDm, 2);
        assert!(m.l1d.size_bytes() >= m.l1d.line_bytes() * m.l1d.associativity() * 8);
    }

    #[test]
    fn run_bench_produces_report() {
        let s = Setup { scale: 64 };
        let bench = cdpc_workloads::by_name("hydro2d").unwrap();
        let r = s.run_bench(&bench, Preset::Base1MbDm, 2, PolicyKind::Cdpc, false, true);
        assert!(r.instructions > 0);
        assert_eq!(r.policy, "cdpc");
    }

    #[test]
    fn table_formatting() {
        assert_eq!(table::ratio(1.5), "1.50x");
        assert_eq!(table::pct(0.123), "12.3%");
        assert_eq!(table::cycles(1500), "1.5k");
        assert_eq!(table::cycles(2_500_000), "2.50M");
    }
}
