//! Figure 7: CDPC on two-way set-associative and larger caches.
//!
//! Left half: 1 MB two-way set-associative external cache — set
//! associativity reduces conflict hot spots but not cache under-
//! utilization, so CDPC's improvements persist. Right half: 4 MB
//! direct-mapped — the aggregate cache absorbs data sets at lower
//! processor counts, so CDPC's benefits appear earlier (tomcatv, swim) and
//! applu (31 MB) finally benefits.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::PolicyKind;

fn main() {
    let setup = Setup::from_args();
    let cpu_counts = [1usize, 2, 4, 8, 16];
    let apps = [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
    ];

    let presets = [
        ("1MB two-way set-associative", Preset::TwoWay1Mb),
        ("4MB direct-mapped", Preset::FourMbDm),
    ];
    let benches: Vec<_> = apps
        .iter()
        .map(|&name| cdpc_workloads::by_name(name).expect("benchmark exists"))
        .collect();
    let mut jobs = Vec::new();
    for &(_, preset) in &presets {
        for bench in &benches {
            for &cpus in &cpu_counts {
                for policy in [PolicyKind::PageColoring, PolicyKind::Cdpc] {
                    jobs.push(setup.job(bench, preset, cpus, policy, false, true));
                }
            }
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for (title, _) in presets {
        println!("Figure 7 ({title}, scale {}):\n", setup.scale);
        for bench in &benches {
            println!("== {} ==", bench.name);
            table::header(
                &[
                    "cpus",
                    "PC time",
                    "CDPC time",
                    "PC repl%",
                    "CDPC repl%",
                    "speedup",
                ],
                &[4, 10, 10, 9, 10, 8],
            );
            for &cpus in &cpu_counts {
                let pc = reports.next().expect("one PC report per row");
                let cdpc = reports.next().expect("one CDPC report per row");
                let repl_pct = |r: &cdpc_machine::RunReport| {
                    let total = r.exec_cycles + r.stalls.total() + r.overheads.total();
                    r.stalls.replacement() as f64 / total.max(1) as f64
                };
                println!(
                    "{:>4} {:>10} {:>10} {:>9} {:>10} {:>8}",
                    cpus,
                    table::cycles(pc.elapsed_cycles),
                    table::cycles(cdpc.elapsed_cycles),
                    table::pct(repl_pct(&pc)),
                    table::pct(repl_pct(&cdpc)),
                    table::ratio(cdpc.speedup_over(&pc)),
                );
            }
            println!();
        }
    }
}
