//! Cross-validate the static conflict prover against the simulator.
//!
//! For every workload, run the prover's interference equations (under the
//! native page-coloring policy) *and* the full simulation with miss
//! attribution, then diff the predicted hot `(array, color)` cells
//! against the attribution tensor's conflict cells:
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin predict
//! cargo run --release -p cdpc-bench --bin predict -- --scale 64 \
//!     --predict results/predict_report.json --sarif out.sarif
//! ```
//!
//! The prover's contract is **zero false negatives**: every cell the
//! simulator charges with conflict misses must have been predicted.
//! Precision (how many predictions the oracle confirmed) is reported per
//! workload; over-approximation costs precision, never soundness. The
//! binary exits nonzero if recall drops below 1.0 on the paper's three
//! headline workloads (tomcatv, swim, su2cor) — CI runs this as a gate
//! and exact-diffs the JSON report. `--sarif <path>` additionally exports
//! every prover diagnostic as one SARIF 2.1.0 log.

use std::collections::BTreeSet;

use cdpc_analyze::sarif::check_sarif_shape;
use cdpc_analyze::{predict_program, reports_to_sarif, MachineModel, ProverPolicy};
use cdpc_bench::{Preset, Setup};
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{diff_prediction, run_attributed, PolicyKind, RunConfig};
use cdpc_obs::JsonValue;

/// Processor count for the validation runs (the paper's base machine).
const CPUS: usize = 4;

/// Workloads whose recall gates the exit status.
const GATED: [&str; 3] = ["tomcatv", "swim", "su2cor"];

fn cells_json(cells: &BTreeSet<(usize, u64)>, names: &[String]) -> JsonValue {
    JsonValue::Array(
        cells
            .iter()
            .map(|&(row, color)| {
                let mut c = JsonValue::object();
                let name = names.get(row).cloned().unwrap_or_else(|| "(other)".into());
                c.push("array", JsonValue::Str(name));
                c.push("row", JsonValue::UInt(row as u64));
                c.push("color", JsonValue::UInt(color));
                c
            })
            .collect(),
    )
}

/// Ratio rounded to 4 decimal places so the JSON golden is stable prose,
/// not 17-digit float noise.
fn ratio(r: f64) -> JsonValue {
    JsonValue::Float((r * 10_000.0).round() / 10_000.0)
}

fn main() {
    let setup = Setup::from_args();
    let mut workloads = Vec::new();
    let mut sarif_reports = Vec::new();
    let mut gate_failures = Vec::new();
    let (mut total_hits, mut total_oracle, mut total_predicted) = (0usize, 0usize, 0usize);

    for bench in cdpc_workloads::all() {
        let program = (bench.build)(setup.workload_scale());
        let mem = setup.scaled_mem(Preset::Base1MbDm, CPUS);
        let mut opts = CompileOptions::new(CPUS).with_l2_cache(mem.l2.size_bytes() as u64);
        opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;

        let machine = MachineModel::from_mem(&mem);
        let (pred, report) = predict_program(&program, &opts, &machine, ProverPolicy::PageColoring);

        let compiled = compile(&program, &opts).expect("workload models always compile");
        let names = compiled.array_names();
        let (_, probe) = run_attributed(&compiled, &RunConfig::new(mem, PolicyKind::PageColoring));
        let diff = diff_prediction(&pred.cells, &probe);

        total_hits += diff.hits.len();
        total_oracle += diff.oracle_cells.len();
        total_predicted += pred.cells.len();
        eprintln!(
            "{:<10} predicted {:>3} cells, oracle {:>3}: recall {:.2} precision {:.2}{}",
            bench.name,
            pred.cells.len(),
            diff.oracle_cells.len(),
            diff.recall(),
            diff.precision(),
            if diff.sound() {
                ""
            } else {
                "  FALSE NEGATIVES"
            },
        );
        // Bench names carry the SPEC number prefix ("101.tomcatv").
        if !diff.sound() && GATED.iter().any(|g| bench.name.ends_with(g)) {
            gate_failures.push(bench.name);
        }

        let mut w = JsonValue::object();
        w.push("name", JsonValue::Str(bench.name.to_string()));
        w.push("policy", JsonValue::Str(pred.policy.clone()));
        w.push("num_colors", JsonValue::UInt(pred.num_colors));
        w.push("proven_free", JsonValue::Bool(pred.proven_free));
        w.push("confidence", JsonValue::UInt(u64::from(pred.confidence)));
        w.push("est_misses", JsonValue::UInt(pred.est_misses));
        w.push("predicted_cells", JsonValue::UInt(pred.cells.len() as u64));
        w.push(
            "oracle_cells",
            JsonValue::UInt(diff.oracle_cells.len() as u64),
        );
        w.push("hits", JsonValue::UInt(diff.hits.len() as u64));
        w.push("spurious", JsonValue::UInt(diff.spurious.len() as u64));
        // False negatives are listed in full: an empty array IS the
        // zero-false-negative statement for this workload.
        w.push("missed", cells_json(&diff.missed, &names));
        w.push("recall", ratio(diff.recall()));
        w.push("precision", ratio(diff.precision()));
        w.push(
            "phases_proven_free",
            JsonValue::UInt(pred.phases.iter().filter(|p| p.proven_free).count() as u64),
        );
        w.push("phases", JsonValue::UInt(pred.phases.len() as u64));
        workloads.push(w);
        sarif_reports.push(report);
    }

    let mut doc = JsonValue::object();
    doc.push("scale", JsonValue::UInt(setup.scale));
    doc.push("cpus", JsonValue::UInt(CPUS as u64));
    doc.push("policy", JsonValue::Str("page-coloring".to_string()));
    let mut agg = JsonValue::object();
    agg.push("predicted_cells", JsonValue::UInt(total_predicted as u64));
    agg.push("oracle_cells", JsonValue::UInt(total_oracle as u64));
    agg.push("hits", JsonValue::UInt(total_hits as u64));
    agg.push(
        "recall",
        ratio(if total_oracle == 0 {
            1.0
        } else {
            total_hits as f64 / total_oracle as f64
        }),
    );
    agg.push(
        "precision",
        ratio(if total_predicted == 0 {
            1.0
        } else {
            total_hits as f64 / total_predicted as f64
        }),
    );
    doc.push("aggregate", agg);
    doc.push("workloads", JsonValue::Array(workloads));

    let text = doc.to_string_pretty();
    match &setup.predict {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| panic!("cannot write `{}`: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        None => println!("{text}"),
    }

    if let Some(path) = &setup.sarif {
        let refs: Vec<&cdpc_analyze::Report> = sarif_reports.iter().collect();
        let log = reports_to_sarif(&refs);
        check_sarif_shape(&log).expect("generated SARIF is well-formed");
        std::fs::write(path, log.to_string_pretty())
            .unwrap_or_else(|e| panic!("cannot write `{}`: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    if !gate_failures.is_empty() {
        eprintln!("FAIL: false negatives on gated workloads: {gate_failures:?}");
        std::process::exit(1);
    }
}
