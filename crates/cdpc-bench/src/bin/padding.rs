//! The padding baseline (paper §2.2): how far does classic inter-array
//! padding get you, and where does it break?
//!
//! The paper dismisses padding for three reasons; this experiment
//! demonstrates the quantitative one: *"padding is constrained by the fact
//! that it operates on the virtual address space and not on the physical
//! address space. For example, pads that are larger than a page size are
//! ineffective if the operating system has a bin hopping policy."*
//!
//! We run tomcatv (the seven-same-color-array pathology) with pads of one
//! cache line, half a page, and two pages, under both page coloring and
//! bin hopping, against plain CDPC.

use cdpc_bench::{table, Preset, Setup};
use cdpc_compiler::layout::LayoutMode;
use cdpc_compiler::{compile, CompileOptions};
use cdpc_machine::{PolicyKind, RunConfig, SweepJob};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let program = (bench.build)(setup.workload_scale());
    let mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
    let page = mem.page_size as u64;

    let compile_with = |layout: Option<LayoutMode>| {
        let mut opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
        opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;
        opts.layout_override = layout;
        compile(&program, &opts).expect("model compiles")
    };

    println!(
        "Padding vs page mapping policy — tomcatv, {} CPUs, 1MB DM cache, scale {}\n",
        cpus, setup.scale
    );
    table::header(
        &["layout", "policy", "time", "conflict-stall"],
        &[16, 14, 10, 14],
    );

    let variants: [(&str, Option<LayoutMode>); 4] = [
        ("no pad", Some(LayoutMode::Padded { pad_bytes: 0 })),
        ("pad 1 line", Some(LayoutMode::Padded { pad_bytes: 128 })),
        (
            "pad page/2",
            Some(LayoutMode::Padded {
                pad_bytes: page / 2,
            }),
        ),
        (
            "pad 2 pages",
            Some(LayoutMode::Padded {
                pad_bytes: 2 * page,
            }),
        ),
    ];
    let policies = [PolicyKind::PageColoring, PolicyKind::BinHopping];
    let mut jobs = Vec::new();
    for policy in policies {
        for (_, layout) in variants {
            jobs.push(SweepJob::new(
                compile_with(layout),
                RunConfig::new(mem.clone(), policy),
            ));
        }
    }
    // The CDPC reference line.
    jobs.push(SweepJob::new(
        compile_with(None),
        RunConfig::new(mem.clone(), PolicyKind::Cdpc),
    ));
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for policy in policies {
        for (label, _) in variants {
            let r = reports.next().expect("one report per padding variant");
            println!(
                "{:<16} {:<14} {:>10} {:>14}",
                label,
                policy.label(),
                table::cycles(r.elapsed_cycles),
                table::cycles(r.stalls.conflict),
            );
        }
        println!();
    }
    let r = reports.next().expect("one CDPC reference report");
    println!(
        "{:<16} {:<14} {:>10} {:>14}",
        "aligned",
        "cdpc",
        table::cycles(r.elapsed_cycles),
        table::cycles(r.stalls.conflict),
    );
    println!("\nExpected: pads smaller than a page shift colors under page coloring");
    println!("(sub-page pads leave page colors unchanged, multi-page pads help);");
    println!("under bin hopping *no* pad helps — colors follow fault order, not");
    println!("addresses. CDPC beats every padding variant on both policies.");
}
