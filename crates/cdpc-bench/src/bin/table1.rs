//! Table 1: reference data set sizes of SPEC95fp.
//!
//! Regenerates the paper's Table 1 from the workload models, printing both
//! the model's size at full scale and the paper's figure.

use cdpc_bench::Setup;
use cdpc_workloads::spec::{Scale, MB};

fn main() {
    let setup = Setup::from_args();
    println!("Table 1. Reference Data Set Sizes of SPEC95fp");
    println!(
        "(model at full scale vs. paper; runs use --scale {})\n",
        setup.scale
    );
    println!(
        "{:<14} {:>12} {:>10} {:>14}",
        "Benchmark", "model (MB)", "paper", "at --scale"
    );
    println!("{}", "-".repeat(54));
    for b in cdpc_workloads::all() {
        let full = (b.build)(Scale::FULL).data_set_bytes() as f64 / MB as f64;
        let scaled = (b.build)(setup.workload_scale()).data_set_bytes() as f64 / MB as f64;
        let paper = if b.name.contains("fpppp") {
            "< 1".to_string()
        } else {
            format!("{:.0}", b.table1_mb)
        };
        println!(
            "{:<14} {:>12.1} {:>10} {:>11.2} MB",
            b.name, full, paper, scaled
        );
    }
}
