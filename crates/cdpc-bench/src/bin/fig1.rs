//! Figure 1: the structure of SUIF-parallelized applications.
//!
//! The paper's Figure 1 sketches how a compiled application alternates
//! between parallel regions (all processors), sequential regions (master
//! computes, slaves spin), and barriers. This binary prints that structure
//! for any workload model — the compiled schedule, per-statement iteration
//! partitioning, and the CDPC summary the compiler derived.

use cdpc_bench::{Preset, Setup};
use cdpc_compiler::CompiledStmt;

fn main() {
    let setup = Setup::from_args();
    let cpus = 4;
    for name in ["tomcatv", "apsi", "fpppp"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        println!("== {} ({} CPUs) ==", compiled.name, cpus);
        for phase in &compiled.phases {
            println!("phase `{}` x{}:", phase.name, phase.count);
            for stmt in &phase.stmts {
                match stmt {
                    CompiledStmt::Parallel { specs } => {
                        let ranges: Vec<String> = specs
                            .iter()
                            .map(|s| format!("[{},{})", s.lo, s.hi))
                            .collect();
                        println!("  PARALLEL  {}  -> barrier", ranges.join(" "));
                    }
                    CompiledStmt::Master { spec, suppressed } => {
                        let kind = if *suppressed {
                            "SUPPRESSED"
                        } else {
                            "SEQUENTIAL"
                        };
                        println!(
                            "  {kind}  master runs [{},{}), slaves spin",
                            spec.lo, spec.hi
                        );
                    }
                }
            }
        }
        let s = &compiled.summary;
        println!(
            "summary: {} arrays / {} partitionings / {} comm patterns / {} groups / {} shared\n",
            s.arrays.len(),
            s.partitionings.len(),
            s.communications.len(),
            s.groups.len(),
            s.shared_arrays.len()
        );
    }
}
