//! Figure 5: access patterns in CDPC coloring order.
//!
//! The same three workloads as Figure 3 (tomcatv, swim, hydro2d at 16
//! processors), but with pages plotted in the **coloring order** chosen by
//! compiler-directed page coloring. Compare with Figure 3: each
//! processor's pages become dense contiguous runs, so consecutive colors
//! are used evenly and conflicts vanish.

use cdpc_bench::{page_access_sets, render_access_plot, Preset, Setup};
use cdpc_core::{generate_hints, MachineParams};

fn main() {
    let setup = Setup::from_args();
    let cpus = 16;
    println!(
        "Figure 5: access patterns in CDPC coloring order (16 CPUs, scale {})\n",
        setup.scale
    );
    for name in ["tomcatv", "swim", "hydro2d"] {
        let bench = cdpc_workloads::by_name(name).expect("benchmark exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        let mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
        let machine = MachineParams::new(
            cpus,
            mem.page_size,
            mem.l2.size_bytes(),
            mem.l2.associativity(),
        );
        let hints = generate_hints(&compiled.summary, &machine).expect("summary is valid");
        let positions: Vec<u64> = hints.order().iter().map(|v| v.0).collect();
        let sets = page_access_sets(&compiled, mem.page_size as u64);
        println!(
            "== {} == ({} hinted pages, {} colors)",
            bench.name,
            positions.len(),
            machine.colors().num_colors()
        );
        print!("{}", render_access_plot(&positions, &sets, 96));
        println!();
    }
    println!("Each column is a bucket of consecutive positions in the CDPC page order");
    println!("(color = position mod #colors). Each CPU's pages now form dense runs.");
}
