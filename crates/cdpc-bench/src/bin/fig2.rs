//! Figure 2: high-level characterization of the workloads.
//!
//! For every benchmark and processor count {1, 2, 4, 8, 16} on the base
//! machine (1 MB direct-mapped external cache, IRIX page coloring), prints
//! the paper's four views:
//!
//! 1. combined execution time (sum over processors), split into execution
//!    / memory stall / overheads — constant bars mean linear speedup;
//! 2. the overhead breakdown (kernel, load imbalance, sequential,
//!    suppressed, synchronization);
//! 3. memory system behavior as MCPI, split by miss class;
//! 4. bus utilization, split into data / writeback / upgrade occupancy.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::PolicyKind;

fn main() {
    let setup = Setup::from_args();
    let cpu_counts = [1usize, 2, 4, 8, 16];
    println!(
        "Figure 2: workload characterization (1MB DM cache, page coloring, scale {})\n",
        setup.scale
    );

    let benches = cdpc_workloads::all();
    let jobs: Vec<_> = benches
        .iter()
        .flat_map(|bench| {
            cpu_counts.iter().map(|&cpus| {
                setup.job(
                    bench,
                    Preset::Base1MbDm,
                    cpus,
                    PolicyKind::PageColoring,
                    false,
                    true,
                )
            })
        })
        .collect();
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &[
                "cpus", "combined", "exec%", "mem%", "ovhd%", "| kern", "imbal", "seq", "suppr",
                "sync", "| MCPI", "repl", "comm", "| bus",
            ],
            &[4, 9, 6, 6, 6, 6, 6, 6, 6, 6, 7, 6, 6, 6],
        );
        for &cpus in &cpu_counts {
            let r = reports.next().expect("one report per job");
            let total = (r.exec_cycles + r.stalls.total() + r.overheads.total()).max(1);
            let o = &r.overheads;
            let mcpi = r.mcpi();
            let repl_mcpi = r.stalls.replacement() as f64 / r.instructions.max(1) as f64;
            let comm_mcpi = (r.stalls.true_sharing + r.stalls.false_sharing) as f64
                / r.instructions.max(1) as f64;
            println!(
                "{:>4} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7.3} {:>6.3} {:>6.3} {:>6}",
                cpus,
                table::cycles(total),
                table::pct(r.exec_cycles as f64 / total as f64),
                table::pct(r.stalls.total() as f64 / total as f64),
                table::pct(o.total() as f64 / total as f64),
                table::pct(o.kernel as f64 / total as f64),
                table::pct(o.load_imbalance as f64 / total as f64),
                table::pct(o.sequential as f64 / total as f64),
                table::pct(o.suppressed as f64 / total as f64),
                table::pct(o.synchronization as f64 / total as f64),
                mcpi,
                repl_mcpi,
                comm_mcpi,
                table::pct(r.bus.utilization),
            );
        }
        println!();
    }
}
