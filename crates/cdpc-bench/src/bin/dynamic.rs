//! Dynamic page recoloring vs CDPC (extension experiment).
//!
//! The paper's related-work section (§2.1) discusses *dynamic* policies
//! that detect conflicts at run time and recolor pages by copying, and
//! argues they are problematic on multiprocessors: conflict misses are
//! hard to tell from coherence misses, and "the TLB state of each
//! processor must be individually flushed and the recoloring operation
//! may generate significant inter-processor communication." The paper
//! never measures them — this experiment does, with a conflict-counter
//! detector on top of page coloring, paying copy + flush + shootdown
//! costs.
//!
//! Expected shape: dynamic recoloring recovers part of page coloring's
//! loss, but trails CDPC (which needs no detection, no copies, no
//! shootdowns) — supporting the paper's argument that compile-time
//! knowledge beats run-time repair here.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::{PolicyKind, RunConfig, SweepJob};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    println!(
        "Dynamic recoloring vs CDPC (1MB DM cache, {} CPUs, scale {})\n",
        cpus, setup.scale
    );
    let variants = [
        (PolicyKind::PageColoring, 0),
        (PolicyKind::DynamicRecolor, 16),
        (PolicyKind::DynamicRecolor, 64),
        (PolicyKind::Cdpc, 0),
    ];
    let benches: Vec<_> = ["tomcatv", "swim", "hydro2d", "su2cor"]
        .iter()
        .map(|&name| cdpc_workloads::by_name(name).expect("benchmark exists"))
        .collect();
    let mut jobs = Vec::new();
    for bench in &benches {
        let compiled = setup.compile_bench(bench, Preset::Base1MbDm, cpus, false, true);
        for &(policy, threshold) in &variants {
            let mut cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), policy);
            if threshold > 0 {
                cfg.recolor_threshold = threshold;
            }
            jobs.push(SweepJob::new(compiled.clone(), cfg));
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &["policy", "time", "conflict-stall", "recolorings", "vs PC"],
            &[16, 10, 14, 12, 8],
        );
        let mut pc_time = 0u64;
        for &(policy, threshold) in &variants {
            let r = reports.next().expect("one report per variant");
            if policy == PolicyKind::PageColoring {
                pc_time = r.elapsed_cycles;
            }
            let label = if policy == PolicyKind::DynamicRecolor {
                format!("dynamic(t={threshold})")
            } else {
                r.policy.clone()
            };
            println!(
                "{:<16} {:>10} {:>14} {:>12} {:>8}",
                label,
                table::cycles(r.elapsed_cycles),
                table::cycles(r.stalls.conflict),
                r.recolorings,
                table::ratio(pc_time as f64 / r.elapsed_cycles.max(1) as f64),
            );
        }
        println!();
    }
}
