//! Figure 9: validation on the AlphaServer-class machine.
//!
//! The paper validates its simulation results on an 8-CPU AlphaServer 8400
//! (350 MHz, 4 MB direct-mapped external caches), comparing four
//! configurations: bin hopping with *unaligned* data structures, bin
//! hopping, page coloring, and CDPC (both CDPC and page coloring are
//! realized by selectively touching pages over the native bin-hopping
//! kernel — our `CdpcTouch` policy). Neither static policy dominates the
//! other; CDPC performs at least as well as the best of the two in most
//! cases.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::PolicyKind;

fn main() {
    let setup = Setup::from_args();
    let cpu_counts = [1usize, 2, 4, 8];
    println!(
        "Figure 9: AlphaServer validation (4MB DM, 350MHz, scale {})\n",
        setup.scale
    );

    let benches = cdpc_workloads::all();
    // Four configurations per row: bin hopping with unaligned data, bin
    // hopping, page coloring, and CDPC-over-bin-hopping.
    let configs = [
        (PolicyKind::BinHopping, false),
        (PolicyKind::BinHopping, true),
        (PolicyKind::PageColoring, true),
        (PolicyKind::CdpcTouch, true),
    ];
    let mut jobs = Vec::new();
    for bench in &benches {
        for &cpus in &cpu_counts {
            for &(policy, aligned) in &configs {
                jobs.push(setup.job(bench, Preset::Alpha, cpus, policy, false, aligned));
            }
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &[
                "cpus", "BH-unal", "binhop", "pagecol", "CDPC", "CDPC/BH", "CDPC/PC",
            ],
            &[4, 9, 9, 9, 9, 8, 8],
        );
        for &cpus in &cpu_counts {
            let bh_u = reports.next().expect("one BH-unaligned report per row");
            let bh = reports.next().expect("one BH report per row");
            let pc = reports.next().expect("one PC report per row");
            let cdpc = reports.next().expect("one CDPC report per row");
            println!(
                "{:>4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
                cpus,
                table::cycles(bh_u.elapsed_cycles),
                table::cycles(bh.elapsed_cycles),
                table::cycles(pc.elapsed_cycles),
                table::cycles(cdpc.elapsed_cycles),
                table::ratio(cdpc.speedup_over(&bh)),
                table::ratio(cdpc.speedup_over(&pc)),
            );
        }
        println!();
    }
}
