//! Figure 3: page-level access patterns of the data segment.
//!
//! For tomcatv, swim, and hydro2d on 16 processors, plots which virtual
//! pages each processor touches, in **virtual address order** — showing
//! the sparse per-processor patterns that defeat standard page mapping
//! policies ("even though each processor accesses less than 1 MB of data,
//! it does so in a range that is significantly larger than the cache
//! size").

use cdpc_bench::{page_access_sets, render_access_plot, Preset, Setup};

fn main() {
    let setup = Setup::from_args();
    let cpus = 16;
    println!(
        "Figure 3: page-level access patterns in virtual-address order (16 CPUs, scale {})\n",
        setup.scale
    );
    for name in ["tomcatv", "swim", "hydro2d"] {
        let bench = cdpc_workloads::by_name(name).expect("benchmark exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        let page = setup.scaled_mem(Preset::Base1MbDm, cpus).page_size as u64;
        let sets = page_access_sets(&compiled, page);
        // All touched pages, in ascending virtual order.
        let mut positions: Vec<u64> = sets
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        positions.sort_unstable();
        let per_cpu: Vec<usize> = sets.iter().map(|s| s.len()).collect();
        println!(
            "== {} == ({} pages touched; {}..{} pages/cpu)",
            bench.name,
            positions.len(),
            per_cpu.iter().min().unwrap(),
            per_cpu.iter().max().unwrap()
        );
        print!("{}", render_access_plot(&positions, &sets, 96));
        println!();
    }
    println!("Each column is a bucket of consecutive virtual pages; '#' = the CPU");
    println!("touches at least one page in the bucket. Note the sparse, strided rows.");
}
