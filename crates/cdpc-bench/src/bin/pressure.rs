//! Memory pressure: what happens to CDPC when the OS cannot honor hints?
//!
//! The paper's §5 stage 3: "The operating system uses the hints and tries
//! to honor them as much as possible. For example, it may not be able to
//! honor the hints if the machine is under memory pressure." This
//! extension experiment quantifies the degradation: physical memory is
//! shrunk from generous (every hint honored) toward exactly-fits (the
//! allocator falls back to neighboring colors), and we track the hint
//! honor rate against the conflict stall.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::{PolicyKind, RunConfig, SweepJob};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    let bench = cdpc_workloads::by_name("tomcatv").expect("exists");
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);

    println!(
        "CDPC under memory pressure — tomcatv, {} CPUs, 1MB DM cache, scale {}\n",
        cpus, setup.scale
    );
    table::header(
        &["hogged", "honor rate", "time", "conflict-stall"],
        &[10, 10, 10, 14],
    );
    // A co-resident job pins a growing share of physical memory,
    // concentrated in the lower half of the color space.
    let hogs = [0.0, 0.2, 0.4, 0.6, 0.7];
    let mut jobs = Vec::new();
    for &hog in &hogs {
        let mut cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), PolicyKind::Cdpc);
        cfg.phys_slack = 4.0;
        cfg.hog_fraction = hog;
        jobs.push(SweepJob::new(compiled.clone(), cfg));
    }
    jobs.push(SweepJob::new(
        compiled.clone(),
        RunConfig::new(
            setup.scaled_mem(Preset::Base1MbDm, cpus),
            PolicyKind::PageColoring,
        ),
    ));
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for &hog in &hogs {
        let r = reports.next().expect("one report per hog fraction");
        println!(
            "{:>10} {:>10} {:>10} {:>14}",
            table::pct(hog),
            table::pct(r.fault_stats.honor_rate()),
            table::cycles(r.elapsed_cycles),
            table::cycles(r.stalls.conflict),
        );
    }
    println!();
    let pc = reports.next().expect("one page-coloring reference report");
    println!(
        "{:>10} {:>10} {:>10} {:>14}   <- page coloring reference",
        "-",
        "-",
        table::cycles(pc.elapsed_cycles),
        table::cycles(pc.stalls.conflict),
    );
    println!("\nHints degrade gracefully: the allocator falls back to the circularly");
    println!("nearest free color, so even when most low-half colors are hogged,");
    println!("CDPC stays ahead of the page-coloring baseline.");
}
