//! Miss attribution for one run: which array, on which page color, on
//! which CPU, causes which class of cache miss.
//!
//! Runs a single (benchmark, CPU count, policy) combination with the
//! attribution probe installed and reports the per-array/per-color miss
//! decomposition — the paper's conflict-tracing methodology (Figure 6's
//! "which arrays fight over the cache" question) as a tool.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin attrib -- tomcatv 8 cdpc
//! cargo run --release -p cdpc-bench --bin attrib -- swim 4 page-coloring --attrib swim.json
//! cargo run --release -p cdpc-bench --bin attrib -- tomcatv 4 cdpc --quick --attrib out.json
//! ```
//!
//! With `--attrib <path>` the JSON document is written to `path` and a
//! self-contained HTML report (inline SVG heatmap, offender table,
//! occupancy timeline) next to it with an `.html` extension. Without
//! `--attrib`, or with `--top`, the terminal summary is printed. `--quick`
//! is shorthand for `--scale 64`: the CI-friendly fast mode (the
//! simulator is deterministic, so quick-mode output is byte-stable and
//! diffable against a golden file).

use cdpc_bench::Setup;
use cdpc_machine::{summary_line, PolicyKind};

const USAGE: &str = "usage: attrib <benchmark> [cpus] [policy] [--scale N | --quick] \
                     [--attrib <path>] [--top] [--threads N]\n  \
                     policies: page-coloring | bin-hopping | cdpc | cdpc-touch | dynamic-recolor";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut setup = Setup::default();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value\n{USAGE}"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = value(&args, i, "--scale")
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("--scale needs a power-of-two value"));
                assert!(v.is_power_of_two(), "--scale must be a power of two");
                setup.scale = v;
                i += 2;
            }
            "--quick" => {
                setup.scale = 64;
                i += 1;
            }
            "--attrib" => {
                setup.obs.attrib = Some(value(&args, i, "--attrib").into());
                i += 2;
            }
            "--top" => {
                setup.obs.top = true;
                i += 1;
            }
            "--threads" => {
                setup.threads = value(&args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| panic!("--threads needs a thread count"));
                i += 2;
            }
            other => {
                assert!(!other.starts_with("--"), "unknown flag `{other}`\n{USAGE}");
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    // No output requested at all: default to the terminal summary.
    if setup.obs.attrib.is_none() {
        setup.obs.top = true;
    }

    let bench_name = positional.first().cloned().unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });
    let cpus: usize = positional
        .get(1)
        .map(|s| s.parse().expect("cpus must be a number"))
        .unwrap_or(8);
    let policy = match positional.get(2).map(String::as_str).unwrap_or("cdpc") {
        "page-coloring" | "pc" => PolicyKind::PageColoring,
        "bin-hopping" | "bh" => PolicyKind::BinHopping,
        "cdpc" => PolicyKind::Cdpc,
        "cdpc-touch" => PolicyKind::CdpcTouch,
        "dynamic-recolor" | "dynamic" => PolicyKind::DynamicRecolor,
        other => {
            eprintln!("unknown policy `{other}`\n{USAGE}");
            std::process::exit(2);
        }
    };
    let bench = cdpc_workloads::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{bench_name}`; try one of:");
        for b in cdpc_workloads::all() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    });

    let report = setup.run_bench(
        &bench,
        cdpc_bench::Preset::Base1MbDm,
        cpus,
        policy,
        false,
        true,
    );
    eprintln!("{}", summary_line(&report));
    if let Some(path) = &setup.obs.attrib {
        eprintln!(
            "attribution report: {} (+ {})",
            path.display(),
            path.with_extension("html").display()
        );
    }
}
