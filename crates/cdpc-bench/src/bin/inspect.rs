//! Inspect one run in full detail: a Figure-2-style breakdown for any
//! (benchmark, CPU count, policy) combination, with optional structured
//! exports.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin inspect -- tomcatv 8 cdpc
//! cargo run --release -p cdpc-bench --bin inspect -- swim 16 bin-hopping --scale 4
//! cargo run --release -p cdpc-bench --bin inspect -- swim 8 cdpc \
//!     --json report.json --trace trace.json --series series.csv
//! ```

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{render_report, PolicyKind};

fn main() {
    let (setup, positional) = Setup::from_args_with_positionals();
    let usage = "usage: inspect <benchmark> [cpus] [policy] [--scale N] \
                 [--json <path>] [--trace <path>] [--series <path>] \
                 [--sample-interval <cycles>]\n  \
                 policies: page-coloring | bin-hopping | cdpc | cdpc-touch | dynamic-recolor";
    let bench_name = positional.first().cloned().unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let cpus: usize = positional
        .get(1)
        .map(|s| s.parse().expect("cpus must be a number"))
        .unwrap_or(8);
    let policy = match positional.get(2).map(String::as_str).unwrap_or("cdpc") {
        "page-coloring" | "pc" => PolicyKind::PageColoring,
        "bin-hopping" | "bh" => PolicyKind::BinHopping,
        "cdpc" => PolicyKind::Cdpc,
        "cdpc-touch" => PolicyKind::CdpcTouch,
        "dynamic-recolor" | "dynamic" => PolicyKind::DynamicRecolor,
        other => {
            eprintln!("unknown policy `{other}`\n{usage}");
            std::process::exit(2);
        }
    };

    let bench = cdpc_workloads::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{bench_name}`; try one of:");
        for b in cdpc_workloads::all() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    });
    let report = setup.run_bench(&bench, Preset::Base1MbDm, cpus, policy, false, true);
    print!("{}", render_report(&report));
}
