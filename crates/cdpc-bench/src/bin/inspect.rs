//! Inspect one run in full detail: a Figure-2-style breakdown for any
//! (benchmark, CPU count, policy) combination.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin inspect -- tomcatv 8 cdpc
//! cargo run --release -p cdpc-bench --bin inspect -- swim 16 bin-hopping --scale 4
//! ```

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{render_report, run, PolicyKind, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut scale = 8u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a power-of-two value");
                i += 2;
            }
            "--full" => {
                scale = 1;
                i += 1;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    let usage = "usage: inspect <benchmark> [cpus] [policy] [--scale N]\n  \
                 policies: page-coloring | bin-hopping | cdpc | cdpc-touch | dynamic-recolor";
    let bench_name = positional.first().cloned().unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let cpus: usize = positional
        .get(1)
        .map(|s| s.parse().expect("cpus must be a number"))
        .unwrap_or(8);
    let policy = match positional.get(2).map(String::as_str).unwrap_or("cdpc") {
        "page-coloring" | "pc" => PolicyKind::PageColoring,
        "bin-hopping" | "bh" => PolicyKind::BinHopping,
        "cdpc" => PolicyKind::Cdpc,
        "cdpc-touch" => PolicyKind::CdpcTouch,
        "dynamic-recolor" | "dynamic" => PolicyKind::DynamicRecolor,
        other => {
            eprintln!("unknown policy `{other}`\n{usage}");
            std::process::exit(2);
        }
    };

    let setup = Setup { scale };
    let bench = cdpc_workloads::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{bench_name}`; try one of:");
        for b in cdpc_workloads::all() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    });
    let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
    let report = run(
        &compiled,
        &RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), policy),
    );
    print!("{}", render_report(&report));
}
