//! Lint the whole workload suite: run every `cdpc-analyze` static check
//! (races, false sharing, color conflicts, structural audits) over every
//! workload model at representative machine sizes, print the findings,
//! and emit a JSON report.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin analyze
//! cargo run --release -p cdpc-bench --bin analyze -- results/lint_report.json
//! cargo run --release -p cdpc-bench --bin analyze -- --scale 4
//! ```
//!
//! With a positional path the JSON report is written there; otherwise it
//! goes to stdout. Exits nonzero if any workload has an `Error` diagnostic
//! not covered by an `allow_lint` annotation — CI runs this as a gate.

use cdpc_bench::{lint_program, Preset, Setup};
use cdpc_compiler::CompileOptions;
use cdpc_obs::JsonValue;

/// CPU counts the paper's experiments sweep; lint the extremes.
const CPU_POINTS: [usize; 2] = [4, 16];

fn main() {
    let (setup, positional) = Setup::from_args_with_positionals();
    let out = positional.first();
    if positional.len() > 1 {
        eprintln!("usage: analyze [out.json] [--scale N]");
        std::process::exit(2);
    }

    let mut reports = Vec::new();
    let mut errors = 0usize;
    let mut warns = 0usize;
    for bench in cdpc_workloads::all() {
        for cpus in CPU_POINTS {
            let program = (bench.build)(setup.workload_scale());
            let mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
            let mut opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);
            opts.l1_cache_bytes = mem.l1d.size_bytes() as u64;
            let report = lint_program(&program, &opts, &mem);
            let (e, w, _) = report.counts();
            let allowed = report
                .of_severity(cdpc_analyze::Severity::Error)
                .count()
                .saturating_sub(e);
            errors += e;
            warns += w;
            let verdict = if e > 0 {
                "FAIL"
            } else if allowed > 0 {
                "allowed"
            } else if w > 0 {
                "warn"
            } else {
                "clean"
            };
            eprintln!(
                "{:<10} cpus {cpus:>2}: {verdict} ({e} errors, {allowed} allowed, {w} warnings)",
                bench.name
            );
            if !report.diagnostics.is_empty() {
                for line in report.render().lines() {
                    eprintln!("    {line}");
                }
            }
            reports.push(report.to_json());
        }
    }

    let mut doc = JsonValue::object();
    doc.push("scale", JsonValue::UInt(setup.scale));
    doc.push(
        "cpu_points",
        JsonValue::Array(
            CPU_POINTS
                .iter()
                .map(|&c| JsonValue::UInt(c as u64))
                .collect(),
        ),
    );
    doc.push("unallowed_errors", JsonValue::UInt(errors as u64));
    doc.push("reports", JsonValue::Array(reports));
    let text = doc.to_string_pretty();
    match out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }

    eprintln!("lint: {errors} unallowed errors, {warns} warnings across the suite");
    if errors > 0 {
        std::process::exit(1);
    }
}
