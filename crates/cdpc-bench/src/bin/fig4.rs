//! Figure 4: a step-by-step walkthrough of the CDPC algorithm.
//!
//! Reproduces the paper's didactic example — two data structures
//! partitioned between two CPUs on a machine with a four-color cache —
//! showing the output of each of the five steps.

use cdpc_core::machine::MachineParams;
use cdpc_core::ordering::{order_segments_within, order_sets};
use cdpc_core::segments::{build_segments, group_into_sets};
use cdpc_core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, GroupAccess, PartitionDirection,
    PartitionPolicy,
};
use cdpc_core::{cyclic, hints::ColorHints};
use cdpc_vm::addr::VirtAddr;

fn main() {
    // Accept the shared flags (--scale, --threads, the obs outputs) like
    // every other experiment binary; the walkthrough itself is a
    // fixed-size example that runs no simulations.
    let _ = cdpc_bench::Setup::from_args();
    let page = 4096u64;
    let a = ArrayId(0);
    let b = ArrayId(1);
    // Two 8-page arrays, block-partitioned across 2 CPUs, used together.
    let summary = AccessSummary {
        arrays: vec![
            ArrayInfo::new(a, "A", VirtAddr(0), 8 * page),
            ArrayInfo::new(b, "B", VirtAddr(8 * page), 8 * page),
        ],
        partitionings: vec![
            ArrayPartitioning::new(
                a,
                page,
                8,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            ),
            ArrayPartitioning::new(
                b,
                page,
                8,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            ),
        ],
        communications: vec![],
        groups: vec![GroupAccess::new(vec![a, b])],
        shared_arrays: vec![],
    };
    let machine = MachineParams::new(2, page as usize, 4 * page as usize, 1);
    println!("Figure 4: CDPC walkthrough — 2 CPUs, 2 arrays x 8 pages, 4 colors\n");

    println!("(a) Step 1 — uniform access segments:");
    let segments = build_segments(&summary, &machine).expect("valid summary");
    for s in &segments {
        println!(
            "    array {} [{:>6}..{:>6})  procs {}",
            summary.array(s.array).unwrap().name,
            s.start.0,
            s.end().0,
            s.procs
        );
    }

    println!("\n(b) Step 2 — uniform access sets, ordered:");
    let sets = order_sets(group_into_sets(segments));
    for set in &sets {
        println!(
            "    procs {}  ({} segments, {} bytes)",
            set.procs,
            set.segments.len(),
            set.total_bytes()
        );
    }

    println!("\n(c) Steps 3-4 — segment ordering and cyclic page layout:");
    let mut sets = sets;
    for set in &mut sets {
        order_segments_within(set, &summary);
    }
    let order = cyclic::emit_page_order(&sets, &summary, &machine);
    for p in &order.placements {
        println!(
            "    array {} -> {} pages, first page gets color {}",
            summary.array(p.array).unwrap().name,
            p.pages,
            p.start_color
        );
    }

    println!("\n(d) Step 5 — round-robin colors over the final order:");
    let hints = ColorHints::from_order(order, machine.colors());
    for (vpn, color) in hints.assignments() {
        println!("    vpn {:>2} -> color {}", vpn.0, color.0);
    }
    println!(
        "\nThe starting pages of A (vpn 0) and B (vpn 8) now differ in color:\n    A starts at {:?}, B at {:?}",
        hints.color_of(cdpc_vm::addr::Vpn(0)).unwrap(),
        hints.color_of(cdpc_vm::addr::Vpn(8)).unwrap()
    );
}
