//! Figure 8: compiler-inserted prefetching combined with CDPC.
//!
//! Four configurations per application — {page coloring, CDPC} × {no
//! prefetch, prefetch} on the base machine — exposing the paper's
//! complementarity claim: prefetching hides the misses CDPC cannot
//! eliminate (capacity, communication), while CDPC keeps prefetched lines
//! from being displaced and frees the bus bandwidth prefetching needs.
//! The tomcatv @4 CPUs row reproduces the headline interaction (paper:
//! CDPC +29%, PF +24%, both +88%).

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::PolicyKind;

fn main() {
    let setup = Setup::from_args();
    let cpu_counts = [1usize, 2, 4, 8, 16];
    let apps = [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
    ];
    println!(
        "Figure 8: CDPC x prefetching (1MB DM cache, scale {})\n",
        setup.scale
    );

    let benches: Vec<_> = apps
        .iter()
        .map(|&name| cdpc_workloads::by_name(name).expect("benchmark exists"))
        .collect();
    // Four configurations per row: {PC, CDPC} x {no prefetch, prefetch}.
    let configs = [
        (PolicyKind::PageColoring, false),
        (PolicyKind::PageColoring, true),
        (PolicyKind::Cdpc, false),
        (PolicyKind::Cdpc, true),
    ];
    let mut jobs = Vec::new();
    for bench in &benches {
        for &cpus in &cpu_counts {
            for &(policy, prefetch) in &configs {
                jobs.push(setup.job(bench, Preset::Base1MbDm, cpus, policy, prefetch, true));
            }
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &[
                "cpus",
                "PC",
                "PC+PF",
                "CDPC",
                "CDPC+PF",
                "PF gain",
                "CDPC gain",
                "both",
            ],
            &[4, 9, 9, 9, 9, 8, 9, 8],
        );
        for &cpus in &cpu_counts {
            let pc = reports.next().expect("one PC report per row");
            let pc_pf = reports.next().expect("one PC+PF report per row");
            let cd = reports.next().expect("one CDPC report per row");
            let cd_pf = reports.next().expect("one CDPC+PF report per row");
            println!(
                "{:>4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8}",
                cpus,
                table::cycles(pc.elapsed_cycles),
                table::cycles(pc_pf.elapsed_cycles),
                table::cycles(cd.elapsed_cycles),
                table::cycles(cd_pf.elapsed_cycles),
                table::ratio(pc_pf.speedup_over(&pc)),
                table::ratio(cd.speedup_over(&pc)),
                table::ratio(cd_pf.speedup_over(&pc)),
            );
        }
        println!();
    }
    println!("PF gain / CDPC gain / both = speedup over plain page coloring.");
}
