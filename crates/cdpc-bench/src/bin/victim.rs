//! Victim caches vs CDPC: can a small hardware buffer do CDPC's job?
//!
//! The paper answers the associativity version of this question in
//! Figure 7 ("set-associative caches reduce conflict hot spots \[but\] do
//! not address the issue of under-utilized caches"); this extension asks
//! the same about Jouppi-style victim caches. The victim buffer absorbs
//! ping-pong conflicts between a handful of lines but cannot make a
//! processor's sparse pages *use* the idle regions of the cache — only a
//! mapping policy can.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::{PolicyKind, RunConfig, SweepJob};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    println!(
        "Victim cache vs CDPC (1MB DM cache, {} CPUs, scale {})\n",
        cpus, setup.scale
    );
    let variants = [
        ("PC", 0usize, PolicyKind::PageColoring),
        ("PC + VC(8)", 8, PolicyKind::PageColoring),
        ("PC + VC(32)", 32, PolicyKind::PageColoring),
        ("CDPC", 0, PolicyKind::Cdpc),
        ("CDPC + VC(8)", 8, PolicyKind::Cdpc),
    ];
    let benches: Vec<_> = ["tomcatv", "swim", "hydro2d"]
        .iter()
        .map(|&name| cdpc_workloads::by_name(name).expect("benchmark exists"))
        .collect();
    let mut jobs = Vec::new();
    for bench in &benches {
        let compiled = setup.compile_bench(bench, Preset::Base1MbDm, cpus, false, true);
        for &(_, victim_lines, policy) in &variants {
            let mut mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
            mem.victim_cache_lines = victim_lines;
            jobs.push(SweepJob::new(compiled.clone(), RunConfig::new(mem, policy)));
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &["config", "time", "conflict-stall", "victim hits", "vs PC"],
            &[16, 10, 14, 12, 8],
        );
        let mut pc_time = 0u64;
        for &(label, _, _) in &variants {
            let r = reports.next().expect("one report per variant");
            if label == "PC" {
                pc_time = r.elapsed_cycles;
            }
            println!(
                "{:<16} {:>10} {:>14} {:>12} {:>8}",
                label,
                table::cycles(r.elapsed_cycles),
                table::cycles(r.stalls.conflict),
                r.mem_stats.aggregate().victim_hits,
                table::ratio(pc_time as f64 / r.elapsed_cycles.max(1) as f64),
            );
        }
        println!();
    }
    println!("Expected: victim caches trim the worst ping-pongs under page coloring");
    println!("but fall far short of CDPC; adding one on top of CDPC changes little");
    println!("(there is nothing left to absorb).");
}
