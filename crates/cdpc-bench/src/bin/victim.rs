//! Victim caches vs CDPC: can a small hardware buffer do CDPC's job?
//!
//! The paper answers the associativity version of this question in
//! Figure 7 ("set-associative caches reduce conflict hot spots \[but\] do
//! not address the issue of under-utilized caches"); this extension asks
//! the same about Jouppi-style victim caches. The victim buffer absorbs
//! ping-pong conflicts between a handful of lines but cannot make a
//! processor's sparse pages *use* the idle regions of the cache — only a
//! mapping policy can.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::{run, PolicyKind, RunConfig};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    println!(
        "Victim cache vs CDPC (1MB DM cache, {} CPUs, scale {})\n",
        cpus, setup.scale
    );
    for name in ["tomcatv", "swim", "hydro2d"] {
        let bench = cdpc_workloads::by_name(name).expect("benchmark exists");
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        println!("== {} ==", bench.name);
        table::header(
            &["config", "time", "conflict-stall", "victim hits", "vs PC"],
            &[16, 10, 14, 12, 8],
        );
        let mut pc_time = 0u64;
        for (label, victim_lines, policy) in [
            ("PC", 0usize, PolicyKind::PageColoring),
            ("PC + VC(8)", 8, PolicyKind::PageColoring),
            ("PC + VC(32)", 32, PolicyKind::PageColoring),
            ("CDPC", 0, PolicyKind::Cdpc),
            ("CDPC + VC(8)", 8, PolicyKind::Cdpc),
        ] {
            let mut mem = setup.scaled_mem(Preset::Base1MbDm, cpus);
            mem.victim_cache_lines = victim_lines;
            let r = run(&compiled, &RunConfig::new(mem, policy));
            if label == "PC" {
                pc_time = r.elapsed_cycles;
            }
            println!(
                "{:<16} {:>10} {:>14} {:>12} {:>8}",
                label,
                table::cycles(r.elapsed_cycles),
                table::cycles(r.stalls.conflict),
                r.mem_stats.aggregate().victim_hits,
                table::ratio(pc_time as f64 / r.elapsed_cycles.max(1) as f64),
            );
        }
        println!();
    }
    println!("Expected: victim caches trim the worst ping-pongs under page coloring");
    println!("but fall far short of CDPC; adding one on top of CDPC changes little");
    println!("(there is nothing left to absorb).");
}
