//! Ablation study: what does each CDPC algorithm step contribute?
//!
//! Not in the paper, but answers the obvious reviewer question: steps 2–4
//! of §5.2 are heuristics — how much of the win does each carry? We run
//! the three mapping-sensitive benchmarks with each step disabled in turn
//! and report conflict-stall fractions and total time.
//!
//! * `full`        — the paper's algorithm.
//! * `-set-order`  — step 2 off: access sets in discovery order.
//! * `-seg-order`  — step 3 off: segments in address order within sets.
//! * `-cyclic`     — step 4 off: no rotation; conflicting segments may
//!   share start colors.
//! * `none`        — all three off: pure "concatenate the segments and
//!   deal colors round-robin".

use cdpc_bench::{table, Preset, Setup};
use cdpc_core::HintOptions;
use cdpc_machine::{PolicyKind, RunConfig, SweepJob};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    let variants: [(&str, HintOptions); 5] = [
        ("full", HintOptions::FULL),
        (
            "-set-order",
            HintOptions {
                order_sets: false,
                ..HintOptions::FULL
            },
        ),
        (
            "-seg-order",
            HintOptions {
                order_segments: false,
                ..HintOptions::FULL
            },
        ),
        (
            "-cyclic",
            HintOptions {
                cyclic_layout: false,
                ..HintOptions::FULL
            },
        ),
        (
            "none",
            HintOptions {
                order_sets: false,
                order_segments: false,
                cyclic_layout: false,
            },
        ),
    ];

    println!(
        "CDPC step ablation (1MB DM cache, {} CPUs, scale {})\n",
        cpus, setup.scale
    );
    let benches: Vec<_> = ["tomcatv", "swim", "hydro2d"]
        .iter()
        .map(|&name| cdpc_workloads::by_name(name).expect("benchmark exists"))
        .collect();
    let mut jobs = Vec::new();
    for bench in &benches {
        let compiled = setup.compile_bench(bench, Preset::Base1MbDm, cpus, false, true);
        for (_, options) in variants {
            let mut cfg =
                RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), PolicyKind::Cdpc);
            cfg.hint_options = options;
            jobs.push(SweepJob::new(compiled.clone(), cfg));
        }
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &["variant", "time", "conflict-stall", "vs full"],
            &[12, 10, 14, 8],
        );
        let mut full_time = 0u64;
        for (label, _) in variants {
            let r = reports.next().expect("one report per variant");
            if label == "full" {
                full_time = r.elapsed_cycles;
            }
            println!(
                "{:>12} {:>10} {:>14} {:>8}",
                label,
                table::cycles(r.elapsed_cycles),
                table::cycles(r.stalls.conflict),
                table::ratio(full_time as f64 / r.elapsed_cycles.max(1) as f64),
            );
        }
        println!();
    }
    println!("vs full > 1.00x would mean the ablated variant beats the full");
    println!("algorithm — each step should be neutral-or-better to keep.");
}
