//! Regenerates `results/bench_snapshot.json`: simulator-throughput
//! self-profiles (refs/sec, event counts) for every workload at the
//! default scale, under the CDPC policy.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin bench_snapshot            # print
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --write # update file
//! ```
//!
//! The snapshot is a machine-local perf record, not a correctness
//! artifact: refs/sec depend on the host. What the checked-in file pins
//! is the schema and the simulated-side numbers (`simulated_refs`,
//! `simulated_cycles`, `events`), which are deterministic.

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{run_observed, PolicyKind, RunConfig};
use cdpc_obs::selfprof::{SelfProfile, Stopwatch};
use cdpc_obs::{CountingProbe, JsonValue, Probe};

const SNAPSHOT_PATH: &str = "results/bench_snapshot.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write");
    let setup = Setup::default(); // scale 8, the experiments' default
    let cpus = 8;

    let mut workloads = Vec::new();
    for bench in cdpc_workloads::all() {
        let compiled = setup.compile_bench(&bench, Preset::Base1MbDm, cpus, false, true);
        let cfg = RunConfig::new(setup.scaled_mem(Preset::Base1MbDm, cpus), PolicyKind::Cdpc);
        let mut probe = CountingProbe::default();
        let watch = Stopwatch::start();
        let (report, _) = run_observed(&compiled, &cfg, &mut probe, None);
        let profile = SelfProfile {
            name: bench.name.to_string(),
            wall_secs: watch.elapsed_secs(),
            simulated_refs: report.simulated_refs,
            simulated_cycles: report.elapsed_cycles,
            events: probe.event_count(),
        };
        eprintln!(
            "{:<10} {:>12} refs  {:>12.0} refs/s  {:>10} events",
            profile.name,
            profile.simulated_refs,
            profile.refs_per_sec(),
            profile.events
        );
        workloads.push(profile.to_json());
    }

    let mut doc = JsonValue::object();
    doc.push("scale", JsonValue::UInt(setup.scale));
    doc.push("cpus", JsonValue::UInt(cpus as u64));
    doc.push("policy", JsonValue::Str("cdpc".into()));
    doc.push("workloads", JsonValue::Array(workloads));
    let text = doc.to_string_pretty();
    if write {
        std::fs::write(SNAPSHOT_PATH, &text)
            .unwrap_or_else(|e| panic!("cannot write `{SNAPSHOT_PATH}`: {e}"));
        eprintln!("wrote {SNAPSHOT_PATH}");
    } else {
        print!("{text}");
    }
}
