//! Regenerates `results/bench_snapshot.json`: simulator-throughput
//! self-profiles (refs/sec, event counts) for every workload at the
//! default scale under the CDPC policy, plus the miss-storm microbenchmark
//! that bounds the memory-system hot path.
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin bench_snapshot             # print
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --write  # update file
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --quick  # microbench only
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --quick --check
//! ```
//!
//! `--quick` skips the per-workload simulations and runs only the
//! miss-storm microbenchmark; `--check` then compares its throughput
//! against the committed snapshot and exits non-zero on a regression of
//! more than 30% — the CI smoke gate for the simulator hot path.
//!
//! The snapshot is a machine-local perf record, not a correctness
//! artifact: refs/sec depend on the host. What the checked-in file pins
//! is the schema and the simulated-side numbers (`simulated_refs`,
//! `simulated_cycles`, `events`), which are deterministic.

use cdpc_bench::{Preset, Setup};
use cdpc_machine::{run_observed, sweep_map, PolicyKind};
use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
use cdpc_obs::selfprof::{time_iters, SelfProfile, Stopwatch};
use cdpc_obs::{CountingProbe, JsonValue, Probe};
use cdpc_vm::addr::{PhysAddr, VirtAddr};

const SNAPSHOT_PATH: &str = "results/bench_snapshot.json";

/// Throughput below `committed * (1 - REGRESSION_TOLERANCE)` fails
/// `--check`.
const REGRESSION_TOLERANCE: f64 = 0.30;

fn small_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = cdpc_memsim::CacheConfig::new(128 << 10, 128, 1);
    m.l1d = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m
}

/// The worst case for the memory system: every reference misses and goes
/// over the contended bus (same shape as `benches/memsim.rs`).
fn miss_storm(cpus: usize) -> (f64, u64) {
    const REFS: u64 = 2_000;
    let mut mem = MemorySystem::new(small_cfg(cpus));
    let mut t = 0u64;
    let mut addr = 0u64;
    let timing = time_iters(3, 20, || {
        for _ in 0..REFS {
            t += 50;
            addr += 128; // new line every time: guaranteed miss
            let cpu = (addr / 128) as usize % cpus;
            std::hint::black_box(mem.access(
                cpu,
                t,
                VirtAddr(addr),
                PhysAddr(addr),
                AccessKind::Read,
            ));
        }
    });
    (timing.iters_per_sec() * REFS as f64, REFS)
}

/// Runs the miss-storm microbenchmark for 1/4/16 CPUs, returning
/// `(name, refs_per_sec)` pairs. Each configuration is measured three
/// times and the best run is kept: throughput noise on a shared host is
/// one-sided (interference only slows the run down), so the maximum is
/// the stable estimator.
fn run_microbench() -> Vec<(String, f64)> {
    [1usize, 4, 16]
        .iter()
        .map(|&cpus| {
            let mut best = 0.0f64;
            let mut refs = 0;
            for _ in 0..3 {
                let (refs_per_sec, r) = miss_storm(cpus);
                best = best.max(refs_per_sec);
                refs = r;
            }
            eprintln!(
                "miss_storm/{cpus}p {:>12} refs  {:>12.0} refs/s (best of 3)",
                refs * 20,
                best
            );
            (format!("miss_storm_{cpus}p"), best)
        })
        .collect()
}

/// Compares fresh microbench throughput against the committed snapshot.
/// Returns false (check failed) on a >30% regression of any entry.
fn check_against_snapshot(fresh: &[(String, f64)]) -> bool {
    let text = match std::fs::read_to_string(SNAPSHOT_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--check: cannot read `{SNAPSHOT_PATH}` ({e}); nothing to compare");
            return true;
        }
    };
    let doc = JsonValue::parse(&text).expect("committed snapshot must be valid JSON");
    let Some(entries) = doc.get("microbench").and_then(|m| m.as_array()) else {
        eprintln!("--check: committed snapshot has no `microbench` section; skipping");
        return true;
    };
    let mut ok = true;
    for (name, measured) in fresh {
        let committed = entries.iter().find_map(|e| {
            (e.get("name").and_then(|n| n.as_str()) == Some(name))
                .then(|| e.get("refs_per_sec").and_then(|r| r.as_f64()))
                .flatten()
        });
        let Some(committed) = committed else {
            eprintln!("--check: `{name}` not in committed snapshot; skipping");
            continue;
        };
        let floor = committed * (1.0 - REGRESSION_TOLERANCE);
        let verdict = if *measured >= floor {
            "ok"
        } else {
            "REGRESSED"
        };
        eprintln!(
            "--check: {name}: {measured:.0} refs/s vs committed {committed:.0} (floor {floor:.0}) {verdict}"
        );
        ok &= *measured >= floor;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write = false;
    let mut quick = false;
    let mut check = false;
    let mut setup = Setup::default(); // scale 8, the experiments' default
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--write" => write = true,
            "--quick" => quick = true,
            "--check" => check = true,
            "--threads" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("--threads needs a thread count"));
                assert!(v >= 1, "--threads must be at least 1");
                setup.threads = v;
            }
            other => panic!(
                "unknown argument `{other}` (supported: --write, --quick, --check, --threads N)"
            ),
        }
        i += 1;
    }
    assert!(
        !(quick && write),
        "--quick skips the workload profiles; refusing to overwrite the full snapshot"
    );
    let cpus = 8;

    let micro = run_microbench();
    if check && !check_against_snapshot(&micro) {
        eprintln!("--check: miss-storm throughput regressed more than 30%");
        std::process::exit(1);
    }

    let workloads: Vec<JsonValue> = if quick {
        Vec::new()
    } else {
        let benches = cdpc_workloads::all();
        let jobs: Vec<_> = benches
            .iter()
            .map(|bench| {
                setup.job(
                    bench,
                    Preset::Base1MbDm,
                    cpus,
                    PolicyKind::Cdpc,
                    false,
                    true,
                )
            })
            .collect();
        let profiles = sweep_map(&jobs, setup.threads, |job| {
            let mut probe = CountingProbe::default();
            let watch = Stopwatch::start();
            let (report, _) = run_observed(&job.compiled, &job.cfg, &mut probe, None);
            (report, probe.event_count(), watch.elapsed_secs())
        });
        benches
            .iter()
            .zip(profiles)
            .map(|(bench, (report, events, wall_secs))| {
                let profile = SelfProfile {
                    name: bench.name.to_string(),
                    wall_secs,
                    simulated_refs: report.simulated_refs,
                    simulated_cycles: report.elapsed_cycles,
                    events,
                };
                eprintln!(
                    "{:<10} {:>12} refs  {:>12.0} refs/s  {:>10} events",
                    profile.name,
                    profile.simulated_refs,
                    profile.refs_per_sec(),
                    profile.events
                );
                profile.to_json()
            })
            .collect()
    };

    if quick && !write {
        return; // microbench (and optional check) was the whole job
    }

    let mut doc = JsonValue::object();
    doc.push("scale", JsonValue::UInt(setup.scale));
    doc.push("cpus", JsonValue::UInt(cpus as u64));
    doc.push("policy", JsonValue::Str("cdpc".into()));
    doc.push(
        "microbench",
        JsonValue::Array(
            micro
                .iter()
                .map(|(name, refs_per_sec)| {
                    let mut e = JsonValue::object();
                    e.push("name", JsonValue::Str(name.clone()));
                    e.push(
                        "refs_per_sec",
                        JsonValue::Float((refs_per_sec * 1000.0).round() / 1000.0),
                    );
                    e
                })
                .collect(),
        ),
    );
    doc.push("workloads", JsonValue::Array(workloads));
    let text = doc.to_string_pretty();
    if write {
        std::fs::write(SNAPSHOT_PATH, &text)
            .unwrap_or_else(|e| panic!("cannot write `{SNAPSHOT_PATH}`: {e}"));
        eprintln!("wrote {SNAPSHOT_PATH}");
    } else {
        print!("{text}");
    }
}
