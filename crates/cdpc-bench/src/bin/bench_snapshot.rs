//! Regenerates `results/bench_snapshot.json`: simulator-throughput
//! self-profiles (refs/sec, event counts) for every workload at the
//! default scale under the CDPC policy, plus microbenchmarks covering each
//! hot path: the miss-storm bound on the memory system, the streaming
//! trace generator (`trace_stream`), the L1-hit fast path (`l1_hit_1p`),
//! and end-to-end run-loop measurements (`run_loop_tomcatv_8p`, plus
//! `_par2`/`_par4` variants through the epoch-parallel engine).
//!
//! ```text
//! cargo run --release -p cdpc-bench --bin bench_snapshot             # print
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --write  # update file
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --quick  # microbench only
//! cargo run --release -p cdpc-bench --bin bench_snapshot -- --quick --check
//! ```
//!
//! `--quick` skips the per-workload simulations and runs only the
//! microbenchmarks; `--check` then compares their throughput against the
//! committed snapshot and exits non-zero on a regression of more than
//! 50% — the CI smoke gate for the simulator hot paths, including the
//! end-to-end tomcatv refs/sec metric. The band is wide because shared
//! runners are noisy; a genuine hot-path regression costs 2x or more.
//!
//! The snapshot is a machine-local perf record, not a correctness
//! artifact: refs/sec depend on the host. What the checked-in file pins
//! is the schema and the simulated-side numbers (`simulated_refs`,
//! `simulated_cycles`, `events`), which are deterministic.

use cdpc_bench::{Preset, Setup};
use cdpc_compiler::ir::AccessPattern;
use cdpc_compiler::locality::AccessPrefetch;
use cdpc_compiler::trace::{OpSpec, ResolvedAccess, TraceOp};
use cdpc_machine::{
    run, run_attributed, run_observed, run_sweep_memo, sweep_map, PolicyKind, ResultCache,
};
use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
use cdpc_obs::selfprof::{time_iters, SelfProfile, Stopwatch};
use cdpc_obs::{CountingProbe, JsonValue, Probe};
use cdpc_vm::addr::{PhysAddr, VirtAddr};

const SNAPSHOT_PATH: &str = "results/bench_snapshot.json";

/// Throughput below `committed * (1 - REGRESSION_TOLERANCE)` fails
/// `--check`. The band is wide on purpose: shared CI runners (and the
/// oversubscribed 4/16-thread miss storms in particular) swing well over
/// 30% between scheduling windows, while the regressions this gate
/// exists to catch — losing a hot-path optimization — cost 2x or more.
const REGRESSION_TOLERANCE: f64 = 0.50;

/// `--check` fails if the warm (all-hits) pass of the cached Figure-6
/// sweep is not at least this many times faster than the cold
/// (simulate-and-store) pass. Unlike the throughput floors this is a
/// *measured ratio* on the same host in the same process, so it is
/// immune to runner speed — a warm pass only loses its advantage if the
/// cache stops hitting or simulation sneaks back in.
const MIN_CACHED_SWEEP_SPEEDUP: f64 = 5.0;

fn small_cfg(cpus: usize) -> MemConfig {
    let mut m = MemConfig::paper_base(cpus);
    m.l2 = cdpc_memsim::CacheConfig::new(128 << 10, 128, 1);
    m.l1d = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m.l1i = cdpc_memsim::CacheConfig::new(4 << 10, 32, 2);
    m
}

/// The worst case for the memory system: every reference misses and goes
/// over the contended bus (same shape as `benches/memsim.rs`).
fn miss_storm(cpus: usize) -> (f64, u64) {
    const REFS: u64 = 2_000;
    let mut mem = MemorySystem::new(small_cfg(cpus));
    let mut t = 0u64;
    let mut addr = 0u64;
    let timing = time_iters(3, 20, || {
        for _ in 0..REFS {
            t += 50;
            addr += 128; // new line every time: guaranteed miss
            let cpu = (addr / 128) as usize % cpus;
            std::hint::black_box(mem.access(
                cpu,
                t,
                VirtAddr(addr),
                PhysAddr(addr),
                AccessKind::Read,
            ));
        }
    });
    (timing.iters_per_sec() * REFS as f64, REFS)
}

/// The opposite extreme from the miss storm: a working set of 32 lines
/// that fits the L1 with room to spare, so after warm-up every reference
/// takes the early L1-hit return in `MemorySystem::access`.
fn l1_hit_storm() -> (f64, u64) {
    const REFS: u64 = 2_000;
    const LINES: u64 = 32;
    let mut mem = MemorySystem::new(small_cfg(1));
    let mut t = 0u64;
    for i in 0..LINES {
        t += 50;
        let a = i * 32;
        mem.access(0, t, VirtAddr(a), PhysAddr(a), AccessKind::Read);
    }
    let timing = time_iters(3, 20, || {
        for i in 0..REFS {
            t += 1;
            let a = (i % LINES) * 32;
            std::hint::black_box(mem.access(0, t, VirtAddr(a), PhysAddr(a), AccessKind::Read));
        }
    });
    (timing.iters_per_sec() * REFS as f64, REFS)
}

/// A spec exercising every trace generator: cyclic ifetch, instruction
/// work, software-pipelined prefetches, a wraparound stencil, a
/// whole-array stream, and an irregular (xorshift) stream. Mirrors the
/// zero-allocation test in `cdpc-compiler`.
fn trace_spec() -> OpSpec {
    let acc = |pattern, is_write, prefetch| ResolvedAccess {
        base: 0x10_000,
        bytes: 64 << 10,
        pattern,
        is_write,
        prefetch,
    };
    OpSpec {
        lo: 0,
        hi: 256,
        total_iters: 256,
        accesses: vec![
            acc(
                AccessPattern::Stencil {
                    unit_bytes: 256,
                    halo_units: 1,
                    wraparound: true,
                },
                false,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 2,
                },
            ),
            acc(
                AccessPattern::Partitioned { unit_bytes: 256 },
                true,
                AccessPrefetch {
                    enabled: true,
                    lookahead: 0,
                },
            ),
            acc(AccessPattern::WholeArray, false, AccessPrefetch::OFF),
            acc(
                AccessPattern::Irregular {
                    touches_per_iter: 4,
                },
                true,
                AccessPrefetch::OFF,
            ),
        ],
        work_per_iter: 100,
        code_base: 0x100_000,
        code_bytes: 256,
        granularity: 32,
        l2_line: 128,
        seed: 42,
    }
}

/// Steady-state throughput of the streaming trace generator: ops drained
/// per second from a rewound `OpCursor` (zero allocations per drain).
fn trace_stream() -> (f64, u64) {
    let spec = trace_spec();
    let ops_per_drain = spec.ops().count() as u64;
    let mut cursor = spec.ops();
    cursor.by_ref().for_each(drop); // warm the scratch buffer
    let timing = time_iters(3, 50, || {
        cursor.rewind();
        let mut sum = 0u64;
        for op in cursor.by_ref() {
            if let TraceOp::Instr(n) = op {
                sum += n;
            }
        }
        std::hint::black_box(sum);
    });
    (timing.iters_per_sec() * ops_per_drain as f64, ops_per_drain)
}

/// End-to-end run-loop throughput: a full tomcatv simulation at the
/// snapshot's scale on 8 CPUs under CDPC, reported as simulated refs per
/// wall second. This is the number the batching scheduler and the
/// micro-translation-cache exist to move. `sim_threads > 1` sends the
/// same run through the epoch-parallel engine (bit-identical reports;
/// only the wall clock may differ), so the `_par2`/`_par4` entries track
/// the engine's overhead or speedup against the serial baseline on
/// whatever host regenerated the snapshot.
fn run_loop_tomcatv(setup: &Setup, sim_threads: usize) -> (f64, u64) {
    let bench = cdpc_workloads::by_name("tomcatv").expect("tomcatv exists");
    let mut job = setup.job(&bench, Preset::Base1MbDm, 8, PolicyKind::Cdpc, false, true);
    job.cfg.sim_threads = sim_threads;
    let refs = run(&job.compiled, &job.cfg).simulated_refs;
    let timing = time_iters(1, 3, || {
        std::hint::black_box(run(&job.compiled, &job.cfg));
    });
    (timing.iters_per_sec() * refs as f64, refs)
}

/// The same end-to-end run with the miss-attribution probe installed:
/// its refs/s against `run_loop_tomcatv_8p`'s measures the attribution
/// overhead (target: within 5% — the probe is a handful of array writes
/// per L2 miss, and misses are rare next to the hits dominating the run).
fn run_loop_tomcatv_attrib(setup: &Setup) -> (f64, u64) {
    let bench = cdpc_workloads::by_name("tomcatv").expect("tomcatv exists");
    let job = setup.job(&bench, Preset::Base1MbDm, 8, PolicyKind::Cdpc, false, true);
    let refs = run(&job.compiled, &job.cfg).simulated_refs;
    let timing = time_iters(1, 3, || {
        std::hint::black_box(run_attributed(&job.compiled, &job.cfg));
    });
    (timing.iters_per_sec() * refs as f64, refs)
}

/// The persistent result cache measured end to end on a Figure-6-shaped
/// sweep (tomcatv/swim/hydro2d × three policies × {4, 8} CPUs): one cold
/// pass that simulates every point and stores it into a fresh cache, then
/// one warm pass answered entirely from disk. Emits three entries —
/// `sweep_fig6_cold` and `sweep_fig6_warm` (simulated refs per wall
/// second) and `sweep_cached_speedup` (the cold:warm wall-time ratio,
/// gated by [`MIN_CACHED_SWEEP_SPEEDUP`] under `--check`).
///
/// Scale 64 keeps the cold pass to tens of milliseconds; the ratio is
/// what matters and only grows at bigger scales (simulation cost scales
/// with refs, cache hits with file size).
fn sweep_cached_vs_cold(threads: usize) -> Vec<(String, f64)> {
    let setup = Setup::with_scale(64);
    let mut jobs = Vec::new();
    for name in ["tomcatv", "swim", "hydro2d"] {
        let bench = cdpc_workloads::by_name(name).expect("exists");
        for cpus in [4usize, 8] {
            for policy in [
                PolicyKind::PageColoring,
                PolicyKind::BinHopping,
                PolicyKind::Cdpc,
            ] {
                jobs.push(setup.job(&bench, Preset::Base1MbDm, cpus, policy, false, true));
            }
        }
    }
    let dir = std::env::temp_dir().join(format!("cdpc-bench-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = ResultCache::new(&dir);

    let watch = Stopwatch::start();
    let (cold_reports, cold_stats) = run_sweep_memo(&jobs, threads, Some(&cache));
    let cold_secs = watch.elapsed_secs().max(1e-9);
    assert_eq!(cold_stats.hits, 0, "cold pass starts from an empty cache");

    let watch = Stopwatch::start();
    let (warm_reports, warm_stats) = run_sweep_memo(&jobs, threads, Some(&cache));
    let warm_secs = watch.elapsed_secs().max(1e-9);
    assert_eq!(warm_stats.misses, 0, "warm pass must hit on every point");
    assert_eq!(cold_reports, warm_reports, "cache must be bit-faithful");
    std::fs::remove_dir_all(&dir).ok();

    let refs: u64 = cold_reports.iter().map(|r| r.simulated_refs).sum();
    let speedup = cold_secs / warm_secs;
    eprintln!(
        "sweep_fig6 ({} points)   cold {:>8.1} ms   warm {:>8.3} ms   speedup {speedup:>7.1}x",
        jobs.len(),
        cold_secs * 1e3,
        warm_secs * 1e3,
    );
    vec![
        ("sweep_fig6_cold".to_string(), refs as f64 / cold_secs),
        ("sweep_fig6_warm".to_string(), refs as f64 / warm_secs),
        ("sweep_cached_speedup".to_string(), speedup),
    ]
}

/// Measures one microbenchmark three times and keeps the best run:
/// throughput noise on a shared host is one-sided (interference only
/// slows the run down), so the maximum is the stable estimator.
fn best_of_3(name: &str, mut f: impl FnMut() -> (f64, u64)) -> (String, f64) {
    let mut best = 0.0f64;
    let mut refs = 0;
    for _ in 0..3 {
        let (refs_per_sec, r) = f();
        best = best.max(refs_per_sec);
        refs = r;
    }
    eprintln!("{name:<22} {refs:>10} refs/iter  {best:>12.0} refs/s (best of 3)");
    (name.to_string(), best)
}

/// Runs every microbenchmark, returning `(name, refs_per_sec)` pairs.
fn run_microbench(setup: &Setup) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    for cpus in [1usize, 4, 16] {
        entries.push(best_of_3(&format!("miss_storm_{cpus}p"), || {
            miss_storm(cpus)
        }));
    }
    entries.push(best_of_3("l1_hit_1p", l1_hit_storm));
    entries.push(best_of_3("trace_stream", trace_stream));
    entries.push(best_of_3("run_loop_tomcatv_8p", || {
        run_loop_tomcatv(setup, 1)
    }));
    entries.push(best_of_3("run_loop_tomcatv_8p_par2", || {
        run_loop_tomcatv(setup, 2)
    }));
    entries.push(best_of_3("run_loop_tomcatv_8p_par4", || {
        run_loop_tomcatv(setup, 4)
    }));
    entries.push(best_of_3("run_loop_tomcatv_8p_attrib", || {
        run_loop_tomcatv_attrib(setup)
    }));
    entries.extend(sweep_cached_vs_cold(setup.threads));
    entries
}

/// The measured-ratio gate on the cached sweep: unlike the throughput
/// floors, `sweep_cached_speedup` is compared against an absolute minimum
/// rather than the committed snapshot, because both sides of the ratio
/// come from the same process on the same host.
fn check_cached_speedup(fresh: &[(String, f64)]) -> bool {
    let Some((_, speedup)) = fresh.iter().find(|(n, _)| n == "sweep_cached_speedup") else {
        return true;
    };
    let ok = *speedup >= MIN_CACHED_SWEEP_SPEEDUP;
    eprintln!(
        "--check: sweep_cached_speedup: {speedup:.1}x vs required {MIN_CACHED_SWEEP_SPEEDUP:.1}x {}",
        if ok { "ok" } else { "REGRESSED" }
    );
    ok
}

/// Compares fresh microbench throughput against the committed snapshot.
/// Returns false (check failed) on a >50% regression of any entry.
fn check_against_snapshot(fresh: &[(String, f64)]) -> bool {
    let text = match std::fs::read_to_string(SNAPSHOT_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--check: cannot read `{SNAPSHOT_PATH}` ({e}); nothing to compare");
            return true;
        }
    };
    let doc = JsonValue::parse(&text).expect("committed snapshot must be valid JSON");
    let Some(entries) = doc.get("microbench").and_then(|m| m.as_array()) else {
        eprintln!("--check: committed snapshot has no `microbench` section; skipping");
        return true;
    };
    let mut ok = true;
    for (name, measured) in fresh {
        // The warm pass is microseconds of JSON parsing and the speedup is
        // a host-dependent ratio (disk vs CPU speed); both swing far more
        // than 50% between runners. The speedup has its own absolute gate
        // (`check_cached_speedup`); the cold pass is simulation-bound and
        // stays under the relative check.
        if name == "sweep_fig6_warm" || name == "sweep_cached_speedup" {
            continue;
        }
        let committed = entries.iter().find_map(|e| {
            (e.get("name").and_then(|n| n.as_str()) == Some(name))
                .then(|| e.get("refs_per_sec").and_then(|r| r.as_f64()))
                .flatten()
        });
        let Some(committed) = committed else {
            eprintln!("--check: `{name}` not in committed snapshot; skipping");
            continue;
        };
        let floor = committed * (1.0 - REGRESSION_TOLERANCE);
        let verdict = if *measured >= floor {
            "ok"
        } else {
            "REGRESSED"
        };
        eprintln!(
            "--check: {name}: {measured:.0} refs/s vs committed {committed:.0} (floor {floor:.0}) {verdict}"
        );
        ok &= *measured >= floor;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write = false;
    let mut quick = false;
    let mut check = false;
    let mut setup = Setup::default(); // scale 8, the experiments' default
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--write" => write = true,
            "--quick" => quick = true,
            "--check" => check = true,
            "--threads" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("--threads needs a thread count"));
                assert!(v >= 1, "--threads must be at least 1");
                setup.threads = v;
            }
            "--sim-threads" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("--sim-threads needs a thread count"));
                assert!(v >= 1, "--sim-threads must be at least 1");
                setup.sim_threads = v;
            }
            other => panic!(
                "unknown argument `{other}` (supported: --write, --quick, --check, \
                 --threads N, --sim-threads N)"
            ),
        }
        i += 1;
    }
    assert!(
        !(quick && write),
        "--quick skips the workload profiles; refusing to overwrite the full snapshot"
    );
    let cpus = 8;

    let micro = run_microbench(&setup);
    if check && !check_against_snapshot(&micro) {
        eprintln!("--check: microbenchmark throughput regressed more than 50%");
        std::process::exit(1);
    }
    if check && !check_cached_speedup(&micro) {
        eprintln!(
            "--check: cached sweep speedup fell below {MIN_CACHED_SWEEP_SPEEDUP:.0}x — the \
             result cache is no longer paying for itself"
        );
        std::process::exit(1);
    }

    let workloads: Vec<JsonValue> = if quick {
        Vec::new()
    } else {
        let benches = cdpc_workloads::all();
        let jobs: Vec<_> = benches
            .iter()
            .map(|bench| {
                setup.job(
                    bench,
                    Preset::Base1MbDm,
                    cpus,
                    PolicyKind::Cdpc,
                    false,
                    true,
                )
            })
            .collect();
        // Two sweeps, keeping each workload's faster wall time: the
        // simulation is deterministic (identical reports and event
        // counts), and host noise is one-sided, so the minimum is the
        // stable wall-clock estimator — same reasoning as the
        // microbenchmarks' best-of-3.
        let sweep = || {
            sweep_map(&jobs, setup.threads, |job| {
                let mut probe = CountingProbe::default();
                let watch = Stopwatch::start();
                let (report, _) = run_observed(&job.compiled, &job.cfg, &mut probe, None);
                (report, probe.event_count(), watch.elapsed_secs())
            })
        };
        let profiles: Vec<_> = sweep()
            .into_iter()
            .zip(sweep())
            .map(|(a, b)| if a.2 <= b.2 { a } else { b })
            .collect();
        benches
            .iter()
            .zip(profiles)
            .map(|(bench, (report, events, wall_secs))| {
                let profile = SelfProfile {
                    name: bench.name.to_string(),
                    wall_secs,
                    simulated_refs: report.simulated_refs,
                    simulated_cycles: report.elapsed_cycles,
                    events,
                };
                eprintln!(
                    "{:<10} {:>12} refs  {:>12.0} refs/s  {:>10} events",
                    profile.name,
                    profile.simulated_refs,
                    profile.refs_per_sec(),
                    profile.events
                );
                profile.to_json()
            })
            .collect()
    };

    if quick && !write {
        return; // microbench (and optional check) was the whole job
    }

    let mut doc = JsonValue::object();
    doc.push("scale", JsonValue::UInt(setup.scale));
    doc.push("cpus", JsonValue::UInt(cpus as u64));
    doc.push("policy", JsonValue::Str("cdpc".into()));
    doc.push(
        "microbench",
        JsonValue::Array(
            micro
                .iter()
                .map(|(name, refs_per_sec)| {
                    let mut e = JsonValue::object();
                    e.push("name", JsonValue::Str(name.clone()));
                    e.push(
                        "refs_per_sec",
                        JsonValue::Float((refs_per_sec * 1000.0).round() / 1000.0),
                    );
                    e
                })
                .collect(),
        ),
    );
    doc.push("workloads", JsonValue::Array(workloads));
    let text = doc.to_string_pretty();
    if write {
        std::fs::write(SNAPSHOT_PATH, &text)
            .unwrap_or_else(|e| panic!("cannot write `{SNAPSHOT_PATH}`: {e}"));
        eprintln!("wrote {SNAPSHOT_PATH}");
    } else {
        print!("{text}");
    }
}
