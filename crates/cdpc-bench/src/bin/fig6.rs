//! Figure 6: impact of compiler-directed page coloring.
//!
//! For each application and processor count, compares a standard page
//! coloring policy with CDPC on the base machine (1 MB direct-mapped
//! external cache): combined execution time, its breakdown, and the
//! speedup of CDPC over page coloring. The paper omits apsi and fpppp
//! (CDPC has no effect); we include them as a check that the effect is
//! indeed absent.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::PolicyKind;

fn main() {
    let setup = Setup::from_args();
    let cpu_counts = [1usize, 2, 4, 8, 16];
    println!("Figure 6: page coloring (PC) vs compiler-directed page coloring (CDPC)");
    println!("1MB direct-mapped external cache, scale {}\n", setup.scale);

    let benches = cdpc_workloads::all();
    let jobs: Vec<_> = benches
        .iter()
        .flat_map(|bench| {
            cpu_counts.iter().flat_map(|&cpus| {
                [PolicyKind::PageColoring, PolicyKind::Cdpc]
                    .map(|policy| setup.job(bench, Preset::Base1MbDm, cpus, policy, false, true))
            })
        })
        .collect();
    let mut reports = setup.run_jobs(&jobs).into_iter();

    for bench in &benches {
        println!("== {} ==", bench.name);
        table::header(
            &[
                "cpus",
                "PC time",
                "CDPC time",
                "PC repl%",
                "CDPC repl%",
                "speedup",
            ],
            &[4, 10, 10, 9, 10, 8],
        );
        for &cpus in &cpu_counts {
            let pc = reports.next().expect("one PC report per row");
            let cdpc = reports.next().expect("one CDPC report per row");
            let repl_pct = |r: &cdpc_machine::RunReport| {
                let total = r.exec_cycles + r.stalls.total() + r.overheads.total();
                r.stalls.replacement() as f64 / total.max(1) as f64
            };
            println!(
                "{:>4} {:>10} {:>10} {:>9} {:>10} {:>8}",
                cpus,
                table::cycles(pc.elapsed_cycles),
                table::cycles(cdpc.elapsed_cycles),
                table::pct(repl_pct(&pc)),
                table::pct(repl_pct(&cdpc)),
                table::ratio(cdpc.speedup_over(&pc)),
            );
        }
        println!();
    }
}
