//! Table 2: execution times and SPEC95fp-style rating under the three
//! page-mapping policies on the AlphaServer-class machine at 8 CPUs.
//!
//! The paper's ratio is speedup over a SparcStation 10 reference time; we
//! have no SS10, so the "ratio" here is speedup over each benchmark's own
//! simulated uniprocessor page-coloring run (see DESIGN.md §4). The
//! reproduction targets are the comparative statements: CDPC's geometric
//! mean beats bin hopping (paper: by 8%) and page coloring (paper: by
//! 20%), and per-benchmark winners match the paper's.

use cdpc_bench::{table, Preset, Setup};
use cdpc_machine::{geometric_mean, PolicyKind};

fn main() {
    let setup = Setup::from_args();
    let cpus = 8;
    println!(
        "Table 2: AlphaServer-class machine, {} CPUs, scale {} (ratio = speedup over\nuniprocessor page-coloring reference)\n",
        cpus, setup.scale
    );
    table::header(
        &[
            "benchmark",
            "binhop",
            "pagecol",
            "CDPC",
            "r(BH)",
            "r(PC)",
            "r(CDPC)",
        ],
        &[14, 9, 9, 9, 7, 7, 7],
    );

    let benches = cdpc_workloads::all();
    // Per benchmark: the uniprocessor page-coloring reference, then the
    // three policies at the full CPU count.
    let mut jobs = Vec::new();
    for bench in &benches {
        jobs.push(setup.job(
            bench,
            Preset::Alpha,
            1,
            PolicyKind::PageColoring,
            false,
            true,
        ));
        jobs.push(setup.job(
            bench,
            Preset::Alpha,
            cpus,
            PolicyKind::BinHopping,
            false,
            true,
        ));
        jobs.push(setup.job(
            bench,
            Preset::Alpha,
            cpus,
            PolicyKind::PageColoring,
            false,
            true,
        ));
        jobs.push(setup.job(
            bench,
            Preset::Alpha,
            cpus,
            PolicyKind::CdpcTouch,
            false,
            true,
        ));
    }
    let mut reports = setup.run_jobs(&jobs).into_iter();

    let mut ratios = (Vec::new(), Vec::new(), Vec::new());
    for bench in &benches {
        let reference = reports
            .next()
            .expect("one reference report per benchmark")
            .elapsed_cycles;
        let bh = reports.next().expect("one BH report per benchmark");
        let pc = reports.next().expect("one PC report per benchmark");
        let cdpc = reports.next().expect("one CDPC report per benchmark");
        let (rb, rp, rc) = (
            bh.ratio(reference),
            pc.ratio(reference),
            cdpc.ratio(reference),
        );
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>7.2} {:>7.2} {:>7.2}",
            bench.name,
            table::cycles(bh.elapsed_cycles),
            table::cycles(pc.elapsed_cycles),
            table::cycles(cdpc.elapsed_cycles),
            rb,
            rp,
            rc,
        );
        ratios.0.push(rb);
        ratios.1.push(rp);
        ratios.2.push(rc);
    }
    let (gb, gp, gc) = (
        geometric_mean(&ratios.0),
        geometric_mean(&ratios.1),
        geometric_mean(&ratios.2),
    );
    println!("{}", "-".repeat(66));
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>7.2} {:>7.2} {:>7.2}",
        "geomean", "", "", "", gb, gp, gc
    );
    println!(
        "\nCDPC vs bin hopping: {:+.1}%   CDPC vs page coloring: {:+.1}%   (paper: +8% / +20%)",
        (gc / gb - 1.0) * 100.0,
        (gc / gp - 1.0) * 100.0
    );
}
