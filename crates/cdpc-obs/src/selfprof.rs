//! Self-profiling of the simulator itself: how fast does the simulation
//! run, in wall-clock terms?
//!
//! The ROADMAP's perf-trajectory work needs a structured, diffable record
//! of simulator throughput (`results/bench_snapshot.json`). The primitives
//! here — a [`Stopwatch`], a [`SelfProfile`] row, and a tiny
//! [`time_iters`] harness — are what the `cdpc-bench` micro-benchmarks and
//! the snapshot generator use in place of an external benchmarking crate.

use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// A wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// One self-profiling measurement: how much simulation happened in how much
/// wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfProfile {
    /// What was measured (workload / configuration name).
    pub name: String,
    /// Wall-clock seconds the measured region took.
    pub wall_secs: f64,
    /// Simulated memory references executed in the region.
    pub simulated_refs: u64,
    /// Simulated cycles covered by the region.
    pub simulated_cycles: u64,
    /// Probe events observed during the region (0 when probes were off).
    pub events: u64,
}

impl SelfProfile {
    /// Simulated references per wall-clock second — the headline
    /// throughput number tracked across PRs.
    pub fn refs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.simulated_refs as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.simulated_cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// This measurement as a JSON object (one row of
    /// `results/bench_snapshot.json`).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::Str(self.name.clone()));
        obj.push("wall_secs", JsonValue::Float(self.wall_secs));
        obj.push("simulated_refs", JsonValue::UInt(self.simulated_refs));
        obj.push("simulated_cycles", JsonValue::UInt(self.simulated_cycles));
        obj.push(
            "refs_per_sec",
            JsonValue::Float(round3(self.refs_per_sec())),
        );
        obj.push(
            "cycles_per_sec",
            JsonValue::Float(round3(self.cycles_per_sec())),
        );
        obj.push("events", JsonValue::UInt(self.events));
        obj
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Timing of a repeated measurement from [`time_iters`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Iterations measured.
    pub iters: u64,
    /// Total wall-clock time over all iterations.
    pub total: Duration,
}

impl Timing {
    /// Mean seconds per iteration.
    pub fn secs_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.iters as f64
        }
    }

    /// Mean iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        let spi = self.secs_per_iter();
        if spi > 0.0 {
            1.0 / spi
        } else {
            0.0
        }
    }
}

/// Formats a wall-clock duration with adaptive units: seconds at or above
/// one second, milliseconds down to one millisecond, then microseconds and
/// nanoseconds — so sub-millisecond timings never print as `0.00 ms`.
///
/// The numeric part always carries two decimals, keeping benchmark tables
/// column-stable within a unit.
pub fn fmt_duration(secs: f64) -> String {
    let s = secs.max(0.0);
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Runs `f` for `warmup` untimed iterations, then `iters` timed ones.
///
/// This is the whole benchmark harness: no statistics beyond the mean, but
/// deterministic, dependency-free, and honest about what it measures. Use
/// [`std::hint::black_box`] inside `f` to keep the optimizer from deleting
/// the work.
pub fn time_iters(warmup: u64, iters: u64, mut f: impl FnMut()) -> Timing {
    for _ in 0..warmup {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    Timing {
        iters,
        total: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_per_sec_divides() {
        let p = SelfProfile {
            name: "engine".into(),
            wall_secs: 2.0,
            simulated_refs: 1_000_000,
            simulated_cycles: 4_000_000,
            events: 0,
        };
        assert_eq!(p.refs_per_sec(), 500_000.0);
        assert_eq!(p.cycles_per_sec(), 2_000_000.0);
    }

    #[test]
    fn zero_wall_time_yields_zero_rate() {
        let p = SelfProfile {
            name: "x".into(),
            wall_secs: 0.0,
            simulated_refs: 10,
            simulated_cycles: 10,
            events: 0,
        };
        assert_eq!(p.refs_per_sec(), 0.0);
    }

    #[test]
    fn to_json_round_trips() {
        let p = SelfProfile {
            name: "engine".into(),
            wall_secs: 0.5,
            simulated_refs: 123,
            simulated_cycles: 456,
            events: 7,
        };
        let text = p.to_json().to_string_compact();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("engine"));
        assert_eq!(v.get("simulated_refs").unwrap().as_u64(), Some(123));
        assert_eq!(v.get("refs_per_sec").unwrap().as_f64(), Some(246.0));
    }

    #[test]
    fn time_iters_counts_and_times() {
        let mut calls = 0u64;
        let t = time_iters(2, 5, || calls += 1);
        assert_eq!(calls, 7, "warmup + timed iterations all run");
        assert_eq!(t.iters, 5);
        assert!(t.secs_per_iter() >= 0.0);
    }

    #[test]
    fn fmt_duration_picks_adaptive_units() {
        assert_eq!(fmt_duration(2.5), "2.50 s");
        assert_eq!(fmt_duration(0.0123), "12.30 ms");
        assert_eq!(fmt_duration(0.001), "1.00 ms");
        assert_eq!(fmt_duration(42.7e-6), "42.70 us");
        assert_eq!(fmt_duration(3.2e-9), "3.20 ns");
        assert_eq!(fmt_duration(0.0), "0.00 ns");
        // Negative durations cannot happen; clamp instead of panicking.
        assert_eq!(fmt_duration(-1.0), "0.00 ns");
    }

    #[test]
    fn stopwatch_moves_forward() {
        let w = Stopwatch::start();
        assert!(w.elapsed_secs() >= 0.0);
    }
}
