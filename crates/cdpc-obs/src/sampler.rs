//! Interval metrics: time series of stall, miss-class, and bus activity.
//!
//! A [`Sample`] is the *delta* of the aggregate machine counters over one
//! fixed window of simulated cycles; an [`IntervalSeries`] is the ordered
//! sequence of windows from one measured run. The defining property —
//! enforced by the producers in `cdpc-machine` and asserted by integration
//! tests — is that the [`totals`](IntervalSeries::totals) of a series equal
//! the end-of-run aggregates *exactly*, so the series is a lossless
//! decomposition of the final report over time, not an approximation.
//!
//! The field vocabulary mirrors `cdpc-machine`'s `StallBreakdown` (l2-hit,
//! five miss classes, prefetch, upgrade) plus reference/miss/TLB counts and
//! per-kind bus occupancy, which is what the MCPI-over-time and
//! bus-utilization plots need.

use std::fmt::Write as _;

/// Counter deltas over one sampling window (or, via
/// [`IntervalSeries::totals`], over a whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Simulated cycle at which this window closed (end-exclusive).
    pub end_cycle: u64,
    /// Instructions retired in the window, summed over CPUs.
    pub instructions: u64,
    /// Memory references (data + ifetch) in the window, summed over CPUs.
    pub refs: u64,
    /// L2 misses in the window, all classes, summed over CPUs.
    pub misses: u64,
    /// Demand TLB misses in the window.
    pub tlb_misses: u64,
    /// Stall cycles on first-level misses that hit in L2.
    pub l2_hit_stall: u64,
    /// Stall cycles on conflict misses.
    pub conflict_stall: u64,
    /// Stall cycles on capacity misses.
    pub capacity_stall: u64,
    /// Stall cycles on true-sharing misses.
    pub true_sharing_stall: u64,
    /// Stall cycles on false-sharing misses.
    pub false_sharing_stall: u64,
    /// Stall cycles on cold misses.
    pub cold_stall: u64,
    /// Stall cycles waiting on in-flight prefetches or prefetch slots.
    pub prefetch_stall: u64,
    /// Stall cycles on ownership upgrades.
    pub upgrade_stall: u64,
    /// Bus cycles occupied by data transfers in the window.
    pub bus_data: u64,
    /// Bus cycles occupied by write-backs in the window.
    pub bus_writeback: u64,
    /// Bus cycles occupied by upgrades in the window.
    pub bus_upgrade: u64,
}

impl Sample {
    /// All memory stall cycles in the window.
    pub fn stall_total(&self) -> u64 {
        self.l2_hit_stall
            + self.conflict_stall
            + self.capacity_stall
            + self.true_sharing_stall
            + self.false_sharing_stall
            + self.cold_stall
            + self.prefetch_stall
            + self.upgrade_stall
    }

    /// Memory stall cycles per instruction over the window (the paper's
    /// MCPI, computed locally in time).
    pub fn mcpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.stall_total() as f64 / self.instructions as f64
        }
    }

    /// Bus cycles occupied in the window, all kinds.
    pub fn bus_total(&self) -> u64 {
        self.bus_data + self.bus_writeback + self.bus_upgrade
    }

    /// Accumulates `other`'s counters into `self` (keeps `self.end_cycle`
    /// at the max of the two).
    pub fn add(&mut self, other: &Sample) {
        self.end_cycle = self.end_cycle.max(other.end_cycle);
        self.instructions += other.instructions;
        self.refs += other.refs;
        self.misses += other.misses;
        self.tlb_misses += other.tlb_misses;
        self.l2_hit_stall += other.l2_hit_stall;
        self.conflict_stall += other.conflict_stall;
        self.capacity_stall += other.capacity_stall;
        self.true_sharing_stall += other.true_sharing_stall;
        self.false_sharing_stall += other.false_sharing_stall;
        self.cold_stall += other.cold_stall;
        self.prefetch_stall += other.prefetch_stall;
        self.upgrade_stall += other.upgrade_stall;
        self.bus_data += other.bus_data;
        self.bus_writeback += other.bus_writeback;
        self.bus_upgrade += other.bus_upgrade;
    }

    /// Every counter multiplied by `k` (used when one simulated pass
    /// stands for `k` repetitions of a phase). `end_cycle` is unchanged.
    pub fn scaled(&self, k: u64) -> Sample {
        Sample {
            end_cycle: self.end_cycle,
            instructions: self.instructions * k,
            refs: self.refs * k,
            misses: self.misses * k,
            tlb_misses: self.tlb_misses * k,
            l2_hit_stall: self.l2_hit_stall * k,
            conflict_stall: self.conflict_stall * k,
            capacity_stall: self.capacity_stall * k,
            true_sharing_stall: self.true_sharing_stall * k,
            false_sharing_stall: self.false_sharing_stall * k,
            cold_stall: self.cold_stall * k,
            prefetch_stall: self.prefetch_stall * k,
            upgrade_stall: self.upgrade_stall * k,
            bus_data: self.bus_data * k,
            bus_writeback: self.bus_writeback * k,
            bus_upgrade: self.bus_upgrade * k,
        }
    }

    /// True when every counter (ignoring `end_cycle`) is zero.
    pub fn is_empty(&self) -> bool {
        self.instructions == 0
            && self.refs == 0
            && self.misses == 0
            && self.tlb_misses == 0
            && self.stall_total() == 0
            && self.bus_total() == 0
    }
}

/// An ordered sequence of sampling windows from one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalSeries {
    /// Window length in simulated cycles the producer aimed for (windows at
    /// phase boundaries may be shorter).
    pub interval: u64,
    /// The windows, in time order.
    pub samples: Vec<Sample>,
}

impl IntervalSeries {
    /// An empty series with the given nominal window length.
    pub fn new(interval: u64) -> Self {
        Self {
            interval,
            samples: Vec::new(),
        }
    }

    /// Appends a window. Empty windows are kept — a silent gap and a quiet
    /// phase look different in a plot.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Sum of all windows. By construction this equals the end-of-run
    /// aggregates exactly.
    pub fn totals(&self) -> Sample {
        let mut total = Sample::default();
        for s in &self.samples {
            total.add(s);
        }
        total
    }

    /// CSV rendering: a header row, then one row per window. Derived
    /// columns (`mcpi`, `stall_total`, `bus_total`) are included for direct
    /// plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "end_cycle,instructions,refs,misses,tlb_misses,\
             l2_hit_stall,conflict_stall,capacity_stall,true_sharing_stall,\
             false_sharing_stall,cold_stall,prefetch_stall,upgrade_stall,\
             stall_total,mcpi,bus_data,bus_writeback,bus_upgrade,bus_total\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{}",
                s.end_cycle,
                s.instructions,
                s.refs,
                s.misses,
                s.tlb_misses,
                s.l2_hit_stall,
                s.conflict_stall,
                s.capacity_stall,
                s.true_sharing_stall,
                s.false_sharing_stall,
                s.cold_stall,
                s.prefetch_stall,
                s.upgrade_stall,
                s.stall_total(),
                s.mcpi(),
                s.bus_data,
                s.bus_writeback,
                s.bus_upgrade,
                s.bus_total(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(end: u64, instr: u64, stall: u64) -> Sample {
        Sample {
            end_cycle: end,
            instructions: instr,
            refs: instr / 2,
            misses: 3,
            conflict_stall: stall,
            bus_data: stall / 2,
            ..Sample::default()
        }
    }

    #[test]
    fn totals_sum_every_window() {
        let mut series = IntervalSeries::new(1000);
        series.push(sample(1000, 800, 120));
        series.push(sample(2000, 500, 40));
        series.push(sample(2600, 200, 0));
        let t = series.totals();
        assert_eq!(t.end_cycle, 2600);
        assert_eq!(t.instructions, 1500);
        assert_eq!(t.refs, 750);
        assert_eq!(t.misses, 9);
        assert_eq!(t.conflict_stall, 160);
        assert_eq!(t.stall_total(), 160);
        assert_eq!(t.bus_data, 80);
    }

    #[test]
    fn mcpi_is_stalls_over_instructions() {
        let s = sample(1000, 800, 120);
        assert!((s.mcpi() - 0.15).abs() < 1e-12);
        assert_eq!(Sample::default().mcpi(), 0.0);
    }

    #[test]
    fn scaled_multiplies_counters_not_time() {
        let s = sample(1000, 800, 120).scaled(3);
        assert_eq!(s.end_cycle, 1000);
        assert_eq!(s.instructions, 2400);
        assert_eq!(s.conflict_stall, 360);
    }

    #[test]
    fn csv_has_header_and_one_row_per_window() {
        let mut series = IntervalSeries::new(1000);
        series.push(sample(1000, 800, 120));
        series.push(sample(2000, 0, 0));
        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("end_cycle,instructions,"));
        assert!(lines[1].starts_with("1000,800,400,3,0,"));
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn is_empty_detects_quiet_windows() {
        assert!(Sample {
            end_cycle: 5000,
            ..Sample::default()
        }
        .is_empty());
        assert!(!sample(1000, 1, 0).is_empty());
    }
}
