//! Counters for the sweep memoization layer.
//!
//! The sweep executor (`cdpc-machine::sweep`) can satisfy a job four ways:
//! run it, reuse another identical job's result from the same sweep
//! (*dedup*), replay a shared warm-up checkpoint and run only the measured
//! tail (*fork*), or load a prior run's report from the persistent result
//! cache (*hit*). [`SweepCacheStats`] tallies which path each job took so
//! every sweep can report — and CI can assert — how much simulation work
//! memoization actually removed.

/// Per-sweep memoization counters.
///
/// Every job increments exactly one of `hits`, `misses`, `bypassed`, or
/// `deduped` (a deduped job's representative carries the hit/miss/bypass
/// outcome; the duplicate itself counts only in `deduped`), so
/// `hits + misses + bypassed + deduped` equals the number of jobs
/// submitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCacheStats {
    /// Jobs answered from the persistent result cache without simulating.
    pub hits: u64,
    /// Cacheable jobs that had to simulate (and then populated the cache,
    /// if one was attached).
    pub misses: u64,
    /// Jobs that never consulted the cache: observation side-effects
    /// (trace/series/attribution/sanitizer) make their execution itself
    /// the product, or caching was disabled.
    pub bypassed: u64,
    /// Jobs that were byte-identical to an earlier job in the same sweep
    /// and reused its in-process result.
    pub deduped: u64,
    /// Jobs whose measured pass replayed a shared warm-up checkpoint
    /// instead of re-simulating the warm-up prefix. (Also counted in
    /// `misses` — forking changes how a miss executes, not whether it was
    /// one.)
    pub forked: u64,
}

impl SweepCacheStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total jobs submitted to the sweep.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.bypassed + self.deduped
    }

    /// Jobs whose simulation was skipped entirely (cache hits + dedups).
    pub fn avoided(&self) -> u64 {
        self.hits + self.deduped
    }

    /// Folds another counter set into this one (for aggregating multiple
    /// sweeps).
    pub fn merge(&mut self, other: &SweepCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypassed += other.bypassed;
        self.deduped += other.deduped;
        self.forked += other.forked;
    }

    /// The one-line summary printed to stderr after each sweep, e.g.
    /// `hits=12 misses=3 bypassed=0 deduped=5 forked=2 (15/20 simulated)`.
    ///
    /// Stable format: CI greps it (`misses=0` asserts a fully warm cache),
    /// so field order and spelling are load-bearing.
    pub fn summary_line(&self) -> String {
        format!(
            "hits={} misses={} bypassed={} deduped={} forked={} ({}/{} simulated)",
            self.hits,
            self.misses,
            self.bypassed,
            self.deduped,
            self.forked,
            self.misses + self.bypassed,
            self.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_the_job_count() {
        let s = SweepCacheStats {
            hits: 12,
            misses: 3,
            bypassed: 1,
            deduped: 5,
            forked: 2,
        };
        assert_eq!(s.total(), 21);
        assert_eq!(s.avoided(), 17);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = SweepCacheStats {
            hits: 1,
            misses: 2,
            bypassed: 3,
            deduped: 4,
            forked: 1,
        };
        let b = SweepCacheStats {
            hits: 10,
            misses: 20,
            bypassed: 30,
            deduped: 40,
            forked: 5,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SweepCacheStats {
                hits: 11,
                misses: 22,
                bypassed: 33,
                deduped: 44,
                forked: 6,
            }
        );
    }

    #[test]
    fn summary_line_format_is_stable() {
        // CI greps `misses=0` out of this line; a format change must be
        // deliberate.
        let s = SweepCacheStats {
            hits: 12,
            misses: 0,
            bypassed: 1,
            deduped: 5,
            forked: 0,
        };
        assert_eq!(
            s.summary_line(),
            "hits=12 misses=0 bypassed=1 deduped=5 forked=0 (1/18 simulated)"
        );
    }

    #[test]
    fn fresh_stats_are_zero() {
        let s = SweepCacheStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s, SweepCacheStats::default());
    }
}
