//! A tiny deterministic PRNG so tests and benches need no external `rand`
//! dependency.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA '14) is the 64-bit finalizer
//! used to seed xoshiro-family generators: a single add-and-mix step per
//! output, full 2^64 period, passes BigCrush. More than enough for
//! randomized-property tests and workload perturbation; *not* for
//! cryptography.

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift reduction; the bias is < 2^-64 per draw, far below
        // anything a test could notice.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `0..bound` (convenience for indexing).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip that lands true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fisher–Yates shuffle of `items`.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 0, from the SplitMix64 reference
        // implementation (Vigna, prng.di.unimi.it).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive_and_covers() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.range(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every value in 10..=14 drawn");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(99);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }
}
