//! A small hand-rolled JSON model, writer, and parser.
//!
//! crates.io is not reachable from every build environment this repo must
//! compile in, so serde is off the table; this module is the entire
//! serialization stack. It covers exactly what the exporters need:
//!
//! * [`JsonValue`] — an order-preserving value tree (objects keep insertion
//!   order so reports diff cleanly).
//! * [`JsonValue::to_string_compact`] / [`JsonValue::to_string_pretty`] —
//!   writers with correct string escaping and shortest-roundtrip float
//!   formatting (Rust's `{}` for `f64` is already shortest-roundtrip).
//! * [`JsonValue::parse`] — a recursive-descent parser, used by the golden
//!   round-trip tests and by anything that wants to re-read a report.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer written without a decimal point.
    Int(i64),
    /// Unsigned integer written without a decimal point (cycle counters
    /// exceed `i64` comfortably in long runs).
    UInt(u64),
    /// Finite float. NaN/infinity are not representable in JSON; the writer
    /// panics on them rather than emitting garbage.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, insertion-ordered.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends `key: value` to an object; panics if `self` is not one.
    pub fn push(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("push on non-object JsonValue"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64 if it is an integer-kind number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(u) => Some(u),
            JsonValue::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as f64 if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Float(f) => Some(f),
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as &str if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (two spaces per level), trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                assert!(f.is_finite(), "JSON cannot represent {f}");
                // `{}` on f64 is shortest-roundtrip, but renders integral
                // values without a point; keep the float-ness visible.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a complete JSON document. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: only BMP escapes are produced
                            // by our writer, but accept pairs for robustness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 leaves pos on the last hex digit's
                            // successor already; skip the shared += 1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes `uXXXX` (the caller has consumed the backslash and peeked
    /// the 'u'); returns the code unit and leaves `pos` past the digits.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        self.pos += 1; // the 'u'
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::Str("fig2 \"engine\"\n".into()));
        obj.push("cycles", JsonValue::UInt(18_446_744_073_709_551_615));
        obj.push("delta", JsonValue::Int(-42));
        obj.push("mcpi", JsonValue::Float(0.418));
        obj.push("whole", JsonValue::Float(3.0));
        obj.push("ok", JsonValue::Bool(true));
        obj.push("none", JsonValue::Null);
        obj.push(
            "series",
            JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)]),
        );
        obj
    }

    #[test]
    fn compact_rendering_is_stable() {
        assert_eq!(
            sample().to_string_compact(),
            "{\"name\":\"fig2 \\\"engine\\\"\\n\",\
             \"cycles\":18446744073709551615,\
             \"delta\":-42,\
             \"mcpi\":0.418,\
             \"whole\":3.0,\
             \"ok\":true,\
             \"none\":null,\
             \"series\":[1,2]}"
        );
    }

    #[test]
    fn pretty_round_trips() {
        let v = sample();
        let text = v.to_string_pretty();
        assert!(text.ends_with('\n'));
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_round_trips() {
        let v = sample();
        assert_eq!(JsonValue::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn parses_nested_and_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = JsonValue::parse(r#""\u0041\u00e9\t\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\t😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("tru").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("2.5e2").unwrap(), JsonValue::Float(250.0));
    }
}
