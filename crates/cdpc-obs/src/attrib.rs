//! The miss-attribution engine: every classified external-cache miss
//! charged to `(array × color × cpu × miss class)`.
//!
//! The paper's whole argument is that conflict misses can be traced to
//! specific arrays landing in the same cache bins; an
//! [`AttributionProbe`] closes that loop. It listens to
//! [`Probe::on_classified_miss`] events (emitted by the memory system when
//! a region map is installed) and accumulates them into a dense pre-sized
//! tensor, so attribution adds no per-event heap traffic — the invariant
//! the zero-allocation run test enforces.
//!
//! ## Phase weighting
//!
//! The run loop simulates each phase once and scales its counters by the
//! phase's occurrence count `k`. The probe mirrors that protocol through
//! [`Probe::on_phase_start`] / [`Probe::on_phase_end`]: events land in a
//! phase-local tensor, and at phase end the local counts are folded into
//! the totals multiplied by `k`. Events outside any phase window (the
//! discarded warm-up pass, prefaulting) are dropped by the next phase
//! start, so the attributed totals decompose the end-of-run aggregates
//! *exactly* — per-array conflict counts sum to the report's conflict
//! total, not approximately but bit-for-bit.
//!
//! ## Memory bound
//!
//! Two tensors of `(arrays + 1) × colors × cpus × 5` `u64` cells (the
//! `+ 1` is the "(other)" row for code and runtime pages), three pairs of
//! fixed 496-bucket histograms, and `colors`-sized occupancy/pressure
//! vectors. For the paper machine (7 arrays, 256 colors, 8 CPUs) that is
//! 8 × 256 × 8 × 5 × 8 B × 2 ≈ 10 MiB worst case and ~1.3 MiB at the
//! default 32-color experiment scale — all allocated up front.

use crate::hist::LogHistogram;
use crate::json::JsonValue;
use crate::probe::{HintOutcome, MissClassId, Probe, ATTR_OTHER_ARRAY};

/// Number of miss classes (the tensor's innermost dimension).
const CLASSES: usize = MissClassId::ALL.len();

/// Aggregates classified misses into a dense
/// `(array × color × cpu × class)` tensor plus latency/distance/batch
/// histograms and per-color occupancy series. Install with
/// `run_attributed` (or any `run_observed` call whose memory system has a
/// region map).
pub struct AttributionProbe {
    /// Real (compiler-declared) arrays; tensor rows = `arrays + 1`.
    arrays: usize,
    /// Page colors of the simulated cache.
    colors: usize,
    /// Simulated CPUs.
    cpus: usize,
    /// Phase-local tensor, folded into `tot` at each phase end.
    cur: Box<[u64]>,
    /// Phase-weighted totals (the report's source of truth).
    tot: Box<[u64]>,
    /// Phase-local / total miss service latency histograms.
    cur_latency: LogHistogram,
    latency: LogHistogram,
    /// Phase-local / total inter-miss distance histograms (cycles between
    /// consecutive classified misses of one CPU, within a phase).
    cur_gap: LogHistogram,
    gap: LogHistogram,
    /// Phase-local / total run-loop batch size histograms.
    cur_batch: LogHistogram,
    batch: LogHistogram,
    /// Last classified-miss cycle per CPU (`u64::MAX` = none this phase).
    last_miss: Box<[u64]>,
    /// Live mapped-page count per color (state, not flow: tracked across
    /// the whole run including warm-up, since mappings persist).
    occ: Box<[u64]>,
    /// Pressure: faults per color whose hint fell back under pressure.
    fallbacks: Box<[u64]>,
    /// Occupancy snapshot cycles (baseline + one per measured phase).
    snap_cycles: Vec<u64>,
    /// Flattened snapshots: snapshot `i` is `[i*colors, (i+1)*colors)`.
    snap_occ: Vec<u64>,
    /// Occurrence count of the phase currently executing.
    weight: u64,
    /// True once the first measured phase has started.
    measured: bool,
    /// Raw callbacks received (self-profiling).
    events: u64,
}

impl AttributionProbe {
    /// A probe sized for `arrays` compiler-declared arrays, `colors` page
    /// colors, `cpus` CPUs, and `phases` measured phases. All storage —
    /// including the occupancy-snapshot buffers — is allocated here so the
    /// run itself never touches the heap on the probe's behalf.
    pub fn new(arrays: usize, colors: usize, cpus: usize, phases: usize) -> Self {
        assert!(colors > 0 && cpus > 0, "degenerate attribution dims");
        let slots = (arrays + 1) * colors * cpus * CLASSES;
        Self {
            arrays,
            colors,
            cpus,
            cur: vec![0; slots].into_boxed_slice(),
            tot: vec![0; slots].into_boxed_slice(),
            cur_latency: LogHistogram::new(),
            latency: LogHistogram::new(),
            cur_gap: LogHistogram::new(),
            gap: LogHistogram::new(),
            cur_batch: LogHistogram::new(),
            batch: LogHistogram::new(),
            last_miss: vec![u64::MAX; cpus].into_boxed_slice(),
            occ: vec![0; colors].into_boxed_slice(),
            fallbacks: vec![0; colors].into_boxed_slice(),
            snap_cycles: Vec::with_capacity(phases + 1),
            snap_occ: Vec::with_capacity((phases + 1) * colors),
            weight: 1,
            measured: false,
            events: 0,
        }
    }

    /// Tensor dimensions as `(arrays, colors, cpus)` (`arrays` excludes
    /// the implicit "(other)" row).
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.arrays, self.colors, self.cpus)
    }

    /// Row index for an `array_id` as delivered by the probe event: real
    /// arrays map to themselves, everything else to the "(other)" row.
    #[inline]
    fn row_of(&self, array_id: u32) -> usize {
        let id = array_id as usize;
        if array_id == ATTR_OTHER_ARRAY || id >= self.arrays {
            self.arrays
        } else {
            id
        }
    }

    #[inline]
    fn idx(&self, row: usize, color: usize, cpu: usize, class: usize) -> usize {
        ((row * self.colors + color) * self.cpus + cpu) * CLASSES + class
    }

    /// One weighted tensor cell. `row` ranges over `0..=arrays` (the last
    /// row is "(other)").
    pub fn cell(&self, row: usize, color: usize, cpu: usize, class: MissClassId) -> u64 {
        self.tot[self.idx(row, color, cpu, class.index())]
    }

    /// Weighted misses of one row, all colors/CPUs/classes.
    pub fn array_total(&self, row: usize) -> u64 {
        let base = self.idx(row, 0, 0, 0);
        self.tot[base..base + self.colors * self.cpus * CLASSES]
            .iter()
            .sum()
    }

    /// Weighted misses of one row and class.
    pub fn array_class(&self, row: usize, class: MissClassId) -> u64 {
        let c = class.index();
        let mut sum = 0;
        for color in 0..self.colors {
            for cpu in 0..self.cpus {
                sum += self.tot[self.idx(row, color, cpu, c)];
            }
        }
        sum
    }

    /// Weighted misses of one row, color, and class (summed over CPUs) —
    /// the heatmap cell.
    pub fn array_color_class(&self, row: usize, color: usize, class: MissClassId) -> u64 {
        let c = class.index();
        (0..self.cpus)
            .map(|cpu| self.tot[self.idx(row, color, cpu, c)])
            .sum()
    }

    /// Weighted misses of one row on one CPU, all colors and classes.
    pub fn array_cpu(&self, row: usize, cpu: usize) -> u64 {
        let mut sum = 0;
        for color in 0..self.colors {
            for class in 0..CLASSES {
                sum += self.tot[self.idx(row, color, cpu, class)];
            }
        }
        sum
    }

    /// Weighted misses of one class over the whole tensor.
    pub fn class_total(&self, class: MissClassId) -> u64 {
        let c = class.index();
        self.tot
            .iter()
            .skip(c)
            .step_by(CLASSES)
            .copied()
            .sum::<u64>()
    }

    /// Weighted misses over the whole tensor.
    pub fn misses_total(&self) -> u64 {
        self.tot.iter().sum()
    }

    /// The miss service latency histogram (phase-weighted).
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// The inter-miss distance histogram (phase-weighted).
    pub fn inter_miss(&self) -> &LogHistogram {
        &self.gap
    }

    /// The run-loop batch size histogram (phase-weighted).
    pub fn batch_sizes(&self) -> &LogHistogram {
        &self.batch
    }

    /// Pressure per color: faults whose preferred color was denied.
    pub fn fallbacks_by_color(&self) -> &[u64] {
        &self.fallbacks
    }

    /// Occupancy snapshots as `(cycles, flat per-color page counts)`;
    /// snapshot `i` covers `flat[i*colors..(i+1)*colors]`. The first
    /// snapshot is the post-warm-up baseline, then one per measured phase.
    pub fn occupancy(&self) -> (&[u64], &[u64]) {
        (&self.snap_cycles, &self.snap_occ)
    }

    /// The top `n` `(row, color, conflict_misses)` offender cells, sorted
    /// by descending conflict count (ties broken by row then color so the
    /// order is deterministic). Allocates; call at report time only.
    pub fn top_conflicts(&self, n: usize) -> Vec<(usize, usize, u64)> {
        let mut cells = Vec::with_capacity((self.arrays + 1) * self.colors);
        for row in 0..=self.arrays {
            for color in 0..self.colors {
                let c = self.array_color_class(row, color, MissClassId::Conflict);
                if c > 0 {
                    cells.push((row, color, c));
                }
            }
        }
        cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        cells.truncate(n);
        cells
    }

    /// Clears all accumulated state without releasing storage, so one
    /// pre-sized probe can observe a second run allocation-free.
    pub fn reset(&mut self) {
        self.cur.fill(0);
        self.tot.fill(0);
        self.cur_latency.clear();
        self.latency.clear();
        self.cur_gap.clear();
        self.gap.clear();
        self.cur_batch.clear();
        self.batch.clear();
        self.last_miss.fill(u64::MAX);
        self.occ.fill(0);
        self.fallbacks.fill(0);
        self.snap_cycles.clear();
        self.snap_occ.clear();
        self.weight = 1;
        self.measured = false;
        self.events = 0;
    }

    fn snapshot(&mut self, cycle: u64) {
        self.snap_cycles.push(cycle);
        self.snap_occ.extend_from_slice(&self.occ);
    }

    fn hist_json(h: &LogHistogram) -> JsonValue {
        let mut v = JsonValue::object();
        v.push("count", JsonValue::UInt(h.count()));
        v.push("min", JsonValue::UInt(h.min()));
        v.push("max", JsonValue::UInt(h.max()));
        v.push(
            "mean",
            JsonValue::Float((h.mean() * 1000.0).round() / 1000.0),
        );
        v.push("p50", JsonValue::UInt(h.quantile(0.5)));
        v.push("p90", JsonValue::UInt(h.quantile(0.9)));
        v.push("p99", JsonValue::UInt(h.quantile(0.99)));
        v.push(
            "buckets",
            JsonValue::Array(
                h.nonzero_buckets()
                    .map(|(lo, c)| JsonValue::Array(vec![JsonValue::UInt(lo), JsonValue::UInt(c)]))
                    .collect(),
            ),
        );
        v
    }

    /// Serializes the attributed run to the stable JSON schema. `names`
    /// labels the real arrays (rows beyond `names` fall back to
    /// `array<i>`); the synthetic last row is always named `(other)`.
    pub fn to_json(&self, names: &[String]) -> JsonValue {
        let mut doc = JsonValue::object();

        let mut dims = JsonValue::object();
        dims.push("arrays", JsonValue::UInt(self.arrays as u64));
        dims.push("colors", JsonValue::UInt(self.colors as u64));
        dims.push("cpus", JsonValue::UInt(self.cpus as u64));
        dims.push("classes", JsonValue::UInt(CLASSES as u64));
        doc.push("dims", dims);

        doc.push(
            "classes",
            JsonValue::Array(
                MissClassId::ALL
                    .iter()
                    .map(|c| JsonValue::Str(c.label().into()))
                    .collect(),
            ),
        );

        let mut totals = JsonValue::object();
        totals.push("misses", JsonValue::UInt(self.misses_total()));
        let mut by_class = JsonValue::object();
        for class in MissClassId::ALL {
            by_class.push(class.label(), JsonValue::UInt(self.class_total(class)));
        }
        totals.push("by_class", by_class);
        doc.push("totals", totals);

        let row_name = |row: usize| -> String {
            if row == self.arrays {
                "(other)".to_string()
            } else {
                names
                    .get(row)
                    .cloned()
                    .unwrap_or_else(|| format!("array{row}"))
            }
        };

        doc.push(
            "arrays",
            JsonValue::Array(
                (0..=self.arrays)
                    .map(|row| {
                        let mut a = JsonValue::object();
                        a.push("name", JsonValue::Str(row_name(row)));
                        a.push("misses", JsonValue::UInt(self.array_total(row)));
                        let mut by_class = JsonValue::object();
                        for class in MissClassId::ALL {
                            by_class
                                .push(class.label(), JsonValue::UInt(self.array_class(row, class)));
                        }
                        a.push("by_class", by_class);
                        a.push(
                            "conflict_by_color",
                            JsonValue::Array(
                                (0..self.colors)
                                    .map(|color| {
                                        JsonValue::UInt(self.array_color_class(
                                            row,
                                            color,
                                            MissClassId::Conflict,
                                        ))
                                    })
                                    .collect(),
                            ),
                        );
                        a.push(
                            "misses_by_cpu",
                            JsonValue::Array(
                                (0..self.cpus)
                                    .map(|cpu| JsonValue::UInt(self.array_cpu(row, cpu)))
                                    .collect(),
                            ),
                        );
                        a
                    })
                    .collect(),
            ),
        );

        let mut hists = JsonValue::object();
        hists.push("miss_latency_cycles", Self::hist_json(&self.latency));
        hists.push("inter_miss_cycles", Self::hist_json(&self.gap));
        hists.push("batch_ops", Self::hist_json(&self.batch));
        doc.push("histograms", hists);

        let mut colors = JsonValue::object();
        colors.push(
            "conflict_by_color",
            JsonValue::Array(
                (0..self.colors)
                    .map(|color| {
                        JsonValue::UInt(
                            (0..=self.arrays)
                                .map(|row| {
                                    self.array_color_class(row, color, MissClassId::Conflict)
                                })
                                .sum(),
                        )
                    })
                    .collect(),
            ),
        );
        colors.push(
            "fallback_faults_by_color",
            JsonValue::Array(self.fallbacks.iter().map(|&f| JsonValue::UInt(f)).collect()),
        );
        let mut occupancy = JsonValue::object();
        occupancy.push(
            "cycles",
            JsonValue::Array(
                self.snap_cycles
                    .iter()
                    .map(|&c| JsonValue::UInt(c))
                    .collect(),
            ),
        );
        occupancy.push(
            "mapped_pages",
            JsonValue::Array(
                self.snap_occ
                    .chunks(self.colors)
                    .map(|snap| {
                        JsonValue::Array(snap.iter().map(|&p| JsonValue::UInt(p)).collect())
                    })
                    .collect(),
            ),
        );
        colors.push("occupancy", occupancy);
        doc.push("colors", colors);

        doc
    }
}

impl Probe for AttributionProbe {
    // The exported report includes the run-loop batch-size histogram, so
    // the parallel engine must replay the serial batching discipline when
    // this probe is attached.
    const BATCH_SENSITIVE: bool = true;

    fn on_engine_restart(&mut self) {
        self.reset();
    }

    #[inline]
    fn on_classified_miss(
        &mut self,
        cpu: usize,
        cycle: u64,
        array_id: u32,
        color: u32,
        class: MissClassId,
        latency_cycles: u64,
    ) {
        self.events += 1;
        let row = self.row_of(array_id);
        let color = (color as usize).min(self.colors - 1);
        let cpu = cpu.min(self.cpus - 1);
        self.cur[self.idx(row, color, cpu, class.index())] += 1;
        self.cur_latency.record(latency_cycles);
        let last = self.last_miss[cpu];
        if last != u64::MAX && cycle >= last {
            self.cur_gap.record(cycle - last);
        }
        self.last_miss[cpu] = cycle;
    }

    #[inline]
    fn on_page_fault(
        &mut self,
        _cpu: usize,
        _cycle: u64,
        _vpn: u64,
        color: u32,
        outcome: HintOutcome,
    ) {
        self.events += 1;
        let color = (color as usize).min(self.colors - 1);
        self.occ[color] += 1;
        if outcome == HintOutcome::Fallback {
            self.fallbacks[color] += 1;
        }
    }

    #[inline]
    fn on_recolor(&mut self, _cpu: usize, _cycle: u64, _vpn: u64, from: u32, to: u32) {
        self.events += 1;
        let from = (from as usize).min(self.colors - 1);
        let to = (to as usize).min(self.colors - 1);
        self.occ[from] = self.occ[from].saturating_sub(1);
        self.occ[to] += 1;
    }

    #[inline]
    fn on_run_batch(&mut self, _cpu: usize, ops: u64) {
        self.events += 1;
        self.cur_batch.record(ops);
    }

    fn on_phase_start(&mut self, _index: usize, count: u64) {
        if !self.measured {
            self.measured = true;
            self.snapshot(0); // post-warm-up baseline
        }
        // Drop anything recorded outside a phase window (warm-up pass,
        // prefaulting): only measured-phase events are attributed.
        self.cur.fill(0);
        self.cur_latency.clear();
        self.cur_gap.clear();
        self.cur_batch.clear();
        self.last_miss.fill(u64::MAX);
        self.weight = count.max(1);
    }

    fn on_phase_end(&mut self, _index: usize, end_cycle: u64) {
        let k = self.weight;
        for (t, &c) in self.tot.iter_mut().zip(self.cur.iter()) {
            *t += c * k;
        }
        self.latency.merge_scaled(&self.cur_latency, k);
        self.gap.merge_scaled(&self.cur_gap, k);
        self.batch.merge_scaled(&self.cur_batch, k);
        self.cur.fill(0);
        self.cur_latency.clear();
        self.cur_gap.clear();
        self.cur_batch.clear();
        self.snapshot(end_cycle);
    }

    fn event_count(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> AttributionProbe {
        AttributionProbe::new(2, 4, 2, 3)
    }

    #[test]
    fn events_outside_phases_are_discarded() {
        let mut p = probe();
        p.on_classified_miss(0, 10, 0, 1, MissClassId::Conflict, 50);
        p.on_phase_start(0, 1);
        p.on_phase_end(0, 100);
        assert_eq!(p.misses_total(), 0, "warm-up misses must not count");
    }

    #[test]
    fn phase_weighting_multiplies_counts() {
        let mut p = probe();
        p.on_phase_start(0, 11);
        p.on_classified_miss(0, 10, 0, 1, MissClassId::Conflict, 50);
        p.on_classified_miss(1, 20, 1, 2, MissClassId::Capacity, 60);
        p.on_phase_end(0, 100);
        assert_eq!(p.misses_total(), 22);
        assert_eq!(p.cell(0, 1, 0, MissClassId::Conflict), 11);
        assert_eq!(p.cell(1, 2, 1, MissClassId::Capacity), 11);
        assert_eq!(p.class_total(MissClassId::Conflict), 11);
        assert_eq!(p.array_total(0), 11);
        assert_eq!(p.latency().count(), 22);
        assert_eq!(p.latency().max(), 60);
    }

    #[test]
    fn unknown_arrays_land_in_other_row() {
        let mut p = probe();
        p.on_phase_start(0, 1);
        p.on_classified_miss(0, 10, ATTR_OTHER_ARRAY, 0, MissClassId::Cold, 50);
        p.on_classified_miss(0, 20, 7, 0, MissClassId::Cold, 50);
        p.on_phase_end(0, 100);
        assert_eq!(p.array_total(2), 2, "both land in the (other) row");
    }

    #[test]
    fn inter_miss_distances_are_per_cpu_and_per_phase() {
        let mut p = probe();
        p.on_phase_start(0, 1);
        p.on_classified_miss(0, 100, 0, 0, MissClassId::Cold, 10);
        p.on_classified_miss(1, 500, 0, 0, MissClassId::Cold, 10);
        p.on_classified_miss(0, 130, 0, 0, MissClassId::Cold, 10);
        p.on_phase_end(0, 600);
        // Only CPU 0 had two misses: one 30-cycle gap.
        assert_eq!(p.inter_miss().count(), 1);
        assert_eq!(p.inter_miss().min(), 30);
        p.on_phase_start(1, 1);
        p.on_classified_miss(0, 1000, 0, 0, MissClassId::Cold, 10);
        p.on_phase_end(1, 1100);
        // The gap from cycle 130 to 1000 crosses a phase boundary: dropped.
        assert_eq!(p.inter_miss().count(), 1);
    }

    #[test]
    fn occupancy_tracks_faults_and_recolors_across_phases() {
        let mut p = probe();
        p.on_page_fault(0, 1, 100, 1, HintOutcome::Honored);
        p.on_page_fault(0, 2, 101, 1, HintOutcome::Fallback);
        p.on_phase_start(0, 1);
        p.on_recolor(0, 50, 100, 1, 3);
        p.on_phase_end(0, 100);
        let (cycles, flat) = p.occupancy();
        assert_eq!(cycles, &[0, 100]);
        // Baseline: two pages on color 1 (warm-up faults are state).
        assert_eq!(&flat[0..4], &[0, 2, 0, 0]);
        // After the recolor: one page each on colors 1 and 3.
        assert_eq!(&flat[4..8], &[0, 1, 0, 1]);
        assert_eq!(p.fallbacks_by_color(), &[0, 1, 0, 0]);
    }

    #[test]
    fn top_conflicts_sorts_deterministically() {
        let mut p = probe();
        p.on_phase_start(0, 2);
        p.on_classified_miss(0, 1, 0, 3, MissClassId::Conflict, 10);
        p.on_classified_miss(0, 2, 1, 3, MissClassId::Conflict, 10);
        p.on_classified_miss(0, 3, 1, 3, MissClassId::Conflict, 10);
        p.on_classified_miss(0, 4, 0, 2, MissClassId::Cold, 10);
        p.on_phase_end(0, 10);
        let top = p.top_conflicts(10);
        assert_eq!(top, vec![(1, 3, 4), (0, 3, 2)]);
    }

    #[test]
    fn json_schema_is_stable_and_consistent() {
        let mut p = probe();
        p.on_page_fault(0, 1, 100, 1, HintOutcome::Honored);
        p.on_phase_start(0, 3);
        p.on_classified_miss(0, 10, 0, 1, MissClassId::Conflict, 50);
        p.on_run_batch(0, 16);
        p.on_phase_end(0, 200);
        let doc = p.to_json(&["a".to_string(), "b".to_string()]);
        assert_eq!(
            doc.get("dims").unwrap().get("arrays").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            doc.get("totals").unwrap().get("misses").unwrap().as_u64(),
            Some(3)
        );
        let arrays = doc.get("arrays").unwrap().as_array().unwrap();
        assert_eq!(arrays.len(), 3);
        assert_eq!(arrays[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(arrays[2].get("name").unwrap().as_str(), Some("(other)"));
        assert_eq!(
            arrays[0]
                .get("conflict_by_color")
                .unwrap()
                .as_array()
                .unwrap()[1]
                .as_u64(),
            Some(3)
        );
        let h = doc.get("histograms").unwrap().get("batch_ops").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(3));
        // Round-trips through the parser.
        let text = doc.to_string_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = probe();
        p.on_page_fault(0, 1, 100, 1, HintOutcome::Honored);
        p.on_phase_start(0, 2);
        p.on_classified_miss(0, 10, 0, 1, MissClassId::Conflict, 50);
        p.on_phase_end(0, 100);
        p.reset();
        assert_eq!(p.misses_total(), 0);
        assert_eq!(p.event_count(), 0);
        assert_eq!(p.occupancy().0.len(), 0);
        assert!(p.latency().is_empty());
    }
}
