//! Observability for the CDPC simulation stack.
//!
//! The paper's entire argument rests on *seeing inside* the memory system —
//! Figure 2's MCPI-by-miss-class breakdowns, bus occupancy, hint honor
//! rates. This crate is the machinery that makes those visible while a run
//! unfolds, not just as end-of-run text:
//!
//! * [`probe`] — the [`Probe`](probe::Probe) trait: fine-grained event
//!   callbacks (L2 misses with class, bus transactions, TLB misses,
//!   prefetch issues/drops, page faults, hint lookups, recolorings). Every
//!   method has a no-op default and implementors are chosen by *static*
//!   dispatch, so the disabled path ([`NullProbe`](probe::NullProbe))
//!   compiles away entirely.
//! * [`hist`] — fixed-footprint log-bucketed (HDR-style) histograms for
//!   miss latencies, inter-miss distances, and run-loop batch sizes.
//! * [`attrib`] — the miss-attribution engine:
//!   [`AttributionProbe`](attrib::AttributionProbe) charges every
//!   classified miss to a dense `(array × color × cpu × class)` tensor
//!   whose phase-weighted totals decompose the end-of-run aggregates
//!   exactly, plus per-color occupancy/pressure series.
//! * [`cachestats`] — [`SweepCacheStats`](cachestats::SweepCacheStats)
//!   counters for the sweep memoization layer: cache hits/misses, bypassed
//!   (observed) jobs, in-sweep dedups, and warm-checkpoint forks.
//! * [`sampler`] — interval metrics: [`Sample`](sampler::Sample) rows of
//!   stall-cycle, miss-class, and bus-occupancy deltas over fixed windows
//!   of simulated cycles, collected into an
//!   [`IntervalSeries`](sampler::IntervalSeries) whose totals sum back to
//!   the end-of-run aggregates exactly.
//! * [`json`] — a small hand-rolled JSON value model, writer, and parser.
//!   crates.io is not reachable from every build environment, so no serde:
//!   this is the entire serialization stack.
//! * [`trace`] — a Chrome-trace-event (Perfetto-loadable) timeline builder:
//!   per-CPU stall lanes plus a bus lane.
//! * [`selfprof`] — wall-clock self-profiling of the simulator itself
//!   (refs/sec, peak event counts) and a tiny benchmark harness used by the
//!   `cdpc-bench` micro-benchmarks.
//! * [`rng`] — a SplitMix64 PRNG so tests and benches need no external
//!   `rand` dependency.
//!
//! The crate depends on nothing (not even other CDPC crates), so any layer
//! of the stack can depend on it without cycles.

pub mod attrib;
pub mod cachestats;
pub mod hist;
pub mod json;
pub mod probe;
pub mod rng;
pub mod sampler;
pub mod selfprof;
pub mod trace;

pub use attrib::AttributionProbe;
pub use cachestats::SweepCacheStats;
pub use hist::LogHistogram;
pub use json::JsonValue;
pub use probe::{
    BusKind, CountingProbe, HintOutcome, LineState, MissClassId, NullProbe, PrefetchDropReason,
    Probe, ATTR_OTHER_ARRAY,
};
pub use rng::SplitMix64;
pub use sampler::{IntervalSeries, Sample};
pub use selfprof::{SelfProfile, Stopwatch};
pub use trace::TraceProbe;
